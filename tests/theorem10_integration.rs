//! Experiment E4, as a test: Theorem 10 across the (n, k) grid.
//!
//! For every 2 ≤ k ≤ n−2 the adversary construction refutes the (Σk, Ωk)
//! candidate with a verified pasted run whose failure-detector history is
//! re-validated against the plain Σk/Ωk class oracles (Lemma 9). The
//! endpoints k = 1 and k = n−1 are exercised in
//! `corollary13_integration.rs`.

use kset::impossibility::theorem10::demo;
use kset::impossibility::{
    bouzid_travers_impossible, theorem10_impossible, PartitionSpec, Theorem1Outcome,
};

#[test]
fn grid_2_to_n_minus_2_is_refuted() {
    for n in 4..9 {
        for k in 2..=n - 2 {
            let d = demo(n, k, 200_000).unwrap_or_else(|| panic!("n={n} k={k} in range"));
            assert!(d.refuted(), "n={n} k={k}");
            assert!(
                d.analysis.condition_a,
                "n={n} k={k}: blocks decide in isolation"
            );
            assert!(
                d.analysis.condition_b_verified,
                "n={n} k={k}: Lemma 12 pasting verified"
            );
            assert!(
                d.analysis.condition_d_verified,
                "n={n} k={k}: restriction corresponds"
            );
            assert!(
                d.history_legal_for_sigma_omega_k(),
                "n={n} k={k}: defeating history must be (Σk,Ωk)-legal"
            );
        }
    }
}

#[test]
fn direct_violations_everywhere_in_the_grid() {
    // The split-D̄ schedule makes the violation direct: the single pasted
    // run carries more than k distinct decisions.
    for (n, k) in [(5, 2), (6, 2), (6, 4), (7, 3), (8, 4)] {
        let d = demo(n, k, 200_000).unwrap();
        match d.analysis.outcome {
            Theorem1Outcome::DirectViolation { distinct, k: kk } => {
                assert!(distinct > kk, "n={n} k={k}");
            }
            ref other => panic!("n={n} k={k}: expected direct violation, got {other:?}"),
        }
    }
}

#[test]
fn layout_matches_the_theorem_range() {
    for n in 3..10 {
        for k in 1..n {
            assert_eq!(
                PartitionSpec::theorem10(n, k).is_some(),
                theorem10_impossible(n, k),
                "n={n} k={k}"
            );
        }
    }
}

#[test]
fn improvement_over_prior_bound_is_strict_and_verified() {
    // Points settled by Theorem 10 but not by Bouzid–Travers [5]: verify
    // the construction works there (this is the paper's "much more
    // restrictive bound" claim, executed).
    let mut newly_settled = 0;
    for n in 4..9_usize {
        for k in 2..=n - 2 {
            if !bouzid_travers_impossible(n, k) {
                newly_settled += 1;
                let d = demo(n, k, 200_000).unwrap();
                assert!(d.refuted(), "n={n} k={k} newly settled point must verify");
            }
        }
    }
    assert!(
        newly_settled >= 8,
        "the improvement covers many grid points"
    );
}

#[test]
fn dbar_is_always_large_enough_for_the_reduction() {
    // |D̄| = n − k + 1 ≥ 3: the restricted system has enough processes for
    // consensus to be unsolvable with the weak leader information (the
    // proof's condition (C) via Ω2 ≺ Ω).
    for n in 4..12 {
        for k in 2..=n - 2 {
            let spec = PartitionSpec::theorem10(n, k).unwrap();
            assert!(spec.dbar().len() >= 3, "n={n} k={k}");
            assert_eq!(spec.dbar().len(), n - k + 1);
            assert_eq!(spec.blocks().len(), k - 1);
        }
    }
}

#[test]
fn ld_construction_matches_proof_condition_c() {
    use kset::impossibility::theorem10::demo_ld;
    for n in 4..10 {
        for k in 2..=n - 2 {
            let spec = PartitionSpec::theorem10(n, k).unwrap();
            let ld = demo_ld(&spec);
            assert_eq!(ld.len(), k, "n={n} k={k}: |LD| = k");
            assert_eq!(
                ld.intersection(spec.dbar()).len(),
                2,
                "n={n} k={k}: LD ∩ D̄ has exactly two processes (ps, pt)"
            );
        }
    }
}
