//! The parallel sweep against real workload: the Theorem 8 border grid run
//! through `kset_sim::sweep` must produce results identical to the
//! sequential pass, and per-cell seeds must be stable.

use kset::impossibility::theorem8::border_demo;
use kset::impossibility::THEOREM8_BORDER_GRID;
use kset::sim::sweep::{cell_seed, sweep, sweep_seq};

/// The E3 border grid (every divisible point the experiments binary runs).
fn border_grid() -> Vec<(usize, usize)> {
    THEOREM8_BORDER_GRID.to_vec()
}

#[test]
fn theorem8_border_grid_parallel_equals_sequential() {
    let grid = border_grid();
    let run_cell = |_i: usize, &(n, k): &(usize, usize)| {
        let demo = border_demo(n, k, 300_000).expect("divisible border point");
        (
            demo.f,
            demo.pasted.verified,
            demo.pasted.distinct_decisions(),
            demo.pasted.report.failure_pattern.num_faulty(),
            demo.violates_k_agreement(),
        )
    };
    let parallel = sweep(&grid, run_cell);
    let sequential = sweep_seq(&grid, run_cell);
    assert_eq!(
        parallel, sequential,
        "parallel grid must equal the sequential run"
    );
    // And the grid results themselves are the Theorem 8 border facts.
    for (&(n, k), &(f, verified, distinct, faulty, violates)) in grid.iter().zip(&parallel) {
        assert!(verified, "n={n} k={k}");
        assert_eq!(distinct, k + 1, "n={n} k={k}");
        assert_eq!(faulty, 0, "n={n} k={k}");
        assert!(violates, "n={n} k={k}");
        assert_eq!(k * n, (k + 1) * f, "n={n} k={k}: exact border");
    }
}

#[test]
fn sweep_seeds_are_stable_across_runs() {
    // Seeds are pure functions of (grid seed, index): scenario
    // reproducibility relies on it.
    let first: Vec<u64> = (0..4).map(|i| cell_seed(7, i)).collect();
    let second: Vec<u64> = (0..4).map(|i| cell_seed(7, i)).collect();
    assert_eq!(first, second);
    let distinct: std::collections::BTreeSet<u64> = first.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        first.len(),
        "adjacent cells get distinct seeds"
    );
}

#[test]
fn sweep_handles_heterogeneous_cell_costs() {
    // Cells of very different cost (n from 4 to 12) still come back in
    // order; this is the property the table printers rely on.
    let grid = border_grid();
    let sizes = sweep(&grid, |_, &(n, _)| n);
    assert_eq!(sizes, grid.iter().map(|&(n, _)| n).collect::<Vec<_>>());
}

// ---------------------------------------------------------------------------
// Wide-bitset scale grids: n ∈ {64, 128, 256, 512} under the same
// deterministic cell_seed contract.
// ---------------------------------------------------------------------------

use kset::core::algorithms::floodmin::{floodmin_rounds, FloodMin};
use kset::core::algorithms::two_stage::{two_stage_inputs, TwoStage};
use kset::core::sync::{LockStep, RoundCrash};
use kset::core::task::distinct_proposals;
use kset::sim::sched::random::SeededRandom;
use kset::sim::sweep::{scale_grid, GridCell};
use kset::sim::{fingerprint, CrashPlan, Engine, ProcessId, ProcessSet, Simulation};

/// One lock-step FloodMin cell: crash layout and observations are a pure
/// function of the cell's deterministic seed.
fn run_floodmin_cell(cell: &GridCell) -> (u64, usize, usize) {
    let GridCell { n, f, k, seed, .. } = *cell;
    let base = (seed as usize) % n;
    let crashes: Vec<RoundCrash> = (0..f)
        .map(|j| RoundCrash {
            round: 1 + j % floodmin_rounds(f, k),
            pid: ProcessId::new((base + j) % n),
            receivers: ProcessId::all((seed >> 8) as usize % n).collect(),
        })
        .collect();
    let mut engine = LockStep::new(
        FloodMin::system(&distinct_proposals(n), f, k),
        floodmin_rounds(f, k),
        &crashes,
    );
    engine.drive(u64::MAX);
    let out = engine.outcome();
    let distinct = out
        .decisions
        .iter()
        .flatten()
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    (fingerprint(&out.decisions), distinct, out.rounds)
}

#[test]
fn wide_grid_parallel_equals_sequential_up_to_512() {
    // The whole point of the wide bitset: the same sweep contract carries
    // from the old 128-process cap to n = 512 unchanged.
    let grid = scale_grid(&[64, 128, 256, 512], &[2], &[1], 42).expect("all n within capacity");
    assert_eq!(grid.len(), 4);
    assert!(grid.iter().all(|c| c.n <= ProcessSet::CAPACITY));
    let parallel = sweep(&grid, |_, c| run_floodmin_cell(c));
    let sequential = sweep_seq(&grid, |_, c| run_floodmin_cell(c));
    assert_eq!(
        parallel, sequential,
        "parallel wide grid must equal sequential"
    );
    for (cell, &(_, distinct, rounds)) in grid.iter().zip(&parallel) {
        assert!(
            distinct <= cell.k,
            "n={} f={} k={}: FloodMin must reach k-agreement, got {distinct} values",
            cell.n,
            cell.f,
            cell.k
        );
        assert_eq!(rounds, floodmin_rounds(cell.f, cell.k), "n={}", cell.n);
    }
}

#[test]
fn async_simulation_at_256_is_deterministic_across_substrate() {
    // The step-level substrate at n = 256: a seeded-random schedule of the
    // two-stage protocol must fingerprint identically in parallel and
    // sequential sweeps (same cell_seed ⇒ same run, bit for bit).
    let grid = scale_grid(&[256], &[3], &[2], 7).expect("n = 256 fits");
    let run_cell = |_: usize, cell: &GridCell| {
        let mut sim: Simulation<TwoStage, _> = Simulation::try_new(
            two_stage_inputs(cell.f, &distinct_proposals(cell.n)),
            CrashPlan::none(),
        )
        .expect("n = 256 is within the ProcessSet capacity");
        let report = sim.run_to_report(&mut SeededRandom::new(cell.seed), 40_000);
        (fingerprint(&report.decisions), report.decisions.len())
    };
    let parallel = sweep(&grid, run_cell);
    let sequential = sweep_seq(&grid, run_cell);
    assert_eq!(parallel, sequential);
    assert_eq!(parallel[0].1, 256);
}

#[test]
fn scale_grid_rejects_duplicate_axis_values() {
    // Regression: `ns = [128, 128]` used to emit the same (n, f, k) point
    // twice as two cells with *different* seeds — poison for
    // (grid_seed, index) citations. Duplicates are now a typed error.
    use kset::sim::sweep::GridError;
    assert_eq!(
        scale_grid(&[128, 128], &[2], &[1], 42),
        Err(GridError::DuplicateAxisValue {
            axis: "ns",
            value: 128
        })
    );
}

#[test]
fn sharded_streaming_floodmin_merges_to_sequential() {
    // The CI shard-matrix gate on the real lock-step workload, in one
    // process: shard the grid three ways, stream each shard in bounded
    // memory, round-trip the records through the text format, merge — and
    // the merged file must be byte-identical to the sequential sweep's.
    use kset::sim::sweep::{
        merge, sweep_streaming_ordered, CellRecord, ShardFile, ShardSpec, SweepHeader,
    };
    let grid = scale_grid(&[64, 256], &[2, 3], &[1], 42).expect("valid axes");
    let digest = |cell: &GridCell| fingerprint(&run_floodmin_cell(cell));
    let header =
        |shard| SweepHeader::new("floodmin", 42, "ns=64,256;fs=2,3;ks=1", grid.len(), shard);
    let sequential = ShardFile {
        header: header(ShardSpec::FULL),
        records: sweep_seq(&grid, |_, c| CellRecord::new(c, digest(c))),
    };
    let shards: Vec<ShardFile> = (0..3)
        .map(|i| {
            let spec = ShardSpec::new(i, 3).unwrap();
            let mut records = Vec::new();
            sweep_streaming_ordered(
                spec.slice(&grid),
                2,
                |_, c| CellRecord::new(c, digest(c)),
                |_, r| records.push(r),
            )
            .unwrap();
            let file = ShardFile {
                header: header(spec),
                records,
            };
            ShardFile::parse(&file.render()).expect("round-trips")
        })
        .collect();
    let merged = merge(&shards).expect("full partition merges");
    assert_eq!(merged.render(), sequential.render(), "byte-identical");
}

#[test]
fn cell_seed_values_are_pinned() {
    // Regression pin: cell_seed is part of the sweep's public determinism
    // contract — experiment tables cite scenarios as (grid_seed, index), so
    // these exact values must never drift, at any system size.
    assert_eq!(cell_seed(42, 0), 0xbdd7_3226_2feb_6e95);
    assert_eq!(cell_seed(42, 1), 0xd7fc_1bde_f4d9_4d80);
    assert_eq!(cell_seed(42, 2), 0x5e02_37db_c956_d288);
    assert_eq!(cell_seed(42, 3), 0xc86a_910a_935d_c447);
    assert_eq!(cell_seed(7, 0), 0x63cb_e1e4_5932_0dd7);
    assert_eq!(cell_seed(7, 8), 0x4ae0_e1f6_0792_2428);
    assert_eq!(cell_seed(1234, 17), 0x55cc_9533_f4fa_fec1);
}

#[test]
fn legacy_small_grids_keep_their_seeds() {
    // An existing n ≤ 128 grid: widening the bitset must not renumber its
    // cells or change any seed (emission order is ns × fs × ks with
    // infeasible combinations skipped before indexing).
    let grid = scale_grid(&[4, 6, 8], &[1, 2], &[1], 42).expect("small grid");
    let expect: Vec<(usize, usize)> = vec![(4, 1), (4, 2), (6, 1), (6, 2), (8, 1), (8, 2)];
    assert_eq!(grid.iter().map(|c| (c.n, c.f)).collect::<Vec<_>>(), expect);
    for (i, cell) in grid.iter().enumerate() {
        assert_eq!(cell.index, i);
        assert_eq!(cell.seed, cell_seed(42, i));
    }
    assert_eq!(
        grid[0].seed, 0xbdd7_3226_2feb_6e95,
        "pinned first-cell seed"
    );
}
