//! The parallel sweep against real workload: the Theorem 8 border grid run
//! through `kset_sim::sweep` must produce results identical to the
//! sequential pass, and per-cell seeds must be stable.

use kset::impossibility::theorem8::border_demo;
use kset::sim::sweep::{cell_seed, sweep, sweep_seq};

/// The E3 border grid (every divisible point the experiments binary runs).
fn border_grid() -> Vec<(usize, usize)> {
    vec![
        (4, 1),
        (6, 1),
        (8, 1),
        (6, 2),
        (9, 2),
        (12, 2),
        (8, 3),
        (12, 3),
        (10, 4),
    ]
}

#[test]
fn theorem8_border_grid_parallel_equals_sequential() {
    let grid = border_grid();
    let run_cell = |_i: usize, &(n, k): &(usize, usize)| {
        let demo = border_demo(n, k, 300_000).expect("divisible border point");
        (
            demo.f,
            demo.pasted.verified,
            demo.pasted.distinct_decisions(),
            demo.pasted.report.failure_pattern.num_faulty(),
            demo.violates_k_agreement(),
        )
    };
    let parallel = sweep(&grid, run_cell);
    let sequential = sweep_seq(&grid, run_cell);
    assert_eq!(
        parallel, sequential,
        "parallel grid must equal the sequential run"
    );
    // And the grid results themselves are the Theorem 8 border facts.
    for (&(n, k), &(f, verified, distinct, faulty, violates)) in grid.iter().zip(&parallel) {
        assert!(verified, "n={n} k={k}");
        assert_eq!(distinct, k + 1, "n={n} k={k}");
        assert_eq!(faulty, 0, "n={n} k={k}");
        assert!(violates, "n={n} k={k}");
        assert_eq!(k * n, (k + 1) * f, "n={n} k={k}: exact border");
    }
}

#[test]
fn sweep_seeds_are_stable_across_runs() {
    // Seeds are pure functions of (grid seed, index): scenario
    // reproducibility relies on it.
    let first: Vec<u64> = (0..4).map(|i| cell_seed(7, i)).collect();
    let second: Vec<u64> = (0..4).map(|i| cell_seed(7, i)).collect();
    assert_eq!(first, second);
    let distinct: std::collections::BTreeSet<u64> = first.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        first.len(),
        "adjacent cells get distinct seeds"
    );
}

#[test]
fn sweep_handles_heterogeneous_cell_costs() {
    // Cells of very different cost (n from 4 to 12) still come back in
    // order; this is the property the table printers rely on.
    let grid = border_grid();
    let sizes = sweep(&grid, |_, &(n, _)| n);
    assert_eq!(sizes, grid.iter().map(|&(n, _)| n).collect::<Vec<_>>());
}
