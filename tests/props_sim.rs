//! Property-based tests for the simulator: determinism, schedule replay,
//! buffer conservation, and indistinguishability algebra.

use std::collections::BTreeSet;

use proptest::prelude::*;

use kset::core::algorithms::two_stage::{two_stage_inputs, TwoStage};
use kset::core::task::distinct_proposals;
use kset::sim::indist::{compare_views, indistinguishable_for_set, ViewComparison};
use kset::sim::sched::random::SeededRandom;
use kset::sim::sched::scripted::Scripted;
use kset::sim::{Buffer, CrashPlan, Envelope, MsgId, ProcessId, ProcessSet, Simulation, Time};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Determinism: the same seed produces byte-identical traces.
    #[test]
    fn same_seed_same_trace(
        n in 2usize..7,
        l_seed in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let l = 1 + l_seed % n;
        let run = || {
            let mut sim: Simulation<TwoStage, _> = Simulation::new(
                two_stage_inputs(l, &distinct_proposals(n)),
                CrashPlan::none(),
            );
            let mut sched = SeededRandom::new(seed);
            sim.run_to_report(&mut sched, 30_000)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.trace.events().len(), b.trace.events().len());
        // Traces are event-for-event identical.
        prop_assert!(a.trace.events() == b.trace.events());
    }

    /// Replay closure: extracting a run's schedule and replaying it in a
    /// fresh simulation reproduces the identical trace.
    #[test]
    fn schedule_replay_reproduces_trace(
        n in 2usize..7,
        seed in 0u64..10_000,
    ) {
        let l = 1 + (seed as usize) % n;
        let mk = || two_stage_inputs(l, &distinct_proposals(n));
        let original = {
            let mut sim: Simulation<TwoStage, _> = Simulation::new(mk(), CrashPlan::none());
            let mut sched = SeededRandom::new(seed);
            sim.run_to_report(&mut sched, 30_000)
        };
        let replayed = {
            let mut sim: Simulation<TwoStage, _> = Simulation::new(mk(), CrashPlan::none());
            let mut sched = Scripted::new(original.trace.schedule());
            sim.run_to_report(&mut sched, 30_000)
        };
        prop_assert_eq!(&original.decisions, &replayed.decisions);
        let all: ProcessSet = ProcessId::all(n).collect();
        prop_assert!(indistinguishable_for_set(&original.trace, &replayed.trace, all));
    }

    /// Indistinguishability is reflexive and symmetric on arbitrary runs.
    #[test]
    fn indistinguishability_algebra(
        n in 2usize..6,
        seed_a in 0u64..1_000,
        seed_b in 0u64..1_000,
    ) {
        let mk = || two_stage_inputs(2, &distinct_proposals(n));
        let run = |seed| {
            let mut sim: Simulation<TwoStage, _> = Simulation::new(mk(), CrashPlan::none());
            let mut sched = SeededRandom::new(seed);
            sim.run_to_report(&mut sched, 20_000)
        };
        let a = run(seed_a);
        let b = run(seed_b);
        for p in ProcessId::all(n) {
            // Reflexive.
            prop_assert_eq!(
                compare_views(&a.trace, &a.trace, p),
                if a.trace.decision_time(p).is_some() {
                    ViewComparison::EqualUntilDecision
                } else {
                    ViewComparison::UndecidedPrefix
                }
            );
            // Symmetric.
            prop_assert_eq!(
                compare_views(&a.trace, &b.trace, p).is_indistinguishable(),
                compare_views(&b.trace, &a.trace, p).is_indistinguishable()
            );
        }
    }

    /// Buffer conservation: everything pushed is either pending or taken,
    /// exactly once, whatever the extraction pattern.
    #[test]
    fn buffer_conservation(
        pushes in proptest::collection::vec((0usize..5, 0u64..1_000), 0..40),
        takes in proptest::collection::vec((0usize..5, 1usize..4), 0..20),
    ) {
        let mut buf: Buffer<u64> = Buffer::new();
        let mut next_id = 0u64;
        let mut pushed = BTreeSet::new();
        for (src, payload) in &pushes {
            let id = MsgId::new(next_id);
            next_id += 1;
            pushed.insert(id);
            buf.push(Envelope::new(id, pid(*src), pid(0), Time::new(next_id), *payload));
        }
        let mut taken = BTreeSet::new();
        for (src, count) in &takes {
            for env in buf.take_oldest_from(pid(*src), *count) {
                prop_assert!(taken.insert(env.id), "double delivery of {}", env.id);
            }
        }
        for env in buf.take_all() {
            prop_assert!(taken.insert(env.id), "double delivery of {}", env.id);
        }
        prop_assert_eq!(taken, pushed);
        prop_assert!(buf.is_empty());
    }

    /// FIFO per source: per-source payload sequences are delivered in send
    /// order regardless of interleaved takes.
    #[test]
    fn buffer_fifo_per_source(
        pushes in proptest::collection::vec((0usize..3, 0u64..100), 1..30),
        take_pattern in proptest::collection::vec((0usize..3, 1usize..3), 1..30),
    ) {
        let mut buf: Buffer<u64> = Buffer::new();
        let mut sent: Vec<Vec<u64>> = vec![vec![]; 3];
        for (i, (src, payload)) in pushes.iter().enumerate() {
            sent[*src].push(*payload);
            buf.push(Envelope::new(
                MsgId::new(i as u64),
                pid(*src),
                pid(0),
                Time::new(i as u64),
                *payload,
            ));
        }
        let mut received: Vec<Vec<u64>> = vec![vec![]; 3];
        for (src, count) in take_pattern {
            for env in buf.take_oldest_from(pid(src), count) {
                received[src].push(env.payload);
            }
        }
        for src in 0..3 {
            let k = received[src].len();
            prop_assert_eq!(&received[src][..], &sent[src][..k], "src {}", src);
        }
    }

    /// Failure-pattern merge is commutative, associative and idempotent.
    #[test]
    fn failure_pattern_merge_algebra(
        a in proptest::collection::vec(proptest::option::of(0u64..50), 5),
        b in proptest::collection::vec(proptest::option::of(0u64..50), 5),
        c in proptest::collection::vec(proptest::option::of(0u64..50), 5),
    ) {
        use kset::sim::FailurePattern;
        let fp = |v: &Vec<Option<u64>>| {
            FailurePattern::from_crash_times(v.iter().map(|o| o.map(Time::new)).collect())
        };
        let (a, b, c) = (fp(&a), fp(&b), fp(&c));
        prop_assert_eq!(a.merged_with(&b), b.merged_with(&a));
        prop_assert_eq!(
            a.merged_with(&b).merged_with(&c),
            a.merged_with(&b.merged_with(&c))
        );
        prop_assert_eq!(a.merged_with(&a), a.clone());
    }

    /// Projection then merge reconstructs a pattern split along any set
    /// boundary (the Lemma 11 failure-pattern surgery).
    #[test]
    fn failure_pattern_projection_split(
        times in proptest::collection::vec(proptest::option::of(0u64..50), 6),
        mask in 0u32..64,
    ) {
        use kset::sim::FailurePattern;
        let fp = FailurePattern::from_crash_times(
            times.iter().map(|o| o.map(Time::new)).collect(),
        );
        let d: ProcessSet =
            (0..6).filter(|i| mask & (1 << i) != 0).map(pid).collect();
        let complement = d.complement(6);
        let rebuilt = fp.projected_to(d).merged_with(&fp.projected_to(complement));
        prop_assert_eq!(rebuilt, fp);
    }
}
