//! Experiment E1, as a test: the Theorem 2 border, end to end.
//!
//! Sweeps the (n, f, k) grid, checks that the partition layout exists
//! exactly in the impossible region, that the Theorem 1 checker refutes
//! candidate algorithms there, and that the favourable (fully synchronous)
//! model point contrasts it by solving k-set agreement for any f.

use kset::core::algorithms::floodmin::{floodmin_rounds, FloodMin};
use kset::core::algorithms::two_stage::two_stage_inputs;
use kset::core::sync::{run_sync, RoundCrash};
use kset::core::task::distinct_proposals;
use kset::impossibility::theorem2::{demo_decide_own, demo_two_stage};
use kset::impossibility::{theorem2_impossible, PartitionSpec, Theorem1Outcome};
use kset::sim::ProcessId;

#[test]
fn layout_exists_exactly_in_the_impossible_region() {
    for n in 2..10 {
        for f in 1..n {
            for k in 1..n {
                assert_eq!(
                    PartitionSpec::theorem2(n, f, k).is_some(),
                    theorem2_impossible(n, f, k),
                    "n={n} f={f} k={k}"
                );
            }
        }
    }
}

#[test]
fn lemma3_shapes_hold_on_every_layout() {
    for n in 2..10 {
        for f in 1..n {
            for k in 1..n {
                if let Some(spec) = PartitionSpec::theorem2(n, f, k) {
                    let ell = n - f;
                    for block in spec.blocks() {
                        assert_eq!(block.len(), ell, "every Di has exactly ℓ processes");
                    }
                    assert!(
                        spec.dbar().len() > ell,
                        "D̄ has at least n−f+1 processes (Lemma 3)"
                    );
                }
            }
        }
    }
}

#[test]
fn naive_candidate_refuted_across_the_grid() {
    for n in 3..7 {
        for f in 1..n {
            for k in 1..n {
                if let Some(demo) = demo_decide_own(n, f, k, 50_000) {
                    assert!(demo.refuted(), "n={n} f={f} k={k}");
                    assert!(
                        demo.analysis.condition_b_verified,
                        "n={n} f={f} k={k}: pasting must verify"
                    );
                    assert!(
                        demo.analysis.condition_d_verified,
                        "n={n} f={f} k={k}: restriction must correspond"
                    );
                    assert!(demo.process_synchrony_ok, "n={n} f={f} k={k}");
                }
            }
        }
    }
}

#[test]
fn two_stage_candidate_refuted_in_sampled_points() {
    for (n, f, k) in [(5, 3, 2), (7, 5, 3), (6, 4, 2), (8, 6, 3)] {
        let demo = demo_two_stage(n, f, k, 200_000)
            .unwrap_or_else(|| panic!("n={n} f={f} k={k} must be impossible"));
        assert!(demo.refuted(), "n={n} f={f} k={k}");
        assert!(
            !matches!(
                demo.analysis.outcome,
                Theorem1Outcome::ConditionAFailed { .. }
            ),
            "n={n} f={f} k={k}: the L=n−f protocol must be flagged"
        );
    }
}

#[test]
fn corollary5_favourable_point_contrast() {
    // At the fully synchronous DDS point the SAME (n, f, k) that Theorem 2
    // declares impossible becomes solvable: FloodMin handles any f < n.
    for (n, f, k) in [(5, 3, 2), (7, 5, 3), (6, 4, 2)] {
        assert!(theorem2_impossible(n, f, k));
        let values = distinct_proposals(n);
        let procs = FloodMin::system(&values, f, k);
        let crashes: Vec<RoundCrash> = (0..f)
            .map(|i| RoundCrash {
                round: i / k + 1,
                pid: ProcessId::new(i),
                receivers: [ProcessId::new((i + 1) % n)].into(),
            })
            .collect();
        let out = run_sync(procs, floodmin_rounds(f, k), &crashes);
        assert!(
            out.distinct_decisions().len() <= k,
            "n={n} f={f} k={k}: FloodMin solves it synchronously"
        );
    }
}

#[test]
fn impossibility_is_about_asynchrony_not_crash_count() {
    // Theorem 2 needs only ONE non-initial crash; the partition adversary
    // we run uses ZERO crashes. The same algorithm with the same f of
    // purely initial crashes would be fine (Theorem 8) when kn > (k+1)f.
    // Point (6, 2, 2): Theorem 2 layout does not exist (2·4+1 = 9 > 6)…
    assert!(PartitionSpec::theorem2(6, 2, 2).is_none());
    // …but (6, 4, 2) is impossible partially-synchronously while still
    // being Theorem 8-borderline for initial crashes (12 = 12).
    assert!(theorem2_impossible(6, 4, 2));
    assert!(kset::impossibility::theorem8_borderline(6, 4, 2));
}

#[test]
fn independence_of_the_layout_blocks_lemma4() {
    // Lemma 4: the two-stage algorithm with L = n−f is independent for the
    // layout blocks {D1, …, D(k−1), D̄} (each has ≥ ℓ = L members).
    use kset::core::algorithms::two_stage::TwoStage;
    use kset::core::{isolated_run_no_fd, witnesses_independence};
    let (n, f, k) = (7, 5, 3);
    let spec = PartitionSpec::theorem2(n, f, k).unwrap();
    let l = n - f;
    for block in spec.all_parts() {
        let report = isolated_run_no_fd::<TwoStage>(
            two_stage_inputs(l, &distinct_proposals(n)),
            block,
            kset::sim::CrashPlan::none(),
            100_000,
        );
        assert!(
            witnesses_independence(&report, block),
            "block {block:?} must decide in isolation"
        );
    }
}
