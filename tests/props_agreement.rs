//! Property-based tests for the agreement layer: the Theorem 8 algorithm
//! never exceeds its decision bound, FloodMin never exceeds k, the
//! loneliness algorithm never reaches n distinct values, and consensus
//! safety is schedule-independent.

use proptest::prelude::*;

use kset::core::algorithms::floodmin::{floodmin_rounds, FloodMin};
use kset::core::algorithms::lonely_set::LonelySetAgreement;
use kset::core::algorithms::sigma_omega_consensus::SigmaOmegaConsensus;
use kset::core::algorithms::two_stage::{decision_bound, two_stage_inputs, TwoStage};
use kset::core::runner::{run_seeded, run_seeded_with_oracle};
use kset::core::sync::{run_sync, RoundCrash};
use kset::core::task::{distinct_proposals, KSetTask};
use kset::fd::{LonelinessOracle, RealisticSigmaOmega};
use kset::sim::{CrashPlan, ProcessId, ProcessSet, Time};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 8 possibility, randomized: for any solvable (n, f) with the
    /// tight k = ⌊n/(n−f)⌋ bound, any initially-dead set of size f, and any
    /// schedule seed, the two-stage protocol holds all three properties.
    #[test]
    fn two_stage_holds_across_random_points(
        n in 3usize..8,
        f_seed in 0usize..8,
        dead_seed in 0u64..1_000,
        seed in 0u64..10_000,
    ) {
        let f = f_seed % n;
        prop_assume!(f >= 1 && f < n);
        let l = n - f;
        let k = decision_bound(n, l).max(1);
        // Tightness: this k satisfies kn > (k+1)f exactly when the paper
        // says the protocol works.
        prop_assume!(k * n > (k + 1) * f);
        // Random dead set of size f.
        let mut dead = ProcessSet::new();
        let mut x = dead_seed;
        while dead.len() < f {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            dead.insert(pid((x >> 33) as usize % n));
        }
        let values = distinct_proposals(n);
        let report = run_seeded::<TwoStage>(
            two_stage_inputs(l, &values),
            CrashPlan::initially_dead(dead),
            seed,
            2_000_000,
        );
        let verdict = KSetTask::new(n, k).judge(&values, &report);
        prop_assert!(verdict.holds(), "n={n} f={f} k={k}: {verdict}");
    }

    /// FloodMin k-agreement under arbitrary crash schedules (receivers,
    /// rounds and victims all randomized).
    #[test]
    fn floodmin_never_exceeds_k(
        n in 2usize..9,
        k in 1usize..4,
        f_seed in 0usize..9,
        crash_bits in proptest::collection::vec((0usize..9, 0u32..512), 0..8),
    ) {
        let f = f_seed % n;
        let rounds = floodmin_rounds(f, k);
        let values = distinct_proposals(n);
        let procs = FloodMin::system(&values, f, k);
        let mut victims = ProcessSet::new();
        let mut crashes = Vec::new();
        for (v_seed, mask) in crash_bits.iter().take(f) {
            let victim = pid(v_seed % n);
            if !victims.insert(victim) {
                continue;
            }
            let receivers: ProcessSet =
                (0..n).filter(|i| mask & (1 << i) != 0).map(pid).collect();
            let round = 1 + (*mask as usize) % rounds;
            crashes.push(RoundCrash { round, pid: victim, receivers });
        }
        let out = run_sync(procs, rounds, &crashes);
        prop_assert!(
            out.distinct_decisions().len() <= k,
            "n={n} k={k} f={f}: {:?}",
            out.decisions
        );
        for i in 0..n {
            if !out.crashed.contains(pid(i)) {
                prop_assert!(out.decisions[i].is_some(), "p{} undecided", i + 1);
            }
        }
    }

    /// The loneliness algorithm never produces n distinct decisions — the
    /// (n−1)-set agreement safety property, schedule- and crash-agnostic.
    #[test]
    fn lonely_set_never_n_distinct(
        n in 2usize..8,
        f_seed in 0usize..8,
        dead_seed in 0u64..1_000,
        seed in 0u64..10_000,
    ) {
        let f = f_seed % n; // 0 ≤ f ≤ n−1
        let mut dead = ProcessSet::new();
        let mut x = dead_seed.wrapping_add(seed);
        while dead.len() < f {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            dead.insert(pid((x >> 33) as usize % n));
        }
        let values = distinct_proposals(n);
        let report = run_seeded_with_oracle::<LonelySetAgreement, _>(
            values.clone(),
            LonelinessOracle::new(n),
            CrashPlan::initially_dead(dead),
            seed,
            500_000,
        );
        prop_assert!(report.violations.is_empty());
        prop_assert!(report.distinct_decisions.len() < n || n == 1);
        let verdict = KSetTask::new(n, (n - 1).max(1)).judge(&values, &report);
        prop_assert!(verdict.holds(), "n={n} f={f}: {verdict}");
    }

    /// (Σ, Ω) consensus safety: whatever the schedule, stabilization time
    /// and leader, decided processes agree on one proposed value.
    #[test]
    fn sigma_omega_consensus_safety(
        n in 2usize..7,
        leader in 0usize..7,
        tgst in 0u64..300,
        seed in 0u64..10_000,
    ) {
        let leader = pid(leader % n);
        let values = distinct_proposals(n);
        let oracle = RealisticSigmaOmega::consensus(n, Time::new(tgst), leader);
        let report = run_seeded_with_oracle::<SigmaOmegaConsensus, _>(
            values.clone(),
            oracle,
            CrashPlan::none(),
            seed,
            400_000,
        );
        prop_assert!(report.violations.is_empty());
        prop_assert!(report.distinct_decisions.len() <= 1, "two decided values!");
        for v in &report.distinct_decisions {
            prop_assert!(values.contains(v), "validity");
        }
    }
}
