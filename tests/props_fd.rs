//! Property-based tests for the failure-detector framework: generated
//! histories always satisfy their class definitions, and Lemma 9 holds on
//! randomized partition layouts.

use proptest::prelude::*;

use kset::fd::{
    check_loneliness, check_omega_k, check_partition_sigma, check_sigma_k, History, LeaderSample,
    LonelinessOracle, PartitionSigmaOmega, QuorumSample, TrustAliveSigma,
};
use kset::sim::{FailurePattern, Oracle, ProcessId, ProcessSet, Time};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// A randomized failure pattern: each listed process crashes at the given
/// positive time.
fn pattern(n: usize, crashes: &[(usize, u64)]) -> FailurePattern {
    let mut fp = FailurePattern::all_correct(n);
    for (p, t) in crashes {
        if p % n < n {
            fp.record_crash(pid(p % n), Time::new(1 + t % 50));
        }
    }
    fp
}

/// Random partition of `0..n` into `k` nonempty blocks, driven by an
/// assignment vector.
fn blocks_from(n: usize, k: usize, assign: &[usize]) -> Vec<ProcessSet> {
    let mut blocks: Vec<ProcessSet> = vec![ProcessSet::new(); k];
    for i in 0..n {
        let b = assign.get(i).copied().unwrap_or(0) % k;
        blocks[b].insert(pid(i));
    }
    // Repair empties: steal from the largest block.
    for b in 0..k {
        if blocks[b].is_empty() {
            let (largest, _) = blocks
                .iter()
                .enumerate()
                .max_by_key(|(_, s)| s.len())
                .unwrap();
            let steal = blocks[largest].first().unwrap();
            blocks[largest].remove(steal);
            blocks[b].insert(steal);
        }
    }
    blocks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TrustAliveSigma histories pass the Σ1 (and hence Σk) checker under
    /// arbitrary crash patterns and query interleavings, provided correct
    /// processes keep querying after the last crash.
    #[test]
    fn trust_alive_sigma_is_always_valid(
        n in 2usize..8,
        crashes in proptest::collection::vec((0usize..8, 0u64..50), 0..3),
        queries in proptest::collection::vec((0usize..8, 1u64..60), 1..40),
    ) {
        let fp = pattern(n, &crashes);
        let mut oracle = TrustAliveSigma::new(n);
        let mut h: History<QuorumSample> = History::new();
        for (p, t) in queries {
            let p = pid(p % n);
            let t = Time::new(t);
            if fp.is_crashed(p, t) {
                continue; // crashed processes do not query
            }
            let s = oracle.sample(p, t, &fp);
            h.record(p, t, s);
        }
        // Tail cleanup: each correct process queries once after everything.
        for p in fp.correct() {
            let t = Time::new(1_000);
            let s = oracle.sample(p, t, &fp);
            h.record(p, t, s);
        }
        for k in 1..n {
            prop_assert!(check_sigma_k(&h, k, &fp).is_ok(), "Σ{k}");
        }
    }

    /// Lemma 9, randomized: partition-FD histories over random layouts and
    /// crash patterns satisfy Definition 7 part 1, plain Σk, and plain Ωk.
    #[test]
    fn lemma9_on_random_partitions(
        n in 3usize..8,
        k_seed in 0usize..10,
        assign in proptest::collection::vec(0usize..8, 8),
        crashes in proptest::collection::vec((0usize..8, 0u64..30), 0..2),
        queries in proptest::collection::vec((0usize..8, 1u64..40), 1..50),
    ) {
        let k = 2 + k_seed % (n - 1).max(1).min(n - 1); // 2 ≤ k ≤ n
        prop_assume!(k <= n);
        let blocks = blocks_from(n, k, &assign);
        let fp = pattern(n, &crashes);
        // LD: one id per block (take the min of each) — intersects the
        // correct set as long as some block min is correct; repair if not.
        let mut ld: LeaderSample = blocks.iter().map(|b| b.first().unwrap()).collect();
        if !ld.iter().any(|p| fp.crash_time(p).is_none()) {
            let correct = fp.correct();
            prop_assume!(!correct.is_empty());
            let c = correct.first().unwrap();
            let evict = ld.first().unwrap();
            ld.remove(evict);
            ld.insert(c);
        }
        prop_assume!(ld.len() == k);
        let tgst = Time::new(100);
        let mut oracle = PartitionSigmaOmega::new(n, blocks.clone(), tgst, ld);
        let mut hs: History<QuorumSample> = History::new();
        let mut ho: History<LeaderSample> = History::new();
        for (p, t) in queries {
            let p = pid(p % n);
            let t = Time::new(t);
            if fp.is_crashed(p, t) {
                continue;
            }
            let s = oracle.sample(p, t, &fp);
            hs.record(p, t, s.sigma);
            ho.record(p, t, s.omega);
        }
        // Stabilization suffix: every correct process queries past t_GST.
        for (i, p) in fp.correct().into_iter().enumerate() {
            let t = Time::new(tgst.raw() + 1 + i as u64);
            let s = oracle.sample(p, t, &fp);
            hs.record(p, t, s.sigma);
            ho.record(p, t, s.omega);
        }
        prop_assert!(check_partition_sigma(&hs, &blocks, &fp).is_ok(), "Definition 7.1");
        prop_assert!(check_sigma_k(&hs, k, &fp).is_ok(), "Lemma 9 / Σk");
        prop_assert!(check_omega_k(&ho, k, &fp).is_ok(), "Lemma 9 / Ωk");
    }

    /// The loneliness oracle always satisfies the L specification.
    #[test]
    fn loneliness_oracle_is_always_valid(
        n in 1usize..7,
        crashes in proptest::collection::vec((0usize..8, 0u64..30), 0..7),
        queries in proptest::collection::vec((0usize..8, 1u64..40), 1..40),
    ) {
        let fp = pattern(n, &crashes);
        let mut oracle = LonelinessOracle::new(n);
        let mut h = History::new();
        for (p, t) in queries {
            let p = pid(p % n);
            let t = Time::new(t);
            if fp.is_crashed(p, t) {
                continue;
            }
            h.record(p, t, oracle.sample(p, t, &fp));
        }
        // Liveness tail for a lone survivor.
        let correct = fp.correct();
        if correct.len() == 1 {
            let p = correct.first().unwrap();
            let t = Time::new(500);
            h.record(p, t, oracle.sample(p, t, &fp));
        }
        prop_assert!(check_loneliness(&h, &fp).is_ok());
    }

    /// The Σk checker's disjointness search is sound: planting k+1 known
    /// pairwise-disjoint quorums at distinct processes is always caught.
    #[test]
    fn planted_disjoint_quorums_are_found(
        k in 1usize..4,
        noise in proptest::collection::vec((0usize..12, 1u64..50), 0..20),
    ) {
        let n = 3 * (k + 1);
        let fp = FailurePattern::all_correct(n);
        let mut h: History<QuorumSample> = History::new();
        // Noise samples: full-universe quorums (never disjoint).
        let universe: QuorumSample = ProcessId::all(n).collect();
        for (p, t) in noise {
            h.record(pid(p % n), Time::new(t), universe);
        }
        // Planted family: process 3i gets quorum {3i, 3i+1, 3i+2}.
        for i in 0..=k {
            let q: QuorumSample = (3 * i..3 * i + 3).map(pid).collect();
            h.record(pid(3 * i), Time::new(100 + i as u64), q);
        }
        prop_assert!(check_sigma_k(&h, k, &fp).is_err(), "plant must refute Σ{k}");
        prop_assert!(check_sigma_k(&h, k + 1, &fp).is_ok(), "Σ{} tolerates k+1 disjoint", k + 1);
    }
}
