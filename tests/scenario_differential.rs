//! Differential conformance between the two substrates: one scenario
//! description compiled to both the step-level simulator and the round-level
//! lock-step executor must produce equivalent runs under the synchronous
//! schedule family — across the full Theorem 8 border grid, under parallel
//! and sequential sweeps alike — and must *flag* (not panic on) divergence
//! under asynchronous families.

use kset::core::algorithms::floodmin::FloodMin;
use kset::core::scenario::differential::{self, DiffReport};
use kset::core::scenario::RoundAdapter;
use kset::impossibility::theorem8_border_cells as border_cells;
use kset::sim::explore::{explore_scenario, Branching, ExploreConfig};
use kset::sim::scenario::{Scenario, ScheduleFamily};
use kset::sim::sweep::{scenario_grid, sweep, sweep_seq};

#[test]
fn theorem8_border_grid_substrates_agree() {
    // Favourable side of the border: every scenario's lock-step compilation
    // and step-level compilation must agree on decisions, distinct counts
    // and termination — the two-substrate architecture as a tested
    // equivalence, not a trait coincidence.
    for cell in border_cells(42) {
        let scenario = Scenario::from_cell(&cell);
        assert!(scenario.is_lock_step());
        let report = differential::check::<FloodMin>(&scenario)
            .unwrap_or_else(|e| panic!("cell {}: {e}", cell.index));
        assert!(
            report.agrees(),
            "n={} f={} k={} seed={:#x}: {:?}",
            cell.n,
            cell.f,
            cell.k,
            cell.seed,
            report.divergences
        );
        assert!(report.sim.terminated && report.lockstep.terminated);
        assert_eq!(report.sim.distinct, report.lockstep.distinct);
        assert!(
            report.lockstep.k_agreement(cell.k),
            "FloodMin must reach k-agreement on the favourable side"
        );
        assert_eq!(report.lockstep.units, scenario.rounds as u64);
    }
}

#[test]
fn differential_parallel_sweep_equals_sequential() {
    // The differential check is a pure function of the scenario, so the
    // parallel sweep over a scenario grid must reproduce the sequential
    // pass bit for bit — reports included.
    let scenarios = scenario_grid(&[4, 6, 8], &[1, 2], &[1, 2], 7).expect("within capacity");
    assert!(!scenarios.is_empty());
    let worker = |_: usize, sc: &Scenario| -> DiffReport {
        differential::check::<FloodMin>(sc).expect("grid scenarios are valid")
    };
    let parallel = sweep(&scenarios, worker);
    let sequential = sweep_seq(&scenarios, worker);
    assert_eq!(parallel, sequential);
    for (sc, report) in scenarios.iter().zip(&parallel) {
        assert!(
            report.agrees(),
            "n={} f={} k={}: {:?}",
            sc.n,
            sc.f,
            sc.k,
            report.divergences
        );
    }
}

#[test]
fn observer_counts_agree_across_substrates_on_the_border_grid() {
    // The observation acceptance claim: one Observer impl (the event
    // counter) attached to the SAME scenario compiled to both substrates
    // under the lock-step family produces consistent observations —
    // transmitted sends, decisions (values included) and crashes agree
    // exactly, on every cell of the Theorem 8 border grid.
    use kset::core::scenario::differential::check_observed;
    use kset::core::Val;
    use kset::sim::observe::EventCounter;

    for cell in border_cells(42) {
        let scenario = Scenario::from_cell(&cell);
        let mut sim_counter: EventCounter<Val> = EventCounter::new();
        let mut lock_counter: EventCounter<Val> = EventCounter::new();
        let report = check_observed::<FloodMin>(&scenario, &mut sim_counter, &mut lock_counter)
            .unwrap_or_else(|e| panic!("cell {}: {e}", cell.index));
        assert!(
            report.agrees(),
            "cell {}: {:?}",
            cell.index,
            report.divergences
        );

        let (sim, lock) = (sim_counter.counts(), lock_counter.counts());
        let tag = format!("n={} f={} k={}", cell.n, cell.f, cell.k);
        // Border scenarios have no initially-dead processes, so even the
        // raw send counts (dropped ones included) line up.
        assert_eq!(sim.sends, lock.sends, "{tag}: sends");
        assert_eq!(sim.transmitted(), lock.transmitted(), "{tag}: transmitted");
        assert_eq!(sim.crashes, lock.crashes, "{tag}: crashes");
        assert_eq!(sim.crashes, cell.f as u64, "{tag}: exactly f crashes");
        assert_eq!(sim.decides, lock.decides, "{tag}: decide count");
        assert_eq!(
            sim_counter.decisions_by_process(),
            lock_counter.decisions_by_process(),
            "{tag}: decided values per process"
        );
        // The step substrate may consume messages that reach a buffer
        // before the crash the round executor expresses as "skip the
        // receive phase" — it can deliver more, never less.
        assert!(sim.delivers >= lock.delivers, "{tag}: deliver relation");
        // Substrate-specific units: steps on one side, rounds on the other.
        assert_eq!(lock.rounds, scenario.rounds as u64, "{tag}: rounds");
        assert_eq!(lock.steps, 0, "{tag}: no step events from the rounds side");
        assert_eq!(sim.rounds, 0, "{tag}: no round events from the steps side");
        assert_eq!((sim.halts, lock.halts), (1, 1), "{tag}: one halt each");
    }
}

#[test]
fn observer_counts_agree_exactly_without_crashes() {
    // With no crashes there is no in-flight edge: every event total the
    // counter tracks (deliveries included) is equal across substrates.
    use kset::core::scenario::differential::check_observed;
    use kset::core::Val;
    use kset::sim::observe::EventCounter;

    let scenario = Scenario::favourable(6, 2, 1);
    let mut sim_counter: EventCounter<Val> = EventCounter::new();
    let mut lock_counter: EventCounter<Val> = EventCounter::new();
    let report = check_observed::<FloodMin>(&scenario, &mut sim_counter, &mut lock_counter)
        .expect("favourable scenario is valid");
    assert!(report.agrees());
    let (sim, lock) = (sim_counter.counts(), lock_counter.counts());
    assert_eq!(sim.sends, lock.sends);
    assert_eq!((sim.dropped, lock.dropped), (0, 0));
    assert_eq!(sim.delivers, lock.delivers);
    assert_eq!(sim.decides, lock.decides);
    assert_eq!((sim.crashes, lock.crashes), (0, 0));
    assert_eq!(
        sim_counter.decisions_by_process(),
        lock_counter.decisions_by_process()
    );
}

#[test]
fn async_schedule_family_divergence_is_flagged_not_fatal() {
    // The deliberately asymmetric scenario: same model point, same crash
    // description, but an asynchronous schedule family. The step-level run
    // consumes incomplete round inboxes, so the substrates disagree — and
    // the report must carry that divergence instead of panicking.
    let base = border_cells(42).remove(2); // (n, k) = (8, 1), f = 4
    let mut diverged = 0usize;
    for seed in 0..16u64 {
        let scenario = Scenario::from_cell(&base).with_schedule(ScheduleFamily::Async {
            seed,
            deliver_percent: 20,
            fairness_window: 4,
        });
        let report = differential::check::<FloodMin>(&scenario)
            .expect("an async family is not a scenario error");
        assert!(!report.lock_step_family);
        // The round-level side is untouched by the schedule family and
        // still solves consensus.
        assert!(report.lockstep.k_agreement(1));
        assert!(report.lockstep.terminated);
        if !report.agrees() {
            diverged += 1;
        }
    }
    assert!(
        diverged > 0,
        "a 20%-delivery async family must diverge from lock-step on some seed"
    );
}

#[test]
fn explorer_refutes_floodmin_under_all_schedules() {
    // The explorer consumes a compiled scenario directly and quantifies
    // over ALL schedules: FloodMin's round structure only survives the
    // synchronous family, so exhaustive exploration finds a k-agreement
    // violation — the unfavourable side of the border, observed on the
    // same scenario value that the lock-step side solves.
    let scenario = Scenario::favourable(2, 1, 1).with_inputs(vec![3, 9]);
    let config = ExploreConfig {
        max_depth: 8,
        max_states: 50_000,
        branching: Branching::NoneOrAll,
    };
    let report = explore_scenario::<RoundAdapter<FloodMin>>(&scenario, &config, |sim| {
        let distinct: std::collections::BTreeSet<u64> =
            sim.decisions().iter().flatten().copied().collect();
        if distinct.len() > 1 {
            return Err(format!("consensus violated: {distinct:?}"));
        }
        Ok(())
    })
    .expect("valid scenario");
    let violation = report.violation.expect("a violating schedule exists");
    assert!(!violation.path.is_empty(), "the schedule is replayable");

    // The same scenario's lock-step compilation is safe — the explorer's
    // violation is a property of asynchrony, not of the algorithm.
    let diff = differential::check::<FloodMin>(&scenario).expect("valid scenario");
    assert!(diff.agrees());
    assert!(diff.lockstep.k_agreement(1));
}

#[test]
fn invalid_scenarios_are_typed_errors_on_both_compilers() {
    let bad = Scenario::favourable(4, 1, 1).with_inputs(vec![1]);
    let sim_err = bad.to_sim::<RoundAdapter<FloodMin>>().unwrap_err();
    let lock_err = kset::core::scenario::to_lockstep::<FloodMin>(&bad).unwrap_err();
    assert_eq!(sim_err, lock_err, "one validation, two compilers");
    assert!(differential::check::<FloodMin>(&bad).is_err());
}
