//! Differential conformance between the three substrates: one scenario
//! description compiled to the step-level simulator, the round-level
//! lock-step executor, and the discrete-event engine must produce
//! equivalent runs under the synchronous schedule family — across the full
//! Theorem 8 border grid, under parallel and sequential sweeps alike — and
//! must *flag* (not panic on) divergence under asynchronous families. The
//! natively timed family is compared against the round executor directly:
//! fixed latency with `gst = 0` walks the exact round cadence.

use kset::core::algorithms::floodmin::FloodMin;
use kset::core::scenario::differential::{self, DiffReport};
use kset::core::scenario::RoundAdapter;
use kset::impossibility::theorem8_border_cells as border_cells;
use kset::sim::explore::{explore_scenario, Branching, ExploreConfig};
use kset::sim::scenario::{Scenario, ScheduleFamily};
use kset::sim::sweep::{scenario_grid, sweep, sweep_seq};

#[test]
fn theorem8_border_grid_substrates_agree() {
    // Favourable side of the border: every scenario's lock-step compilation
    // and step-level compilation must agree on decisions, distinct counts
    // and termination — the two-substrate architecture as a tested
    // equivalence, not a trait coincidence.
    for cell in border_cells(42) {
        let scenario = Scenario::from_cell(&cell);
        assert!(scenario.is_lock_step());
        let report = differential::check::<FloodMin>(&scenario)
            .unwrap_or_else(|e| panic!("cell {}: {e}", cell.index));
        assert!(
            report.agrees(),
            "n={} f={} k={} seed={:#x}: {:?}",
            cell.n,
            cell.f,
            cell.k,
            cell.seed,
            report.divergences
        );
        assert!(report.sim.terminated && report.lockstep.terminated);
        assert_eq!(report.sim.distinct, report.lockstep.distinct);
        assert!(
            report.lockstep.k_agreement(cell.k),
            "FloodMin must reach k-agreement on the favourable side"
        );
        assert_eq!(report.lockstep.units, scenario.rounds as u64);
        // The third substrate: the discrete-event engine's unit→time
        // embedding replays the step-level run exactly — decisions AND
        // unit accounting.
        assert!(report.des.terminated);
        assert_eq!(report.des.decisions, report.sim.decisions);
        assert_eq!(report.des.units, report.sim.units);
    }
}

#[test]
fn differential_parallel_sweep_equals_sequential() {
    // The differential check is a pure function of the scenario, so the
    // parallel sweep over a scenario grid must reproduce the sequential
    // pass bit for bit — reports included.
    let scenarios = scenario_grid(&[4, 6, 8], &[1, 2], &[1, 2], 7).expect("within capacity");
    assert!(!scenarios.is_empty());
    let worker = |_: usize, sc: &Scenario| -> DiffReport {
        differential::check::<FloodMin>(sc).expect("grid scenarios are valid")
    };
    let parallel = sweep(&scenarios, worker);
    let sequential = sweep_seq(&scenarios, worker);
    assert_eq!(parallel, sequential);
    for (sc, report) in scenarios.iter().zip(&parallel) {
        assert!(
            report.agrees(),
            "n={} f={} k={}: {:?}",
            sc.n,
            sc.f,
            sc.k,
            report.divergences
        );
    }
}

#[test]
fn observer_counts_agree_across_substrates_on_the_border_grid() {
    // The observation acceptance claim: one Observer impl (the event
    // counter) attached to the SAME scenario compiled to both substrates
    // under the lock-step family produces consistent observations —
    // transmitted sends, decisions (values included) and crashes agree
    // exactly, on every cell of the Theorem 8 border grid.
    use kset::core::scenario::differential::check_observed;
    use kset::core::Val;
    use kset::sim::observe::EventCounter;

    for cell in border_cells(42) {
        let scenario = Scenario::from_cell(&cell);
        let mut sim_counter: EventCounter<Val> = EventCounter::new();
        let mut lock_counter: EventCounter<Val> = EventCounter::new();
        let mut des_counter: EventCounter<Val> = EventCounter::new();
        let report = check_observed::<FloodMin>(
            &scenario,
            &mut sim_counter,
            &mut lock_counter,
            &mut des_counter,
        )
        .unwrap_or_else(|e| panic!("cell {}: {e}", cell.index));
        assert!(
            report.agrees(),
            "cell {}: {:?}",
            cell.index,
            report.divergences
        );

        // The embedded discrete-event run emits the *identical* event
        // stream as the step substrate — every counter equal.
        assert_eq!(
            des_counter.counts(),
            sim_counter.counts(),
            "cell {}: embedded DES event totals",
            cell.index
        );
        assert_eq!(
            des_counter.decisions_by_process(),
            sim_counter.decisions_by_process()
        );

        let (sim, lock) = (sim_counter.counts(), lock_counter.counts());
        let tag = format!("n={} f={} k={}", cell.n, cell.f, cell.k);
        // Border scenarios have no initially-dead processes, so even the
        // raw send counts (dropped ones included) line up.
        assert_eq!(sim.sends, lock.sends, "{tag}: sends");
        assert_eq!(sim.transmitted(), lock.transmitted(), "{tag}: transmitted");
        assert_eq!(sim.crashes, lock.crashes, "{tag}: crashes");
        assert_eq!(sim.crashes, cell.f as u64, "{tag}: exactly f crashes");
        assert_eq!(sim.decides, lock.decides, "{tag}: decide count");
        assert_eq!(
            sim_counter.decisions_by_process(),
            lock_counter.decisions_by_process(),
            "{tag}: decided values per process"
        );
        // The step substrate may consume messages that reach a buffer
        // before the crash the round executor expresses as "skip the
        // receive phase" — it can deliver more, never less.
        assert!(sim.delivers >= lock.delivers, "{tag}: deliver relation");
        // Substrate-specific units: steps on one side, rounds on the other.
        assert_eq!(lock.rounds, scenario.rounds as u64, "{tag}: rounds");
        assert_eq!(lock.steps, 0, "{tag}: no step events from the rounds side");
        assert_eq!(sim.rounds, 0, "{tag}: no round events from the steps side");
        assert_eq!((sim.halts, lock.halts), (1, 1), "{tag}: one halt each");
    }
}

#[test]
fn observer_counts_agree_exactly_without_crashes() {
    // With no crashes there is no in-flight edge: every event total the
    // counter tracks (deliveries included) is equal across substrates.
    use kset::core::scenario::differential::check_observed;
    use kset::core::Val;
    use kset::sim::observe::EventCounter;

    let scenario = Scenario::favourable(6, 2, 1);
    let mut sim_counter: EventCounter<Val> = EventCounter::new();
    let mut lock_counter: EventCounter<Val> = EventCounter::new();
    let mut des_counter: EventCounter<Val> = EventCounter::new();
    let report = check_observed::<FloodMin>(
        &scenario,
        &mut sim_counter,
        &mut lock_counter,
        &mut des_counter,
    )
    .expect("favourable scenario is valid");
    assert_eq!(des_counter.counts(), sim_counter.counts());
    assert!(report.agrees());
    let (sim, lock) = (sim_counter.counts(), lock_counter.counts());
    assert_eq!(sim.sends, lock.sends);
    assert_eq!((sim.dropped, lock.dropped), (0, 0));
    assert_eq!(sim.delivers, lock.delivers);
    assert_eq!(sim.decides, lock.decides);
    assert_eq!((sim.crashes, lock.crashes), (0, 0));
    assert_eq!(
        sim_counter.decisions_by_process(),
        lock_counter.decisions_by_process()
    );
}

#[test]
fn async_schedule_family_divergence_is_flagged_not_fatal() {
    // The deliberately asymmetric scenario: same model point, same crash
    // description, but an asynchronous schedule family. The step-level run
    // consumes incomplete round inboxes, so the substrates disagree — and
    // the report must carry that divergence instead of panicking.
    let base = border_cells(42).remove(2); // (n, k) = (8, 1), f = 4
    let mut diverged = 0usize;
    for seed in 0..16u64 {
        let scenario = Scenario::from_cell(&base).with_schedule(ScheduleFamily::Async {
            seed,
            deliver_percent: 20,
            fairness_window: 4,
        });
        let report = differential::check::<FloodMin>(&scenario)
            .expect("an async family is not a scenario error");
        assert!(!report.lock_step_family);
        // The round-level side is untouched by the schedule family and
        // still solves consensus.
        assert!(report.lockstep.k_agreement(1));
        assert!(report.lockstep.terminated);
        if !report.agrees() {
            diverged += 1;
        }
    }
    assert!(
        diverged > 0,
        "a 20%-delivery async family must diverge from lock-step on some seed"
    );
}

#[test]
fn explorer_refutes_floodmin_under_all_schedules() {
    // The explorer consumes a compiled scenario directly and quantifies
    // over ALL schedules: FloodMin's round structure only survives the
    // synchronous family, so exhaustive exploration finds a k-agreement
    // violation — the unfavourable side of the border, observed on the
    // same scenario value that the lock-step side solves.
    let scenario = Scenario::favourable(2, 1, 1).with_inputs(vec![3, 9]);
    let config = ExploreConfig {
        max_depth: 8,
        max_states: 50_000,
        branching: Branching::NoneOrAll,
    };
    let report = explore_scenario::<RoundAdapter<FloodMin>>(&scenario, &config, |sim| {
        let distinct: std::collections::BTreeSet<u64> =
            sim.decisions().iter().flatten().copied().collect();
        if distinct.len() > 1 {
            return Err(format!("consensus violated: {distinct:?}"));
        }
        Ok(())
    })
    .expect("valid scenario");
    let violation = report.violation.expect("a violating schedule exists");
    assert!(!violation.path.is_empty(), "the schedule is replayable");

    // The same scenario's lock-step compilation is safe — the explorer's
    // violation is a property of asynchrony, not of the algorithm.
    let diff = differential::check::<FloodMin>(&scenario).expect("valid scenario");
    assert!(diff.agrees());
    assert!(diff.lockstep.k_agreement(1));
}

#[test]
fn timed_fixed_latency_replays_the_round_executor() {
    // The timed family has no unit scheduler, so `differential::check`
    // rejects it — instead we compare it against the round executor
    // directly, exploiting the cadence fact pinned by the engine's own
    // tests: with fixed latency `d` and `gst = 0`, step `r` of every
    // process happens at virtual time `1 + (r-1)·d`, and a crash strike
    // scheduled at exactly that instant wins the same-instant tie. A
    // lock-step scenario whose round-`r` crash reaches *nobody* therefore
    // has a timed twin — the same crash expressed in virtual time — and
    // the two substrates must agree on every process's decision.
    use kset::core::scenario::to_lockstep;
    use kset::sim::des::Latency;
    use kset::sim::{Engine, ProcessId, ProcessSet, ScenarioCrash};

    let d: u64 = 4;
    for (n, f, k) in [(5usize, 2usize, 1usize), (6, 3, 2), (7, 3, 1)] {
        // Crash process j in round (j mod rounds) + 1 — staying inside the
        // scenario's round budget — with the final message reaching nobody.
        let rounds = f / k + 1;
        let crashes: Vec<ScenarioCrash> = (0..f)
            .map(|j| ScenarioCrash {
                pid: ProcessId::new(j),
                round: (j % rounds) + 1,
                receivers: ProcessSet::new(),
            })
            .collect();

        let mut lock_sc = Scenario::favourable(n, f, k);
        lock_sc.crashes = crashes.clone();
        let mut lock = to_lockstep::<FloodMin>(&lock_sc).expect("valid lock-step scenario");
        lock.drive(lock_sc.rounds as u64);

        let mut timed_sc = Scenario::favourable(n, f, k).with_schedule(ScheduleFamily::Timed {
            latency: Latency::fixed(d),
            gst: 0,
            seed: 0xC0FFEE,
        });
        timed_sc.crashes = crashes
            .iter()
            .map(|c| ScenarioCrash {
                pid: c.pid,
                // Round r → the virtual time of step r.
                round: 1 + (c.round - 1) * d as usize,
                receivers: ProcessSet::new(),
            })
            .collect();
        let mut des = timed_sc
            .to_des::<RoundAdapter<FloodMin>>()
            .expect("valid timed scenario");
        let status = des.drive(timed_sc.max_units);
        let tag = format!("n={n} f={f} k={k}");
        assert!(des.done(), "{tag}: timed run terminates ({status:?})");
        assert_eq!(
            des.decisions(),
            lock.decisions(),
            "{tag}: per-process decisions across the timed/round pair"
        );
        assert_eq!(des.distinct_decisions(), lock.distinct_decisions(), "{tag}");
        assert!(
            des.distinct_decisions().len() <= k,
            "{tag}: k-agreement on the timed substrate"
        );
    }
}

#[test]
fn timed_uniform_latency_terminates_and_is_seed_deterministic() {
    // Under jittered latencies the round cadence dissolves — steps consume
    // whatever arrived — so neither equality with the round executor nor
    // k-agreement is promised (FloodMin's round structure is exactly what
    // jitter breaks). What IS promised: the run terminates, every decision
    // is one of the proposals, and the whole outcome is a pure function of
    // the seed.
    use kset::sim::des::Latency;
    use kset::sim::Engine;

    for seed in 0..8u64 {
        let run = || {
            let scenario = Scenario::favourable(6, 2, 1).with_schedule(ScheduleFamily::Timed {
                latency: Latency::uniform(2, 9),
                gst: 11,
                seed,
            });
            let mut des = scenario
                .to_des::<RoundAdapter<FloodMin>>()
                .expect("valid timed scenario");
            des.drive(scenario.max_units);
            assert!(des.done(), "seed {seed}: the timed run terminates");
            des.decisions()
        };
        let (first, second) = (run(), run());
        assert_eq!(first, second, "seed {seed}: reproducible decisions");
        for (i, d) in first.iter().enumerate() {
            let v = d.unwrap_or_else(|| panic!("seed {seed}: process {i} decided"));
            assert!(v < 6, "seed {seed}: decisions are proposals");
        }
    }
}

#[test]
fn invalid_scenarios_are_typed_errors_on_both_compilers() {
    let bad = Scenario::favourable(4, 1, 1).with_inputs(vec![1]);
    let sim_err = bad.to_sim::<RoundAdapter<FloodMin>>().unwrap_err();
    let lock_err = kset::core::scenario::to_lockstep::<FloodMin>(&bad).unwrap_err();
    assert_eq!(sim_err, lock_err, "one validation, two compilers");
    assert!(differential::check::<FloodMin>(&bad).is_err());
}
