//! Cross-crate integration tests for the run-pasting machinery
//! (Lemmas 11/12) and the indistinguishability layer (Definitions 1–3).

use kset::core::algorithms::two_stage::{two_stage_inputs, TwoStage};
use kset::core::task::distinct_proposals;
use kset::impossibility::{lemma12_no_fd, solo_run_no_fd};
use kset::sim::indist::{compare_views, indistinguishable_for_set, ViewComparison};
use kset::sim::sched::round_robin::RoundRobin;
use kset::sim::sched::scripted::Scripted;
use kset::sim::{restricted_simulation, CrashPlan, ProcessId, ProcessSet};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn block(ids: &[usize]) -> ProcessSet {
    ids.iter().copied().map(ProcessId::new).collect()
}

#[test]
fn pasting_three_blocks_of_three() {
    let n = 9;
    let parts = vec![block(&[0, 1, 2]), block(&[3, 4, 5]), block(&[6, 7, 8])];
    let pasted = lemma12_no_fd::<TwoStage>(
        || two_stage_inputs(3, &distinct_proposals(n)),
        &parts,
        200_000,
    );
    assert!(pasted.verified);
    assert_eq!(pasted.distinct_decisions(), 3);
    assert_eq!(pasted.report.failure_pattern.num_faulty(), 0);
}

#[test]
fn pasting_with_uneven_blocks() {
    let n = 7;
    let parts = vec![block(&[0, 1]), block(&[2, 3, 4, 5, 6])];
    let pasted = lemma12_no_fd::<TwoStage>(
        || two_stage_inputs(2, &distinct_proposals(n)),
        &parts,
        200_000,
    );
    assert!(pasted.verified);
    assert_eq!(pasted.distinct_decisions(), 2);
}

#[test]
fn pasted_views_equal_solo_views_exactly() {
    let n = 6;
    let parts = vec![block(&[0, 1, 2]), block(&[3, 4, 5])];
    let pasted = lemma12_no_fd::<TwoStage>(
        || two_stage_inputs(3, &distinct_proposals(n)),
        &parts,
        200_000,
    );
    for solo in &pasted.solos {
        for p in solo.block {
            assert_eq!(
                compare_views(&pasted.report.trace, &solo.report.trace, p),
                ViewComparison::EqualUntilDecision,
                "{p}"
            );
        }
    }
}

#[test]
fn restriction_run_matches_initially_dead_run() {
    // Condition (D) in the small: A|D with D = {p1,p2,p3} behaves exactly
    // like A with p4..p6 initially dead, for the D processes.
    let n = 6;
    let d = block(&[0, 1, 2]);
    let l = 3;

    // A with outsiders dead.
    let dead_run = solo_run_no_fd::<TwoStage>(
        two_stage_inputs(l, &distinct_proposals(n)),
        d,
        CrashPlan::none(),
        100_000,
    );
    // A|D in the restricted environment, same schedule.
    let mut sim = restricted_simulation::<TwoStage>(
        two_stage_inputs(l, &distinct_proposals(n)),
        d,
        CrashPlan::none(),
    );
    let mut replay = Scripted::new(dead_run.trace.schedule());
    let restricted_run = sim.run_to_report(&mut replay, 100_000);

    assert!(indistinguishable_for_set(
        &restricted_run.trace,
        &dead_run.trace,
        d
    ));
    for p in d {
        assert_eq!(
            restricted_run.decisions[p.index()],
            dead_run.decisions[p.index()],
            "{p} decides identically in A|D and in A-with-dead-outsiders"
        );
    }
}

#[test]
fn pasting_respects_extra_in_block_crashes() {
    // Lemma 11 allows failures inside blocks; crash one member of a block
    // after its first step and paste.
    let n = 6;
    let b1 = block(&[0, 1, 2]);
    let b2 = block(&[3, 4, 5]);
    let crash_plan = CrashPlan::none().with_crash_after(pid(1), 2, kset::sim::Omission::All);
    // Solo with crash in block 1.
    let solo1 = {
        let inputs = two_stage_inputs(2, &distinct_proposals(n));
        let mut plan = crash_plan.clone();
        for p in ProcessId::all(n) {
            if !b1.contains(p) {
                plan = plan.with_initially_dead(p);
            }
        }
        let mut sim: kset::sim::Simulation<TwoStage, _> = kset::sim::Simulation::new(inputs, plan);
        sim.run_to_report(&mut RoundRobin::new(), 100_000)
    };
    let solo2 = solo_run_no_fd::<TwoStage>(
        two_stage_inputs(2, &distinct_proposals(n)),
        b2,
        CrashPlan::none(),
        100_000,
    );
    // Paste by replaying the interleaved schedules with the merged plan.
    let merged = Scripted::interleave(vec![solo1.trace.schedule(), solo2.trace.schedule()]);
    let mut sim: kset::sim::Simulation<TwoStage, _> =
        kset::sim::Simulation::new(two_stage_inputs(2, &distinct_proposals(n)), crash_plan);
    let mut replay = Scripted::new(merged).skipping_crashed();
    let pasted = sim.run_to_report(&mut replay, 100_000);
    assert!(indistinguishable_for_set(&pasted.trace, &solo1.trace, b1));
    assert!(indistinguishable_for_set(&pasted.trace, &solo2.trace, b2));
    // The crash carried over: p2 is faulty in the pasted run too.
    assert!(pasted.failure_pattern.faulty().contains(pid(1)));
}

#[test]
fn interleaving_order_does_not_matter_for_disjoint_blocks() {
    // Concatenation (α-style, Lemma 12 "one after the other") and
    // round-robin interleaving produce D-indistinguishable pasted runs.
    let n = 4;
    let b1 = block(&[0, 1]);
    let b2 = block(&[2, 3]);
    let mk = || two_stage_inputs(2, &distinct_proposals(n));
    let s1 = solo_run_no_fd::<TwoStage>(mk(), b1, CrashPlan::none(), 50_000);
    let s2 = solo_run_no_fd::<TwoStage>(mk(), b2, CrashPlan::none(), 50_000);

    let run_with = |schedule| {
        let mut sim: kset::sim::Simulation<TwoStage, _> =
            kset::sim::Simulation::new(mk(), CrashPlan::none());
        let mut replay = Scripted::new(schedule);
        sim.run_to_report(&mut replay, 50_000)
    };
    let inter = run_with(Scripted::interleave(vec![
        s1.trace.schedule(),
        s2.trace.schedule(),
    ]));
    let concat = run_with(Scripted::concat(vec![
        s1.trace.schedule(),
        s2.trace.schedule(),
    ]));

    for (label, run) in [("interleaved", &inter), ("concatenated", &concat)] {
        assert!(
            indistinguishable_for_set(&run.trace, &s1.trace, b1),
            "{label}: block 1"
        );
        assert!(
            indistinguishable_for_set(&run.trace, &s2.trace, b2),
            "{label}: block 2"
        );
    }
    assert_eq!(inter.decisions, concat.decisions);
}
