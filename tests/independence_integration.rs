//! T-independence (Definition 6 / Section IV) across algorithms: the
//! classic progress conditions expressed as families, checked
//! constructively against the workspace's algorithms.

use kset::core::algorithms::naive::DecideOwn;
use kset::core::algorithms::two_stage::{consensus_threshold, two_stage_inputs, TwoStage};
use kset::core::task::distinct_proposals;
use kset::core::{check_independence, isolated_run_no_fd, witnesses_independence, Family};
use kset::sim::{CrashPlan, ProcessId, ProcessSet};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn wait_freedom_is_full_powerset_independence() {
    // DecideOwn is wait-free: independent for every nonempty subset.
    let n = 5;
    assert!(check_independence::<DecideOwn>(
        || distinct_proposals(n),
        &Family::wait_free(n),
        1_000,
    )
    .is_ok());
}

#[test]
fn f_resilience_family_matches_threshold_l() {
    // Two-stage with threshold L is independent exactly for sets of size
    // ≥ L (a set of size < L starves in stage 1).
    let n = 6;
    for l in 1..=n {
        let inputs = || two_stage_inputs(l, &distinct_proposals(n));
        // All sets of size ≥ L succeed.
        let big = Family::wait_free(n).filter(|s| s.len() >= l);
        assert!(
            check_independence::<TwoStage>(inputs, &big, 100_000).is_ok(),
            "L={l}: sets of size ≥ L must be independent"
        );
        // Any set of size L−1 fails (when L > 1).
        if l > 1 {
            let s: ProcessSet = (0..l - 1).map(pid).collect();
            let report = isolated_run_no_fd::<TwoStage>(inputs(), s, CrashPlan::none(), 20_000);
            assert!(
                !witnesses_independence(&report, s),
                "L={l}: a set of size L−1 must starve"
            );
        }
    }
}

#[test]
fn consensus_threshold_is_not_minority_independent() {
    // The majority-threshold protocol cannot decide in a minority
    // partition — exactly why it evades the Theorem 1 checker.
    let n = 7;
    let l = consensus_threshold(n);
    let minority: ProcessSet = (0..l - 1).map(pid).collect();
    let report = isolated_run_no_fd::<TwoStage>(
        two_stage_inputs(l, &distinct_proposals(n)),
        minority,
        CrashPlan::none(),
        50_000,
    );
    assert!(!witnesses_independence(&report, minority));
}

#[test]
fn observation_1b_subfamilies() {
    // If A satisfies T-independence and T′ ⊆ T, then A satisfies
    // T′-independence: filtering can never create failures.
    let n = 5;
    let full = Family::wait_free(n);
    let sub = full.filter(|s| s.len() == 2);
    assert!(check_independence::<DecideOwn>(|| distinct_proposals(n), &sub, 1_000).is_ok());
    assert!(sub.len() < full.len());
}

#[test]
fn asymmetric_family_shape() {
    let n = 4;
    let fam = Family::containing(n, pid(2));
    assert_eq!(
        fam.len(),
        1 << (n - 1),
        "half the nonempty subsets contain p3"
    );
    assert!(fam.sets().iter().all(|s| s.contains(pid(2))));
}

#[test]
fn isolated_decisions_use_only_in_set_values() {
    // Stronger than deciding: the decision values of an isolated set must
    // be proposals of that set (no information can leak in).
    let n = 6;
    let l = 2;
    for mask in 1u32..(1 << n) {
        if (mask.count_ones() as usize) < l {
            continue;
        }
        if mask.count_ones() > 3 {
            continue; // keep the sweep fast: sizes 2 and 3 only
        }
        let s: ProcessSet = (0..n).filter(|i| mask & (1 << i) != 0).map(pid).collect();
        let report = isolated_run_no_fd::<TwoStage>(
            two_stage_inputs(l, &distinct_proposals(n)),
            s,
            CrashPlan::none(),
            50_000,
        );
        if !witnesses_independence(&report, s) {
            continue;
        }
        for p in s {
            if let Some(v) = report.decisions[p.index()] {
                assert!(
                    s.contains(pid(v as usize)),
                    "set {s:?}: decision {v} leaked from outside"
                );
            }
        }
    }
}

#[test]
fn singleton_independence_is_the_wait_free_degenerate_case() {
    // L = 1 makes the two-stage protocol obstruction-free (singleton
    // independent) — and therefore hopeless for k < n (Section V).
    let n = 4;
    assert!(check_independence::<TwoStage>(
        || two_stage_inputs(1, &distinct_proposals(n)),
        &Family::singletons(n),
        10_000,
    )
    .is_ok());
}
