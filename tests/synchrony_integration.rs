//! Integration tests for the partially synchronous machinery: the
//! Δ-bounded scheduler against the paper's algorithms, admissibility
//! verification of produced runs, and the failure-detector transformation
//! framework (Section II-C's comparison relation).

use kset::core::algorithms::two_stage::{consensus_threshold, two_stage_inputs, TwoStage};
use kset::core::task::{distinct_proposals, KSetTask};
use kset::fd::{
    check_omega_k, check_sigma_k, emulate, omega_component, sigma_component, GammaToOmega2,
    PartitionSigmaOmega, PartitionToPlain, Recorder, SuspectsToTrusted,
};
use kset::sim::admissible::{check, AdmissibilityRequirements};
use kset::sim::sched::delay_bounded::DelayBounded;
use kset::sim::{
    CrashPlan, FailurePattern, Oracle, ProcessId, ProcessSet, Simulation, SynchronyBounds, Time,
};

use kset::fd::History as FdHistory;

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn two_stage_terminates_under_maximal_admissible_delay() {
    // The Theorem 8 algorithm under the laziest Δ-bounded adversary: it
    // must still terminate (it is asynchronous-safe), just slower.
    let n = 5;
    let l = consensus_threshold(n);
    let values = distinct_proposals(n);
    for delta in [2u64, 8, 20] {
        let mut sim: Simulation<TwoStage, _> =
            Simulation::new(two_stage_inputs(l, &values), CrashPlan::none());
        let mut sched = DelayBounded::new(delta);
        let bound = sched.realized_bound(n);
        let report = sim.run_to_report(&mut sched, 200_000);
        let verdict = KSetTask::consensus(n).judge(&values, &report);
        assert!(verdict.holds(), "delta={delta}: {verdict}");
        // The run is admissible for the realized Δ bound and lock-step Φ.
        let req = AdmissibilityRequirements::bounds_only(SynchronyBounds {
            phi: Some(n as u64),
            delta: Some(bound),
        });
        let adm = check(&report.trace, &req);
        assert!(adm.is_admissible(), "delta={delta}: {:?}", adm.violations);
    }
}

#[test]
fn delay_scales_decision_latency() {
    // Doubling the hold time must delay decisions measurably — the
    // latency/synchrony trade the partially synchronous literature is
    // about.
    let n = 4;
    let l = consensus_threshold(n);
    let values = distinct_proposals(n);
    let decision_time = |delta: u64| -> u64 {
        let mut sim: Simulation<TwoStage, _> =
            Simulation::new(two_stage_inputs(l, &values), CrashPlan::none());
        let mut sched = DelayBounded::new(delta);
        let report = sim.run_to_report(&mut sched, 200_000);
        assert!(report.all_correct_decided());
        (0..n)
            .map(|i| report.trace.decision_time(pid(i)).unwrap().raw())
            .max()
            .unwrap()
    };
    let fast = decision_time(2);
    let slow = decision_time(16);
    assert!(
        slow > fast,
        "hold 16 ({slow}) must be slower than hold 2 ({fast})"
    );
}

#[test]
fn lemma9_as_a_transformation_on_a_live_run() {
    // Record a real (Σ′k, Ω′k)-backed run of a candidate algorithm, pass
    // the history through the identity transformation, and validate the
    // emulated (Σk, Ωk) history — Lemma 9 end to end on live data.
    use kset::core::algorithms::naive::LeaderAdopt;
    let n = 5;
    let blocks: Vec<ProcessSet> = vec![
        [pid(0)].into(),
        [pid(1)].into(),
        [pid(2), pid(3), pid(4)].into(),
    ];
    let k = blocks.len();
    let tgst = Time::new(500);
    let oracle = PartitionSigmaOmega::new(n, blocks, tgst, [pid(0), pid(1), pid(2)].into());
    let mut rec = Recorder::new(oracle.clone());
    let mut sim: Simulation<LeaderAdopt, _> =
        Simulation::with_oracle(distinct_proposals(n), &mut rec, CrashPlan::none());
    let mut sched = kset::sim::sched::round_robin::RoundRobin::new();
    let _ = sim.run(&mut sched, 2_000);
    drop(sim);
    let fp = FailurePattern::all_correct(n);
    // Stabilization suffix (Lemma 11 step 5).
    let mut raw: FdHistory<kset::fd::SigmaOmegaSample> = FdHistory::new();
    for (p, t, s) in rec.history().iter() {
        raw.record(p, t, s.clone());
    }
    let mut post = oracle.clone();
    for (i, p) in ProcessId::all(n).enumerate() {
        let t = Time::new(tgst.raw() + 1 + i as u64);
        raw.record(p, t, post.sample(p, t, &fp));
    }
    let mut id = PartitionToPlain;
    let emulated = emulate(&mut id, &raw);
    check_sigma_k(&sigma_component(&emulated), k, &fp).unwrap();
    check_omega_k(&omega_component(&emulated), k, &fp).unwrap();
}

#[test]
fn theorem10_condition_c_omega2_extraction() {
    // Build Γ-style histories (Ωk stabilizing on LD with |LD ∩ D̄| = 2),
    // extract Ω2 for the subsystem, and validate it — the executable form
    // of "using Γ we can easily implement Ω2 for M′".
    let n = 6;
    let k = 3;
    let dbar: ProcessSet = [pid(0), pid(1), pid(2), pid(3)].into();
    let ld: ProcessSet = [pid(0), pid(1), pid(4)].into(); // |LD ∩ D̄| = 2
    let mut raw: FdHistory<kset::fd::LeaderSample> = FdHistory::new();
    // Noisy pre-GST samples of size k, then stabilization.
    raw.record(pid(0), Time::new(1), [pid(2), pid(3), pid(5)].into());
    raw.record(pid(1), Time::new(2), [pid(1), pid(4), pid(5)].into());
    for t in 10..20u64 {
        let p = pid((t % 4) as usize);
        raw.record(p, Time::new(t), ld);
    }
    // Validate the input as Ωk over the full system first.
    let fp = FailurePattern::all_correct(n);
    check_omega_k(&raw, k, &fp).unwrap();
    // Extract and validate Ω2 over the subsystem.
    let mut extract = GammaToOmega2::new(dbar);
    let emulated = emulate(&mut extract, &raw);
    let fp_sub = FailurePattern::all_correct(n); // D̄ processes correct
    check_omega_k(&emulated, 2, &fp_sub).unwrap();
    for (_, _, s) in emulated.iter() {
        assert!(s.is_subset(dbar));
        assert_eq!(s.len(), 2);
    }
}

#[test]
fn sigma_weaker_than_perfect_on_live_pattern() {
    // Σ ⪯ P on a pattern with two staggered crashes.
    let n = 5;
    let mut p_oracle = kset::fd::PerfectOracle::new();
    let mut fp = FailurePattern::all_correct(n);
    let mut raw: FdHistory<ProcessSet> = FdHistory::new();
    for t in 1..40u64 {
        if t == 10 {
            fp.record_crash(pid(4), Time::new(10));
        }
        if t == 20 {
            fp.record_crash(pid(3), Time::new(20));
        }
        let p = pid((t % 3) as usize);
        raw.record(p, Time::new(t), p_oracle.sample(p, Time::new(t), &fp));
    }
    let mut compl = SuspectsToTrusted::new(n);
    let emulated = emulate(&mut compl, &raw);
    for kk in 1..n {
        check_sigma_k(&emulated, kk, &fp).unwrap();
    }
}

#[test]
fn history_roundtrip() {
    let mut h: FdHistory<u8> = FdHistory::new();
    h.record(pid(0), Time::new(1), 7);
    assert_eq!(h.get(pid(0), Time::new(1)), Some(&7));
}
