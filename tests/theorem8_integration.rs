//! Experiments E2/E3, as tests: both sides of the Theorem 8 border.
//!
//! Possibility: the generalized two-stage protocol solves k-set agreement
//! for every (n, f, k) with kn > (k+1)f, under fair and hostile schedules
//! and every rotation of the initially-dead set. Impossibility: at the
//! border kn = (k+1)f the k+1-partition construction produces a verified
//! failure-free run with k+1 distinct decisions.

use kset::core::algorithms::two_stage::{
    decision_bound, kset_threshold, two_stage_inputs, TwoStage,
};
use kset::core::runner::{run_round_robin, run_seeded};
use kset::core::task::{distinct_proposals, KSetTask};
use kset::impossibility::theorem8::{border_demo, possibility_demo};
use kset::impossibility::{theorem8_borderline, theorem8_solvable};
use kset::sim::{CrashPlan, ProcessId};

#[test]
fn possibility_grid_under_fair_schedules() {
    for n in 3..9 {
        for f in 1..n {
            for k in 1..n {
                if !theorem8_solvable(n, f, k) {
                    continue;
                }
                let l = kset_threshold(n, f);
                // The protocol's bound must be within k (the arithmetic
                // heart of Theorem 8's possibility direction).
                assert!(decision_bound(n, l) <= k, "n={n} f={f} k={k}: ⌊n/L⌋ ≤ k");
                let values = distinct_proposals(n);
                let dead: Vec<ProcessId> = (n - f..n).map(ProcessId::new).collect();
                let report = run_round_robin::<TwoStage>(
                    two_stage_inputs(l, &values),
                    CrashPlan::initially_dead(dead),
                    500_000,
                );
                let verdict = KSetTask::new(n, k).judge(&values, &report);
                assert!(verdict.holds(), "n={n} f={f} k={k}: {verdict}");
            }
        }
    }
}

#[test]
fn possibility_under_hostile_schedules_sampled() {
    for (n, f, k) in [(6, 3, 2), (8, 5, 2), (9, 5, 2), (8, 5, 3), (10, 7, 3)] {
        let demo = possibility_demo(n, f, k, 6);
        assert!(demo.all_hold, "n={n} f={f} k={k}");
        assert!(
            demo.max_distinct <= k,
            "n={n} f={f} k={k}: {}",
            demo.max_distinct
        );
    }
}

#[test]
fn every_rotation_of_the_dead_set_works() {
    let (n, f, k) = (6, 3, 2);
    let l = kset_threshold(n, f);
    let values = distinct_proposals(n);
    // All 20 3-subsets of 6 processes.
    for a in 0..n {
        for b in a + 1..n {
            for c in b + 1..n {
                let dead = [ProcessId::new(a), ProcessId::new(b), ProcessId::new(c)];
                let report = run_round_robin::<TwoStage>(
                    two_stage_inputs(l, &values),
                    CrashPlan::initially_dead(dead),
                    500_000,
                );
                let verdict = KSetTask::new(n, k).judge(&values, &report);
                assert!(
                    verdict.holds(),
                    "dead {{p{},p{},p{}}}: {verdict}",
                    a + 1,
                    b + 1,
                    c + 1
                );
            }
        }
    }
}

#[test]
fn border_construction_across_divisible_points() {
    for (n, k) in [
        (4, 1),
        (6, 1),
        (8, 1),
        (6, 2),
        (9, 2),
        (12, 2),
        (8, 3),
        (12, 3),
        (10, 4),
    ] {
        let demo =
            border_demo(n, k, 300_000).unwrap_or_else(|| panic!("n={n} k={k}: border divisible"));
        assert!(theorem8_borderline(n, demo.f, k));
        assert!(demo.violates_k_agreement(), "n={n} k={k}");
        assert_eq!(demo.pasted.distinct_decisions(), k + 1, "n={n} k={k}");
        // The pasted run is failure-free: the violation needs no crash at
        // all, only message delay — the partitioning argument in essence.
        assert_eq!(demo.pasted.report.failure_pattern.num_faulty(), 0);
    }
}

#[test]
fn border_plus_one_process_is_solvable_again() {
    // n = 7, k = 2, f = 4: 14 > 12 — one process above the border flips
    // the verdict (the crossover is exact).
    assert!(!theorem8_solvable(6, 4, 2));
    assert!(theorem8_solvable(7, 4, 2));
    let demo = possibility_demo(7, 4, 2, 6);
    assert!(demo.all_hold);
}

#[test]
fn consensus_borderline_is_half() {
    // k = 1: solvable iff n > 2f (majority), the FLP initial-crash result.
    for n in 2..10 {
        for f in 0..n {
            assert_eq!(theorem8_solvable(n, f, 1), n > 2 * f, "n={n} f={f}");
        }
    }
}

#[test]
fn hostile_seeds_never_exceed_the_decision_bound() {
    let (n, f) = (8, 5);
    let l = kset_threshold(n, f);
    let bound = decision_bound(n, l);
    let values = distinct_proposals(n);
    for seed in 0..12 {
        let dead: kset::sim::ProcessSet = (0..f)
            .map(|i| ProcessId::new((i + seed as usize) % n))
            .collect();
        if dead.len() < f {
            continue; // rotation collided; skip
        }
        let report = run_seeded::<TwoStage>(
            two_stage_inputs(l, &values),
            CrashPlan::initially_dead(dead),
            seed,
            2_000_000,
        );
        assert!(
            report.distinct_decisions.len() <= bound,
            "seed {seed}: {} > ⌊n/L⌋ = {bound}",
            report.distinct_decisions.len()
        );
    }
}
