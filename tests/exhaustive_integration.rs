//! Exhaustive (bounded) verification of the paper's claims on small
//! systems, via the schedule explorer in `kset_sim::explore`.
//!
//! Randomized schedules *witness*; exhaustive enumeration *verifies*: for
//! small n, every scheduling and delivery choice within the bound is
//! covered, so these tests rule out adversarial schedules entirely — the
//! strongest executable statement the simulator can make.

use std::collections::BTreeSet;

use kset::core::algorithms::naive::{DecideOwn, LeaderAdopt};
use kset::core::algorithms::two_stage::{two_stage_inputs, TwoStage};
use kset::core::task::distinct_proposals;
use kset::fd::PartitionSigmaOmega;
use kset::sim::explore::{explore, Branching, ExploreConfig};
use kset::sim::{CrashPlan, ProcessId, ProcessSet, Simulation, Time};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn distinct_decisions<P, O>(sim: &Simulation<P, O>) -> BTreeSet<P::Output>
where
    P: kset::sim::Process,
    P::Fd: std::hash::Hash,
    O: kset::sim::Oracle<Sample = P::Fd>,
{
    sim.decisions().iter().flatten().cloned().collect()
}

#[test]
fn two_stage_consensus_exhaustive_n3() {
    // n = 3, L = 2, no crashes: ⌊3/2⌋ = 1 — consensus under EVERY schedule.
    let sim: Simulation<TwoStage, _> = Simulation::new(
        two_stage_inputs(2, &distinct_proposals(3)),
        CrashPlan::none(),
    );
    let config = ExploreConfig {
        max_depth: 14,
        max_states: 400_000,
        branching: Branching::NoneOrAll,
    };
    let report = explore(&sim, &config, |s| {
        let d = distinct_decisions(s);
        if d.len() > 1 {
            return Err(format!("{} distinct decisions", d.len()));
        }
        Ok(())
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.terminals > 0,
        "some run must complete within the bound"
    );
}

#[test]
fn two_stage_with_initial_crash_exhaustive() {
    // n = 3, f = 1 initially dead, L = n − f = 2: k = 1 still (⌊3/2⌋ = 1).
    for dead in 0..3 {
        let sim: Simulation<TwoStage, _> = Simulation::new(
            two_stage_inputs(2, &distinct_proposals(3)),
            CrashPlan::initially_dead([pid(dead)]),
        );
        let config = ExploreConfig {
            max_depth: 12,
            max_states: 300_000,
            branching: Branching::NoneOrAll,
        };
        let report = explore(&sim, &config, |s| {
            let d = distinct_decisions(s);
            if d.len() > 1 {
                return Err(format!("{} distinct decisions", d.len()));
            }
            if d.iter().any(|v| *v == dead as u64) {
                return Err("decided a dead process's value without hearing it".into());
            }
            Ok(())
        });
        assert!(
            report.violation.is_none(),
            "dead={dead}: {:?}",
            report.violation
        );
    }
}

#[test]
fn two_stage_per_source_branching_exhaustive() {
    // The stronger adversary (per-source delivery subsets) on n = 3.
    let sim: Simulation<TwoStage, _> = Simulation::new(
        two_stage_inputs(2, &distinct_proposals(3)),
        CrashPlan::none(),
    );
    let config = ExploreConfig {
        max_depth: 10,
        max_states: 400_000,
        branching: Branching::PerSource,
    };
    let report = explore(&sim, &config, |s| {
        let d = distinct_decisions(s);
        if d.len() > 1 {
            return Err(format!("{} distinct decisions", d.len()));
        }
        Ok(())
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

#[test]
fn decide_own_violation_found_automatically() {
    // The explorer finds a consensus violation of DecideOwn without any
    // handcrafted adversary.
    let sim: Simulation<DecideOwn, _> = Simulation::new(distinct_proposals(2), CrashPlan::none());
    let report = explore(&sim, &ExploreConfig::default(), |s| {
        let d = distinct_decisions(s);
        if d.len() > 1 {
            return Err(format!("{} distinct decisions", d.len()));
        }
        Ok(())
    });
    let v = report.violation.expect("violation exists");
    assert!(v.path.len() <= 4, "a short schedule suffices: {:?}", v.path);
}

#[test]
fn explorer_rediscovers_theorem10_violation() {
    // n = 4, k = 2, partition layout D̄ = {p1,p2,p3}, D1 = {p4}: the
    // explorer finds a run of the (Σ2, Ω2) candidate with 3 > k = 2
    // distinct decisions all by itself — no partition scheduler, no
    // handcrafted solo runs. The oracle is the legal partition detector of
    // Definition 7.
    let n = 4;
    let k = 2;
    let blocks: Vec<ProcessSet> = vec![[pid(0), pid(1), pid(2)].into(), [pid(3)].into()];
    let ld = [pid(0), pid(1)].into();
    let oracle = PartitionSigmaOmega::new(n, blocks, Time::new(1_000_000), ld);
    let sim: Simulation<LeaderAdopt, _> =
        Simulation::with_oracle(distinct_proposals(n), oracle, CrashPlan::none());
    let config = ExploreConfig {
        max_depth: 10,
        max_states: 300_000,
        branching: Branching::NoneOrAll,
    };
    let report = explore(&sim, &config, |s| {
        let d = distinct_decisions(s);
        if d.len() > k {
            return Err(format!("{} distinct decisions > k = {k}", d.len()));
        }
        Ok(())
    });
    let v = report
        .violation
        .expect("Theorem 10's violation must be reachable");
    // Replay the discovered schedule and confirm.
    let blocks: Vec<ProcessSet> = vec![[pid(0), pid(1), pid(2)].into(), [pid(3)].into()];
    let oracle = PartitionSigmaOmega::new(n, blocks, Time::new(1_000_000), [pid(0), pid(1)].into());
    let mut replay: Simulation<LeaderAdopt, _> =
        Simulation::with_oracle(distinct_proposals(n), oracle, CrashPlan::none());
    for choice in &v.path {
        replay.step(choice.pid, choice.delivery.clone()).unwrap();
    }
    assert!(distinct_decisions(&replay).len() > k);
}

#[test]
fn barrier_free_algorithms_terminate_in_every_schedule() {
    // Bounded liveness: within the explored bound, every maximal run of
    // DecideOwn terminates (all correct decided) — terminals > 0 and no
    // stuck states (every non-terminal has a move).
    let sim: Simulation<DecideOwn, _> = Simulation::new(distinct_proposals(3), CrashPlan::none());
    let config = ExploreConfig {
        max_depth: 8,
        max_states: 100_000,
        branching: Branching::NoneOrAll,
    };
    let report = explore(&sim, &config, |_| Ok(()));
    assert!(report.terminals > 0);
    assert!(report.violation.is_none());
}
