//! Property-based tests for the graph substrate: Lemmas 6 and 7 and the
//! source-component bounds on randomized digraphs.

use proptest::prelude::*;

use kset::graph::{
    check_lemma6, check_lemma7, check_source_count_bound, chosen_source_component, gnp_digraph,
    max_source_components, source_components, source_components_reaching, stage_one_graph,
    tarjan_scc, weakly_connected_components, Condensation, Digraph,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 6 + 7 + count bound on stage-one graphs (in-degree exactly δ).
    #[test]
    fn lemmas_hold_on_stage_one_graphs(
        n in 2usize..24,
        delta_seed in 0usize..100,
        seed in 0u64..10_000,
    ) {
        let delta = 1 + delta_seed % (n - 1); // 1 ≤ δ < n
        let g = stage_one_graph(n, delta, seed);
        prop_assert!(check_lemma6(&g, delta).is_ok());
        prop_assert!(check_lemma7(&g, delta).is_ok());
        prop_assert!(check_source_count_bound(&g, delta).is_ok());
    }

    /// Every vertex is reached by at least one source component, and the
    /// deterministic selection picks one of them.
    #[test]
    fn every_vertex_reached_by_a_source(
        n in 1usize..20,
        p in 0u8..=100,
        seed in 0u64..10_000,
    ) {
        let g = gnp_digraph(n, p, seed);
        for v in 0..n {
            let reaching = source_components_reaching(&g, v);
            prop_assert!(!reaching.is_empty(), "vertex {v} unreached");
            let chosen = chosen_source_component(&g, v);
            prop_assert!(reaching.contains(&chosen));
        }
    }

    /// Source components are pairwise disjoint and each is an SCC.
    #[test]
    fn source_components_are_disjoint_sccs(
        n in 1usize..20,
        p in 0u8..=100,
        seed in 0u64..10_000,
    ) {
        let g = gnp_digraph(n, p, seed);
        let scc = tarjan_scc(&g);
        let sources = source_components(&g);
        let mut seen = std::collections::BTreeSet::new();
        for comp in &sources {
            for v in comp {
                prop_assert!(seen.insert(*v), "source components overlap at {v}");
            }
            // Each source component is exactly one SCC's member set.
            let c = scc.component_of(comp[0]);
            prop_assert_eq!(scc.members(c), comp.as_slice());
        }
    }

    /// The count bound ⌊n/(δ+1)⌋ holds whenever min in-degree ≥ δ.
    #[test]
    fn count_bound_from_actual_min_degree(
        n in 2usize..20,
        p in 30u8..=100,
        seed in 0u64..10_000,
    ) {
        let g = gnp_digraph(n, p, seed);
        if let Some(delta) = g.min_in_degree() {
            if delta > 0 {
                let count = source_components(&g).len();
                prop_assert!(count <= max_source_components(n, delta));
            }
        }
    }

    /// SCC decomposition partitions the vertices; members are sorted.
    #[test]
    fn scc_partitions_vertices(
        n in 0usize..25,
        p in 0u8..=100,
        seed in 0u64..10_000,
    ) {
        let g = gnp_digraph(n, p, seed);
        let scc = tarjan_scc(&g);
        let mut all: Vec<usize> = scc.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        for comp in scc.iter() {
            prop_assert!(comp.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Tarjan emits components in reverse topological order of the
    /// condensation: every condensation edge goes from a higher to a lower
    /// component index.
    #[test]
    fn tarjan_order_is_reverse_topological(
        n in 1usize..20,
        p in 0u8..=100,
        seed in 0u64..10_000,
    ) {
        let g = gnp_digraph(n, p, seed);
        let cond = Condensation::of(&g);
        for (u, w) in cond.dag().edges() {
            prop_assert!(u > w, "condensation edge {u}→{w} violates Tarjan order");
        }
    }

    /// Weakly connected components partition the vertices and are closed
    /// under both edge directions.
    #[test]
    fn wcc_partitions_and_closed(
        n in 0usize..20,
        p in 0u8..=100,
        seed in 0u64..10_000,
    ) {
        let g = gnp_digraph(n, p, seed);
        let wccs = weakly_connected_components(&g);
        let mut all: Vec<usize> = wccs.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        for wcc in &wccs {
            let set: std::collections::BTreeSet<usize> = wcc.iter().copied().collect();
            for &v in wcc {
                for w in g.successors(v).chain(g.predecessors(v)) {
                    prop_assert!(set.contains(&w), "wcc not closed at {v}→{w}");
                }
            }
        }
    }

    /// Reversing a graph twice is the identity; reversal swaps
    /// reachable_from and reaching.
    #[test]
    fn reversal_duality(
        n in 1usize..15,
        p in 0u8..=100,
        seed in 0u64..10_000,
    ) {
        let g = gnp_digraph(n, p, seed);
        prop_assert_eq!(g.reversed().reversed(), g.clone());
        let r = g.reversed();
        for v in 0..n {
            prop_assert_eq!(g.reachable_from(v), r.reaching(v));
        }
    }

    /// Induced subgraphs keep exactly the edges between kept vertices.
    #[test]
    fn induced_subgraph_edge_exactness(
        n in 1usize..15,
        p in 0u8..=100,
        seed in 0u64..10_000,
        keep_mask in 1u32..,
    ) {
        let g = gnp_digraph(n, p, seed);
        let keep: std::collections::BTreeSet<usize> =
            (0..n).filter(|i| keep_mask & (1 << (i % 32)) != 0).collect();
        prop_assume!(!keep.is_empty());
        let (sub, map) = g.induced(&keep);
        prop_assert_eq!(map.len(), keep.len());
        let mut count = 0;
        for (u, w) in g.edges() {
            if keep.contains(&u) && keep.contains(&w) {
                count += 1;
                let nu = map.iter().position(|x| *x == u).unwrap();
                let nw = map.iter().position(|x| *x == w).unwrap();
                prop_assert!(sub.has_edge(nu, nw));
            }
        }
        prop_assert_eq!(sub.edge_count(), count);
    }
}

/// Exhaustive check of Lemma 6 over *all* digraphs on up to 4 vertices
/// whose minimum in-degree is ≥ 1 — not a random property but a complete
/// enumeration (4 vertices ⇒ 12 possible edges ⇒ 4096 graphs).
#[test]
fn lemma6_exhaustive_on_tiny_graphs() {
    for n in 1..=4usize {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| (0..n).filter(move |w| *w != u).map(move |w| (u, w)))
            .collect();
        let m = pairs.len();
        for mask in 0u32..(1 << m) {
            let edges = pairs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, e)| *e);
            let g = Digraph::from_edges(n, edges);
            let delta = g.min_in_degree().unwrap_or(0);
            if delta >= 1 {
                check_lemma6(&g, delta).unwrap_or_else(|e| {
                    panic!("lemma 6 fails on {g}: {e}");
                });
                check_lemma7(&g, delta).unwrap_or_else(|e| {
                    panic!("lemma 7 fails on {g}: {e}");
                });
            }
        }
    }
}
