//! Property-based tests for the impossibility engine: the Lemma 12
//! pasting verifies on *random* partitions, the Theorem 1 checker's
//! classification is stable, and the borders agree with brute-force
//! arithmetic.

use proptest::prelude::*;

use kset::core::algorithms::two_stage::{two_stage_inputs, TwoStage};
use kset::core::task::distinct_proposals;
use kset::impossibility::{lemma12_no_fd, theorem2_impossible, theorem8_solvable, PartitionSpec};
use kset::sim::{ProcessId, ProcessSet};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Random partition of `0..n` into nonempty blocks of size ≥ `min_size`.
fn random_blocks(n: usize, min_size: usize, assign: &[usize]) -> Vec<ProcessSet> {
    let max_blocks = n / min_size;
    let count = max_blocks.max(1);
    let mut blocks: Vec<ProcessSet> = vec![ProcessSet::new(); count];
    for i in 0..n {
        blocks[assign.get(i).copied().unwrap_or(0) % count].insert(pid(i));
    }
    // Merge undersized blocks into the first adequate one.
    let mut merged: Vec<ProcessSet> = Vec::new();
    let mut pending = ProcessSet::new();
    for b in blocks.into_iter().filter(|b| !b.is_empty()) {
        if b.len() >= min_size {
            merged.push(b);
        } else {
            pending.extend(b);
        }
    }
    if merged.is_empty() {
        merged.push(ProcessSet::new());
    }
    merged[0].extend(pending);
    merged.retain(|b| !b.is_empty());
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 12 pasting verifies for every random partition into blocks of
    /// size ≥ L, and the pasted run carries one decision value per block.
    #[test]
    fn pasting_verifies_on_random_partitions(
        n in 4usize..9,
        l in 1usize..3,
        assign in proptest::collection::vec(0usize..8, 9),
    ) {
        let blocks = random_blocks(n, l, &assign);
        prop_assume!(blocks.len() >= 2);
        prop_assume!(blocks.iter().all(|b| b.len() >= l));
        let pasted = lemma12_no_fd::<TwoStage>(
            || two_stage_inputs(l, &distinct_proposals(n)),
            &blocks,
            200_000,
        );
        prop_assert!(pasted.verified, "pasting must verify");
        prop_assert_eq!(pasted.report.failure_pattern.num_faulty(), 0);
        // At least one decision value per block (a block may contribute
        // several when L = 1 lets members decide solo), and every
        // process's decision is a proposal of its own block — isolation
        // admits no information flow across blocks.
        prop_assert!(pasted.distinct_decisions() >= blocks.len());
        for block in &blocks {
            for p in block {
                if let Some(v) = pasted.report.decisions[p.index()] {
                    prop_assert!(
                        block.contains(pid(v as usize)),
                        "decision {v} of {p} leaked across blocks"
                    );
                }
            }
        }
    }

    /// The Theorem 2 layout exists iff the closed-form border says
    /// impossible (brute-force cross-check of the arithmetic).
    #[test]
    fn theorem2_layout_iff_border(n in 2usize..16, f in 1usize..16, k in 1usize..16) {
        prop_assume!(f < n && k < n);
        let brute = k * (n - f) < n;
        prop_assert_eq!(theorem2_impossible(n, f, k), brute);
        prop_assert_eq!(PartitionSpec::theorem2(n, f, k).is_some(), brute);
    }

    /// Theorem 8's border is equivalent to k > f/(n−f) in exact rational
    /// arithmetic.
    #[test]
    fn theorem8_border_equivalent_forms(n in 1usize..20, f in 0usize..20, k in 1usize..20) {
        prop_assume!(f < n);
        // kn > (k+1)f  ⇔  k(n−f) > f  ⇔  k > f/(n−f).
        prop_assert_eq!(theorem8_solvable(n, f, k), k * (n - f) > f);
    }

    /// Theorem 10 layouts put every process in exactly one part, with
    /// |D̄| = n−k+1 and k−1 singletons.
    #[test]
    fn theorem10_layout_shape(n in 4usize..20, k in 2usize..18) {
        prop_assume!(k <= n - 2);
        let spec = PartitionSpec::theorem10(n, k).unwrap();
        prop_assert_eq!(spec.dbar().len(), n - k + 1);
        prop_assert_eq!(spec.blocks().len(), k - 1);
        let mut seen = ProcessSet::new();
        for part in spec.all_parts() {
            for p in part {
                prop_assert!(seen.insert(p));
            }
        }
        prop_assert_eq!(seen.len(), n);
    }
}
