//! Experiment E5, as a test: the two solvable endpoints of Corollary 13.
//!
//! k = 1: consensus from (Σ, Ω), wait-free (up to n−1 crashes, in
//! particular (n−1)-resilient as the corollary states). k = n−1: set
//! agreement from the loneliness detector (the classical equivalent of the
//! Σ(n−1) endpoint; see DESIGN.md for the substitution note). In between,
//! Theorem 10 forbids — checked in `theorem10_integration.rs`.

use kset::core::algorithms::lonely_set::LonelySetAgreement;
use kset::core::algorithms::sigma_omega_consensus::SigmaOmegaConsensus;
use kset::core::runner::{run_round_robin_with_oracle, run_seeded_with_oracle};
use kset::core::task::{distinct_proposals, KSetTask};
use kset::fd::{LonelinessOracle, RealisticSigmaOmega};
use kset::sim::{CrashPlan, Omission, ProcessId, Time};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn k1_consensus_every_leader_choice() {
    let n = 5;
    let values = distinct_proposals(n);
    for leader in 0..n {
        let oracle = RealisticSigmaOmega::consensus(n, Time::new(20), pid(leader));
        let report = run_round_robin_with_oracle::<SigmaOmegaConsensus, _>(
            values.clone(),
            oracle,
            CrashPlan::none(),
            300_000,
        );
        let verdict = KSetTask::consensus(n).judge(&values, &report);
        assert!(verdict.holds(), "leader p{}: {verdict}", leader + 1);
    }
}

#[test]
fn k1_consensus_is_wait_free_with_sigma_omega() {
    // Up to n−1 crashes: the last process standing still decides.
    let n = 5;
    let values = distinct_proposals(n);
    for survivor in 0..n {
        let dead: Vec<ProcessId> = (0..n).filter(|i| *i != survivor).map(pid).collect();
        let oracle = RealisticSigmaOmega::consensus(n, Time::new(5), pid(survivor));
        let report = run_round_robin_with_oracle::<SigmaOmegaConsensus, _>(
            values.clone(),
            oracle,
            CrashPlan::initially_dead(dead),
            200_000,
        );
        let verdict = KSetTask::consensus(n).judge(&values, &report);
        assert!(verdict.holds(), "survivor p{}: {verdict}", survivor + 1);
        assert_eq!(report.decisions[survivor], Some(survivor as u64));
    }
}

#[test]
fn k1_consensus_with_mid_run_leader_crash() {
    // The stable leader crashes mid-ballot; Ω re-stabilizes on a correct
    // process and the run still terminates with one value.
    let n = 5;
    let values = distinct_proposals(n);
    let plan = CrashPlan::none().with_crash_after(pid(0), 4, Omission::All);
    // Ω points at p1 pre-crash (it will die), then the history stabilizes
    // on p2 — encoded by a final LD that is correct.
    let oracle = RealisticSigmaOmega::consensus(n, Time::new(40), pid(1));
    let report = run_round_robin_with_oracle::<SigmaOmegaConsensus, _>(
        values.clone(),
        oracle,
        plan,
        400_000,
    );
    let verdict = KSetTask::consensus(n).judge(&values, &report);
    assert!(verdict.holds(), "{verdict}");
}

#[test]
fn k1_consensus_safety_under_hostile_schedules() {
    let n = 6;
    let values = distinct_proposals(n);
    for seed in 0..10 {
        let oracle = RealisticSigmaOmega::consensus(n, Time::new(150), pid(2));
        let report = run_seeded_with_oracle::<SigmaOmegaConsensus, _>(
            values.clone(),
            oracle,
            CrashPlan::none(),
            seed,
            600_000,
        );
        let verdict = KSetTask::consensus(n).judge(&values, &report);
        assert!(verdict.safe(), "seed {seed}: {verdict}");
        if report.all_correct_decided() {
            assert_eq!(report.distinct_decisions.len(), 1, "seed {seed}");
        }
    }
}

#[test]
fn k_n_minus_1_set_agreement_all_crash_counts() {
    let n = 6;
    let values = distinct_proposals(n);
    let task = KSetTask::set_agreement(n);
    for f in 0..n {
        let dead: Vec<ProcessId> = (0..f).map(pid).collect();
        let report = run_round_robin_with_oracle::<LonelySetAgreement, _>(
            values.clone(),
            LonelinessOracle::new(n),
            CrashPlan::initially_dead(dead),
            100_000,
        );
        let verdict = task.judge(&values, &report);
        assert!(verdict.holds(), "f={f}: {verdict}");
    }
}

#[test]
fn k_n_minus_1_never_reaches_n_distinct_values() {
    // The safety heart of the endpoint: across many schedules and crash
    // patterns, decisions never hit n distinct values.
    let n = 5;
    let values = distinct_proposals(n);
    for seed in 0..30 {
        let f = (seed as usize) % n;
        let dead: kset::sim::ProcessSet =
            (0..f).map(|i| pid((i * 2 + seed as usize) % n)).collect();
        let report = run_seeded_with_oracle::<LonelySetAgreement, _>(
            values.clone(),
            LonelinessOracle::new(n),
            CrashPlan::initially_dead(dead),
            seed,
            200_000,
        );
        assert!(
            report.distinct_decisions.len() < n,
            "seed {seed}: n distinct decisions would refute the endpoint"
        );
    }
}

#[test]
fn endpoints_bracket_the_impossible_middle() {
    // The full Corollary 13 picture for n = 6: S X X X S.
    use kset::impossibility::{corollary13_solvable, theorem10_impossible};
    let n = 6;
    assert!(corollary13_solvable(n, 1));
    for k in 2..=n - 2 {
        assert!(theorem10_impossible(n, k), "k={k}");
    }
    assert!(corollary13_solvable(n, n - 1));
}
