//! # kset-core — k-set agreement: task, algorithms, progress conditions
//!
//! The agreement layer of the `kset` workspace, implementing the problem
//! definitions and all algorithms of Biely–Robinson–Schmid (OPODIS 2011):
//!
//! * the **k-set agreement task** and run-level verdict checkers
//!   ([`KSetTask`], [`Verdict`]);
//! * **T-independence** (Definition 6) with the classic progress conditions
//!   as families, and an isolation scheduler that *constructs* witnessing
//!   runs ([`independence`]);
//! * the **two-stage protocol** of Section VI — FLP's initial-crash
//!   consensus and its k-set generalization with threshold `L = n − f`
//!   ([`algorithms::two_stage`]);
//! * **(Σ, Ω) consensus** and **loneliness-based (n−1)-set agreement** —
//!   the two endpoints of Corollary 13 ([`algorithms::sigma_omega_consensus`],
//!   [`algorithms::lonely_set`]);
//! * **FloodMin** on a lock-step synchronous substrate — the favourable
//!   model point contrasting Theorem 2 ([`sync`], [`algorithms::floodmin`]);
//! * deliberately **flawed candidates** for the Theorem 1 checker
//!   ([`algorithms::naive`]).
//!
//! ## Quickstart: Theorem 8's algorithm
//!
//! ```
//! use kset_core::algorithms::two_stage::{kset_threshold, two_stage_inputs, TwoStage};
//! use kset_core::runner::run_round_robin;
//! use kset_core::task::{distinct_proposals, KSetTask};
//! use kset_sim::{CrashPlan, ProcessId};
//!
//! // n = 6 processes, f = 3 initial crashes, k = 2: solvable since
//! // kn = 12 > (k+1)f = 9 (Theorem 8).
//! let (n, f, k) = (6, 3, 2);
//! let values = distinct_proposals(n);
//! let inputs = two_stage_inputs(kset_threshold(n, f), &values);
//! let dead = (0..f).map(|i| ProcessId::new(n - 1 - i));
//! let report = run_round_robin::<TwoStage>(inputs, CrashPlan::initially_dead(dead), 100_000);
//! let verdict = KSetTask::new(n, k).judge(&values, &report);
//! assert!(verdict.holds());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod independence;
pub mod runner;
pub mod scenario;
pub mod sync;
pub mod task;

pub use independence::{
    check_independence, isolated_run, isolated_run_no_fd, witnesses_independence, Family,
    IsolationScheduler,
};
pub use scenario::{
    round_crashes, to_lockstep, RoundAdapter, RoundAdapterInput, RoundMsg, ScenarioRounds,
};
pub use task::{distinct_proposals, KSetTask, Val, Verdict};
