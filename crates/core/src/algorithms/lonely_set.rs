//! (n−1)-set agreement from the loneliness detector L: the k = n−1
//! endpoint of Corollary 13.
//!
//! The paper cites Bonnet–Raynal for "Σ(n−1) is sufficient for solving
//! (n−1)-set agreement". We realize the endpoint with the classical
//! loneliness-based algorithm of Delporte-Gallet et al. (DISC'08) — also the
//! basis of the authors' own L(k) work \[2\] — which is equivalent for this
//! purpose and elementary to verify (the substitution is documented in
//! DESIGN.md):
//!
//! * every process broadcasts its initial value once;
//! * on receiving any value `v` from another process, decide
//!   `min(x_own, v)`;
//! * if L ever outputs `true` ("you may be alone"), decide `x_own`.
//!
//! **Safety** (at most n−1 distinct decisions): suppose all n processes
//! decide pairwise distinct values (with distinct inputs — the worst case).
//! An *adoption chain* `p` adopted from `q` means `p` decided
//! `min(x_p, x_q) ≤ x_q`. Following chains downward in value order they
//! terminate at the process with the minimal initial value, whose adopter
//! would decide that same minimal value — a duplicate. So distinctness
//! forces *every* process to decide via loneliness, i.e. L output `true` at
//! all n processes, contradicting the L safety property (some process never
//! sees `true`).
//!
//! **Termination**: with ≥ 2 correct processes each eventually receives the
//! other's value; with exactly 1, L liveness fires.

use kset_fd::LonelinessSample;
use kset_sim::{Effects, Envelope, Process, ProcessId, ProcessInfo};

use crate::task::Val;

/// Per-process state of the loneliness-based set agreement.
#[derive(Debug, Clone, Hash)]
pub struct LonelySetAgreement {
    me: ProcessId,
    value: Val,
    sent: bool,
    decided: bool,
}

impl Process for LonelySetAgreement {
    type Msg = Val;
    type Input = Val;
    type Output = Val;
    type Fd = LonelinessSample;

    fn init(info: ProcessInfo, input: Val) -> Self {
        LonelySetAgreement {
            me: info.id,
            value: input,
            sent: false,
            decided: false,
        }
    }

    fn step(
        &mut self,
        delivered: &[Envelope<Val>],
        fd: Option<&LonelinessSample>,
        effects: &mut Effects<Val, Val>,
    ) {
        if !self.sent {
            self.sent = true;
            effects.broadcast_others(self.value);
        }
        if self.decided {
            return;
        }
        if let Some(env) = delivered.iter().find(|e| e.src != self.me) {
            self.decided = true;
            effects.decide(self.value.min(env.payload));
            return;
        }
        if matches!(fd, Some(LonelinessSample(true))) {
            self.decided = true;
            effects.decide(self.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{distinct_proposals, KSetTask};
    use kset_fd::LonelinessOracle;
    use kset_sim::sched::random::SeededRandom;
    use kset_sim::sched::round_robin::RoundRobin;
    use kset_sim::{CrashPlan, RunReport, Simulation};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn run(values: &[Val], plan: CrashPlan, seed: Option<u64>) -> RunReport<Val> {
        let oracle = LonelinessOracle::new(values.len());
        let mut sim: Simulation<LonelySetAgreement, _> =
            Simulation::with_oracle(values.to_vec(), oracle, plan);
        match seed {
            None => sim.run_to_report(&mut RoundRobin::new(), 50_000),
            Some(s) => sim.run_to_report(&mut SeededRandom::new(s), 200_000),
        }
    }

    #[test]
    fn all_correct_satisfy_set_agreement() {
        let n = 5;
        let values = distinct_proposals(n);
        let report = run(&values, CrashPlan::none(), None);
        let v = KSetTask::set_agreement(n).judge(&values, &report);
        assert!(v.holds(), "{v}");
    }

    #[test]
    fn wait_free_lone_survivor_decides_via_loneliness() {
        // n−1 initial crashes: the survivor can only decide through L.
        let n = 4;
        let values = distinct_proposals(n);
        let plan = CrashPlan::initially_dead([pid(0), pid(1), pid(3)]);
        let report = run(&values, plan, None);
        assert_eq!(report.decisions[2], Some(2));
        let v = KSetTask::set_agreement(n).judge(&values, &report);
        assert!(v.holds(), "{v}");
    }

    #[test]
    fn set_agreement_under_random_schedules_and_crashes() {
        let n = 6;
        let values = distinct_proposals(n);
        for seed in 0..20 {
            let f = (seed as usize) % n; // up to n−1 initial crashes
            let dead: Vec<ProcessId> = (0..f).map(pid).collect();
            let report = run(&values, CrashPlan::initially_dead(dead), Some(seed));
            let v = KSetTask::set_agreement(n).judge(&values, &report);
            assert!(v.holds(), "seed {seed}: {v}");
            assert!(report.distinct_decisions.len() < n);
        }
    }

    #[test]
    fn adoption_takes_minimum() {
        // p2 receives p1's value (0) before deciding: min(1, 0) = 0.
        let values = vec![7, 3];
        let report = run(&values, CrashPlan::none(), None);
        for d in report.distinct_decisions.iter() {
            assert_eq!(*d, 3, "both adopt the minimum of the pair");
        }
    }
}
