//! Rotating-coordinator consensus with the perfect detector P.
//!
//! The classical Chandra–Toueg-style algorithm for detector class S (weak
//! accuracy + strong completeness), run here with P ⊆ S: processes march
//! through rounds `1..=n`; the coordinator of round `r` is `p_r`, which
//! broadcasts its current estimate; everyone else waits in round `r` until
//! it either receives the coordinator's round-`r` value (and adopts it) or
//! suspects the coordinator (and skips the round). After completing round
//! `n` a process decides its estimate.
//!
//! **Safety sketch** (with P there is a correct, never-suspected
//! coordinator `c*` — indeed every correct process qualifies): every
//! process passes round `c*`, cannot skip it (strong accuracy), and
//! therefore adopts `c*`'s single round-`c*` value; later coordinators
//! have passed round `c*` before broadcasting, so every estimate from then
//! on equals that value.
//!
//! In the workspace's story this algorithm is the **dimension 6 contrast**
//! to Theorem 2: the same asynchronous communication that makes 1-resilient
//! consensus impossible without detectors becomes (n−1)-resilient the
//! moment a perfect detector is available.

use std::collections::BTreeMap;

use kset_fd::SuspectSample;
use kset_sim::{Effects, Envelope, Process, ProcessId, ProcessInfo};

use crate::task::Val;

/// Round-tagged coordinator broadcast.
pub type RoundMsg = (u64, Val);

/// Per-process state of the rotating-coordinator consensus.
#[derive(Debug, Clone, Hash)]
pub struct RotatingConsensus {
    me: ProcessId,
    n: usize,
    est: Val,
    /// Current round, 1-based; `n + 1` means ready to decide.
    round: u64,
    /// Rounds whose coordinator broadcast has been received.
    inbox: BTreeMap<u64, Val>,
    /// Whether this process has broadcast for its own coordinator round.
    sent_own_round: bool,
    decided: bool,
}

impl RotatingConsensus {
    fn coordinator(&self, round: u64) -> ProcessId {
        ProcessId::new(((round - 1) as usize) % self.n)
    }
}

impl Process for RotatingConsensus {
    type Msg = RoundMsg;
    type Input = Val;
    type Output = Val;
    type Fd = SuspectSample;

    fn init(info: ProcessInfo, input: Val) -> Self {
        RotatingConsensus {
            me: info.id,
            n: info.n,
            est: input,
            round: 1,
            inbox: BTreeMap::new(),
            sent_own_round: false,
            decided: false,
        }
    }

    fn step(
        &mut self,
        delivered: &[Envelope<RoundMsg>],
        fd: Option<&SuspectSample>,
        effects: &mut Effects<RoundMsg, Val>,
    ) {
        for env in delivered {
            let (r, v) = env.payload;
            // Only the legitimate coordinator's broadcast counts.
            if env.src == ProcessId::new(((r - 1) as usize) % self.n) {
                self.inbox.entry(r).or_insert(v);
            }
        }
        if self.decided {
            return;
        }
        let Some(suspects) = fd else {
            return; // the algorithm needs P
        };
        // March through rounds as far as the inbox and suspicions allow.
        while self.round <= self.n as u64 {
            let coord = self.coordinator(self.round);
            if coord == self.me {
                if !self.sent_own_round {
                    self.sent_own_round = true;
                    effects.broadcast_others((self.round, self.est));
                }
                self.inbox.insert(self.round, self.est);
            }
            if let Some(v) = self.inbox.get(&self.round) {
                self.est = *v;
                self.round += 1;
                if self.coordinator(self.round.min(self.n as u64)) == self.me {
                    self.sent_own_round = false;
                }
            } else if suspects.contains(coord) {
                self.round += 1;
                if self.coordinator(self.round.min(self.n as u64)) == self.me {
                    self.sent_own_round = false;
                }
            } else {
                break; // wait for the coordinator or its suspicion
            }
        }
        if self.round > self.n as u64 && !self.decided {
            self.decided = true;
            effects.decide(self.est);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_round_robin_with_oracle, run_seeded_with_oracle};
    use crate::task::{distinct_proposals, KSetTask};
    use kset_fd::PerfectOracle;
    use kset_sim::{CrashPlan, Omission};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn failure_free_consensus_on_first_coordinator() {
        let n = 5;
        let values = distinct_proposals(n);
        let report = run_round_robin_with_oracle::<RotatingConsensus, _>(
            values.clone(),
            PerfectOracle::new(),
            CrashPlan::none(),
            200_000,
        );
        let verdict = KSetTask::consensus(n).judge(&values, &report);
        assert!(verdict.holds(), "{verdict}");
        // Round 1's coordinator is p1: its value wins.
        assert_eq!(report.decisions[1], Some(0));
    }

    #[test]
    fn survives_any_number_of_initial_crashes() {
        // (n−1)-resilience: the Theorem 2 contrast.
        let n = 5;
        let values = distinct_proposals(n);
        for f in 1..n {
            let dead: Vec<ProcessId> = (0..f).map(pid).collect();
            let report = run_round_robin_with_oracle::<RotatingConsensus, _>(
                values.clone(),
                PerfectOracle::new(),
                CrashPlan::initially_dead(dead),
                200_000,
            );
            let verdict = KSetTask::consensus(n).judge(&values, &report);
            assert!(verdict.holds(), "f={f}: {verdict}");
        }
    }

    #[test]
    fn survives_mid_run_coordinator_crash_with_partial_broadcast() {
        // p1 (round-1 coordinator) crashes during its broadcast, reaching
        // only p2: estimates diverge, the first correct coordinator round
        // re-converges them.
        let n = 4;
        let values = distinct_proposals(n);
        let keep = Omission::KeepOnlyTo([pid(1)].into());
        let plan = CrashPlan::none().with_crash_after(pid(0), 1, keep);
        let report = run_round_robin_with_oracle::<RotatingConsensus, _>(
            values.clone(),
            PerfectOracle::new(),
            plan,
            200_000,
        );
        let verdict = KSetTask::consensus(n).judge(&values, &report);
        assert!(verdict.holds(), "{verdict}");
    }

    #[test]
    fn safety_and_termination_under_hostile_schedules() {
        let n = 5;
        let values = distinct_proposals(n);
        for seed in 0..10 {
            let f = (seed as usize) % (n - 1);
            let dead: kset_sim::ProcessSet = (0..f).map(|i| pid((i * 2 + 1) % n)).collect();
            let report = run_seeded_with_oracle::<RotatingConsensus, _>(
                values.clone(),
                PerfectOracle::new(),
                CrashPlan::initially_dead(dead),
                seed,
                1_000_000,
            );
            let verdict = KSetTask::consensus(n).judge(&values, &report);
            assert!(verdict.holds(), "seed {seed}: {verdict}");
        }
    }

    #[test]
    fn exhaustive_small_system_verification() {
        use kset_sim::explore::{explore, Branching, ExploreConfig};
        use kset_sim::Simulation;
        let sim: Simulation<RotatingConsensus, _> = Simulation::with_oracle(
            distinct_proposals(3),
            PerfectOracle::new(),
            CrashPlan::none(),
        );
        let config = ExploreConfig {
            max_depth: 12,
            max_states: 300_000,
            branching: Branching::NoneOrAll,
        };
        let report = explore(&sim, &config, |s| {
            let d: std::collections::BTreeSet<Val> =
                s.decisions().iter().flatten().copied().collect();
            if d.len() > 1 {
                return Err(format!("{} distinct decisions", d.len()));
            }
            Ok(())
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }
}
