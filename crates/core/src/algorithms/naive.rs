//! Deliberately weak/flawed candidate algorithms.
//!
//! The paper's Remarks on Theorem 1 suggest using the theorem as a *quick
//! verification tool*: "if (dec-D) can be satisfied in some runs, i.e., (A)
//! holds, the algorithm is very likely flawed". These candidates exist to
//! be flagged:
//!
//! * [`DecideOwn`] — decides its own value in its first step. Perfectly
//!   fine n-set agreement; hopeless for any `k < n`, and the canonical
//!   witness that wait-free k-set agreement fails (Section V: "it suffices
//!   to simply delay all communication until every process has decided on
//!   its own propose value").
//! * [`LeaderAdopt`] — a plausible-looking (Σk, Ωk) candidate: processes
//!   that see themselves among the Ωk leaders decide their own value and
//!   announce it; everyone else adopts the first announced value. Under a
//!   *partition* history (Definition 7) every block elects in-block leaders
//!   before stabilization, so the blocks decide independently — exactly the
//!   failure mode Theorem 10 proves unavoidable.

use kset_fd::SigmaOmegaSample;
use kset_sim::{Effects, Envelope, Process, ProcessId, ProcessInfo};

use crate::task::Val;

/// Decides its own proposal immediately (valid n-set agreement only).
#[derive(Debug, Clone, Hash)]
pub struct DecideOwn {
    value: Val,
    decided: bool,
}

impl Process for DecideOwn {
    type Msg = Val;
    type Input = Val;
    type Output = Val;
    type Fd = ();

    fn init(_info: ProcessInfo, input: Val) -> Self {
        DecideOwn {
            value: input,
            decided: false,
        }
    }

    fn step(
        &mut self,
        _delivered: &[Envelope<Val>],
        _fd: Option<&()>,
        effects: &mut Effects<Val, Val>,
    ) {
        if !self.decided {
            self.decided = true;
            effects.decide(self.value);
        }
    }
}

/// Messages of the flawed leader-adoption candidate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LeaderAdoptMsg {
    /// A self-elected leader announces its decided value.
    Announce {
        /// The announced value.
        value: Val,
    },
}

/// The flawed (Σk, Ωk) candidate: leaders decide own values, others adopt.
#[derive(Debug, Clone, Hash)]
pub struct LeaderAdopt {
    me: ProcessId,
    value: Val,
    decided: bool,
}

impl Process for LeaderAdopt {
    type Msg = LeaderAdoptMsg;
    type Input = Val;
    type Output = Val;
    type Fd = SigmaOmegaSample;

    fn init(info: ProcessInfo, input: Val) -> Self {
        LeaderAdopt {
            me: info.id,
            value: input,
            decided: false,
        }
    }

    fn step(
        &mut self,
        delivered: &[Envelope<LeaderAdoptMsg>],
        fd: Option<&SigmaOmegaSample>,
        effects: &mut Effects<LeaderAdoptMsg, Val>,
    ) {
        if self.decided {
            return;
        }
        // Adopt the first announced value, if any arrived.
        if let Some(env) = delivered.first() {
            let LeaderAdoptMsg::Announce { value } = env.payload;
            self.decided = true;
            effects.decide(value);
            return;
        }
        // Otherwise: am I a leader right now?
        if let Some(sample) = fd {
            if sample.omega.contains(self.me) {
                self.decided = true;
                effects.broadcast_others(LeaderAdoptMsg::Announce { value: self.value });
                effects.decide(self.value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{distinct_proposals, KSetTask};
    use kset_fd::RealisticSigmaOmega;
    use kset_sim::sched::round_robin::RoundRobin;
    use kset_sim::{CrashPlan, Simulation, Time};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn decide_own_is_valid_n_set_agreement() {
        let n = 4;
        let values = distinct_proposals(n);
        let mut sim: Simulation<DecideOwn, _> = Simulation::new(values.clone(), CrashPlan::none());
        let report = sim.run_to_report(&mut RoundRobin::new(), 100);
        let v = KSetTask::new(n, n).judge(&values, &report);
        assert!(v.holds(), "{v}");
        assert_eq!(report.distinct_decisions.len(), n);
    }

    #[test]
    fn decide_own_violates_any_smaller_k() {
        let n = 4;
        let values = distinct_proposals(n);
        let mut sim: Simulation<DecideOwn, _> = Simulation::new(values.clone(), CrashPlan::none());
        let report = sim.run_to_report(&mut RoundRobin::new(), 100);
        for k in 1..n {
            let v = KSetTask::new(n, k).judge(&values, &report);
            assert!(!v.k_agreement, "k={k} should be violated");
        }
    }

    #[test]
    fn leader_adopt_behaves_with_stable_singleton_leader() {
        // With Ω1 stabilized from the start on p1, every process adopts x1:
        // the candidate LOOKS like a fine consensus algorithm…
        let n = 4;
        let values = distinct_proposals(n);
        let oracle = RealisticSigmaOmega::consensus(n, Time::ZERO, pid(0));
        let mut sim: Simulation<LeaderAdopt, _> =
            Simulation::with_oracle(values.clone(), oracle, CrashPlan::none());
        let report = sim.run_to_report(&mut RoundRobin::new(), 10_000);
        let v = KSetTask::consensus(n).judge(&values, &report);
        assert!(v.holds(), "{v}");
    }

    #[test]
    fn leader_adopt_breaks_before_stabilization() {
        // …but pre-GST every process sees itself as leader, and an
        // asynchronous adversary that delays all messages makes each decide
        // its own value: n distinct decisions. (The Theorem 1 checker flags
        // the same flaw via partition histories; see kset-impossibility.)
        use kset_sim::sched::partition::{PartitionScheduler, ReleasePolicy};
        let n = 4;
        let values = distinct_proposals(n);
        let oracle = RealisticSigmaOmega::consensus(n, Time::new(1_000), pid(0));
        let mut sim: Simulation<LeaderAdopt, _> =
            Simulation::with_oracle(values.clone(), oracle, CrashPlan::none());
        // Singleton partitions: every process is alone until it decides.
        let mut sched = PartitionScheduler::new(vec![], ReleasePolicy::AfterAllDecided);
        let report = sim.run_to_report(&mut sched, 10_000);
        let v = KSetTask::consensus(n).judge(&values, &report);
        assert!(!v.k_agreement, "{v}");
        assert_eq!(report.distinct_decisions.len(), n);
    }
}
