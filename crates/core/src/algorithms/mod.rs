//! The agreement algorithms of the paper (and its cited endpoints).
//!
//! | Module | Algorithm | Paper hook |
//! |---|---|---|
//! | [`two_stage`] | FLP two-stage protocol, generalized to threshold `L` | Section VI (consensus with `L = ⌈(n+1)/2⌉`, k-set with `L = n−f`, Theorem 8) |
//! | [`sigma_omega_consensus`] | quorum-ballot consensus from (Σ, Ω) | Corollary 13, k = 1 endpoint |
//! | [`lonely_set`] | (n−1)-set agreement from loneliness L | Corollary 13, k = n−1 endpoint |
//! | [`floodmin`] | synchronous-round FloodMin | the favourable DDS point contrasting Theorem 2 |
//! | [`naive`] | DecideOwn, LeaderAdopt | flawed candidates the Theorem 1 checker flags |
//! | [`rotating`] | rotating-coordinator consensus with P | the dimension-6 contrast to Theorem 2 |

pub mod floodmin;
pub mod lonely_set;
pub mod naive;
pub mod rotating;
pub mod sigma_omega_consensus;
pub mod two_stage;
