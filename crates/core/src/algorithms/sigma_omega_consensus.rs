//! Consensus from (Σ, Ω): the k = 1 endpoint of Corollary 13.
//!
//! (Σ, Ω) is the weakest failure detector for message-passing consensus
//! (Delporte-Gallet et al.). This module implements the classical
//! quorum-ballot (Paxos-style) algorithm driven by the pair:
//!
//! * **Ω** elects the coordinator: a process leads while its Ω sample
//!   contains itself.
//! * **Σ** provides the quorums: a leader's phase completes when the set of
//!   responders *covers its current Σ sample*. Any two Σ samples intersect
//!   (the Σ1 intersection property), which gives exactly the quorum
//!   intersection Paxos safety rests on.
//!
//! Ballots are made unique by the usual `attempt · n + id + 1` encoding. A
//! leader that observes no progress for a while starts a fresh ballot, so
//! liveness follows once Ω stabilizes on a correct leader and Σ samples
//! shrink to the correct set.

use kset_fd::SigmaOmegaSample;
use kset_sim::{Effects, Envelope, Process, ProcessId, ProcessInfo, ProcessSet, SenderMap};

use crate::task::Val;

/// Ballot number (0 = none yet).
type Ballot = u64;

/// Messages of the quorum-ballot consensus.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PaxosMsg {
    /// Phase-1a: leader asks for promises under `ballot`.
    Prepare {
        /// The leader's ballot.
        ballot: Ballot,
    },
    /// Phase-1b: acceptor promises and reports its last accepted pair.
    Promise {
        /// Echoed ballot.
        ballot: Ballot,
        /// Last accepted `(ballot, value)`, if any.
        accepted: Option<(Ballot, Val)>,
    },
    /// Phase-2a: leader proposes `value` under `ballot`.
    Propose {
        /// The leader's ballot.
        ballot: Ballot,
        /// The proposed value.
        value: Val,
    },
    /// Phase-2b: acceptor accepted the proposal of `ballot`.
    Accepted {
        /// Echoed ballot.
        ballot: Ballot,
    },
    /// Decision announcement.
    Decide {
        /// The decided value.
        value: Val,
    },
}

/// Leader-side phase.
#[derive(Debug, Clone, Hash, PartialEq, Eq)]
enum LeaderPhase {
    Idle,
    Collecting {
        promises: SenderMap<Option<(Ballot, Val)>>,
    },
    Proposing {
        value: Val,
        accepts: ProcessSet,
    },
}

/// Per-process state of the (Σ, Ω) consensus.
#[derive(Debug, Clone, Hash)]
pub struct SigmaOmegaConsensus {
    me: ProcessId,
    n: usize,
    input: Val,
    // Acceptor state.
    promised: Ballot,
    accepted: Option<(Ballot, Val)>,
    // Leader state.
    ballot: Ballot,
    attempt: u64,
    phase: LeaderPhase,
    steps_in_phase: u64,
    retry_after: u64,
    // Decision state.
    decided: Option<Val>,
    relayed_decide: bool,
}

impl SigmaOmegaConsensus {
    fn start_ballot(&mut self, effects: &mut Effects<PaxosMsg, Val>) {
        self.attempt += 1;
        self.ballot = self.attempt * self.n as u64 + self.me.index() as u64 + 1;
        self.promised = self.promised.max(self.ballot);
        let mut promises = SenderMap::with_capacity(self.n);
        promises.insert(self.me, self.accepted); // self-promise
        self.phase = LeaderPhase::Collecting { promises };
        self.steps_in_phase = 0;
        effects.broadcast_others(PaxosMsg::Prepare {
            ballot: self.ballot,
        });
    }

    /// Whether `responders` covers the quorum `sigma` (self counts).
    fn quorum_met(responders: ProcessSet, sigma: ProcessSet) -> bool {
        sigma.is_subset(responders)
    }
}

impl Process for SigmaOmegaConsensus {
    type Msg = PaxosMsg;
    type Input = Val;
    type Output = Val;
    type Fd = SigmaOmegaSample;

    fn init(info: ProcessInfo, input: Val) -> Self {
        SigmaOmegaConsensus {
            me: info.id,
            n: info.n,
            input,
            promised: 0,
            accepted: None,
            ballot: 0,
            attempt: 0,
            phase: LeaderPhase::Idle,
            steps_in_phase: 0,
            retry_after: 16 * info.n as u64,
            decided: None,
            relayed_decide: false,
        }
    }

    fn step(
        &mut self,
        delivered: &[Envelope<PaxosMsg>],
        fd: Option<&SigmaOmegaSample>,
        effects: &mut Effects<PaxosMsg, Val>,
    ) {
        // ---- Message handling (acceptor + leader response collection) ----
        for env in delivered {
            match &env.payload {
                PaxosMsg::Prepare { ballot } => {
                    if *ballot > self.promised {
                        self.promised = *ballot;
                        effects.send(
                            env.src,
                            PaxosMsg::Promise {
                                ballot: *ballot,
                                accepted: self.accepted,
                            },
                        );
                    }
                }
                PaxosMsg::Promise { ballot, accepted } => {
                    if *ballot == self.ballot {
                        if let LeaderPhase::Collecting { promises } = &mut self.phase {
                            promises.insert(env.src, *accepted);
                        }
                    }
                }
                PaxosMsg::Propose { ballot, value } => {
                    if *ballot >= self.promised {
                        self.promised = *ballot;
                        self.accepted = Some((*ballot, *value));
                        effects.send(env.src, PaxosMsg::Accepted { ballot: *ballot });
                    }
                }
                PaxosMsg::Accepted { ballot } => {
                    if *ballot == self.ballot {
                        if let LeaderPhase::Proposing { accepts, .. } = &mut self.phase {
                            accepts.insert(env.src);
                        }
                    }
                }
                PaxosMsg::Decide { value } => {
                    if self.decided.is_none() {
                        self.decided = Some(*value);
                        effects.decide(*value);
                    }
                    if !self.relayed_decide {
                        self.relayed_decide = true;
                        effects.broadcast_others(PaxosMsg::Decide { value: *value });
                    }
                }
            }
        }
        if self.decided.is_some() {
            return;
        }
        // ---- Leader logic, driven by the failure detector ----
        let Some(sample) = fd else {
            return; // algorithm requires (Σ, Ω); without it, only react
        };
        let i_lead = sample.omega.contains(self.me);
        if !i_lead {
            self.phase = LeaderPhase::Idle;
            self.steps_in_phase = 0;
            return;
        }
        self.steps_in_phase += 1;
        let stuck = self.steps_in_phase > self.retry_after;
        match &mut self.phase {
            LeaderPhase::Idle => self.start_ballot(effects),
            _ if stuck => self.start_ballot(effects),
            LeaderPhase::Collecting { promises } => {
                let responders = promises.senders();
                if Self::quorum_met(responders, sample.sigma) {
                    // Adopt the highest-ballot accepted value, else own input.
                    let value = promises
                        .values()
                        .flatten()
                        .max_by_key(|(b, _)| *b)
                        .map(|(_, v)| *v)
                        .unwrap_or(self.input);
                    self.accepted = Some((self.ballot, value));
                    let mut accepts = ProcessSet::new();
                    accepts.insert(self.me);
                    self.phase = LeaderPhase::Proposing { value, accepts };
                    self.steps_in_phase = 0;
                    effects.broadcast_others(PaxosMsg::Propose {
                        ballot: self.ballot,
                        value,
                    });
                }
            }
            LeaderPhase::Proposing { value, accepts } => {
                if Self::quorum_met(*accepts, sample.sigma) {
                    let v = *value;
                    self.decided = Some(v);
                    effects.broadcast_others(PaxosMsg::Decide { value: v });
                    effects.decide(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{distinct_proposals, KSetTask};
    use kset_fd::RealisticSigmaOmega;
    use kset_sim::sched::random::SeededRandom;
    use kset_sim::sched::round_robin::RoundRobin;
    use kset_sim::{CrashPlan, Omission, RunReport, Simulation, Time};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn run(
        values: &[Val],
        plan: CrashPlan,
        leader: ProcessId,
        tgst: u64,
        seed: Option<u64>,
        max: u64,
    ) -> RunReport<Val> {
        let oracle = RealisticSigmaOmega::consensus(values.len(), Time::new(tgst), leader);
        let mut sim: Simulation<SigmaOmegaConsensus, _> =
            Simulation::with_oracle(values.to_vec(), oracle, plan);
        match seed {
            None => sim.run_to_report(&mut RoundRobin::new(), max),
            Some(s) => sim.run_to_report(
                &mut SeededRandom::new(s)
                    .with_deliver_percent(85)
                    .with_fairness_window(8),
                max,
            ),
        }
    }

    #[test]
    fn all_correct_reach_consensus() {
        let n = 4;
        let values = distinct_proposals(n);
        let report = run(&values, CrashPlan::none(), pid(2), 0, None, 100_000);
        let v = KSetTask::consensus(n).judge(&values, &report);
        assert!(v.holds(), "{v}");
        assert_eq!(
            report.decisions[0],
            Some(2),
            "stable leader p3 drives its own value"
        );
    }

    #[test]
    fn consensus_with_late_stabilization() {
        // Pre-GST every process believes it leads: duelling ballots, still
        // safe; after t_GST = 200 the system converges on p1.
        let n = 4;
        let values = distinct_proposals(n);
        let report = run(&values, CrashPlan::none(), pid(0), 200, None, 300_000);
        let v = KSetTask::consensus(n).judge(&values, &report);
        assert!(v.holds(), "{v}");
    }

    #[test]
    fn consensus_survives_minority_crashes() {
        let n = 5;
        let values = distinct_proposals(n);
        let plan = CrashPlan::initially_dead([pid(3)]).with_crash_after(pid(4), 3, Omission::All);
        let report = run(&values, plan, pid(0), 50, None, 300_000);
        let v = KSetTask::consensus(n).judge(&values, &report);
        assert!(v.holds(), "{v}");
    }

    #[test]
    fn wait_free_consensus_with_sigma_omega() {
        // (Σ,Ω) consensus is (n−1)-resilient: n = 4, 3 crashes, the lone
        // correct process p1 still decides (its Σ sample shrinks to {p1}).
        let n = 4;
        let values = distinct_proposals(n);
        let plan = CrashPlan::initially_dead([pid(1), pid(2), pid(3)]);
        let report = run(&values, plan, pid(0), 10, None, 100_000);
        let v = KSetTask::consensus(n).judge(&values, &report);
        assert!(v.holds(), "{v}");
        assert_eq!(report.decisions[0], Some(0));
    }

    #[test]
    fn safety_under_random_schedules() {
        let n = 5;
        let values = distinct_proposals(n);
        for seed in 0..15 {
            let report = run(&values, CrashPlan::none(), pid(1), 100, Some(seed), 400_000);
            let v = KSetTask::consensus(n).judge(&values, &report);
            assert!(v.safe(), "seed {seed}: {v}");
            if report.all_correct_decided() {
                assert_eq!(report.distinct_decisions.len(), 1, "seed {seed}");
            }
        }
    }

    #[test]
    fn no_decision_without_failure_detector() {
        // Running the same algorithm with fd = None (dimension 6
        // unfavourable) must stall, not decide wrongly.
        #[derive(Debug, Clone)]
        struct NeverOracle;
        impl kset_sim::Oracle for NeverOracle {
            type Sample = SigmaOmegaSample;
            fn sample(
                &mut self,
                _p: ProcessId,
                _t: Time,
                _o: &kset_sim::FailurePattern,
            ) -> SigmaOmegaSample {
                SigmaOmegaSample::new(ProcessSet::new(), ProcessSet::new())
            }
        }
        let values = distinct_proposals(3);
        let oracle = NeverOracle; // empty omega: nobody ever leads
        let mut sim: Simulation<SigmaOmegaConsensus, _> =
            Simulation::with_oracle(values.clone(), oracle, CrashPlan::none());
        let report = sim.run_to_report(&mut RoundRobin::new(), 5_000);
        assert!(report.distinct_decisions.is_empty());
    }
}
