//! The two-stage protocol of Section VI: FLP's initial-crash consensus,
//! generalized to k-set agreement.
//!
//! The protocol (for a waiting threshold `L`):
//!
//! * **Stage 1** — every process broadcasts a `Stage1` message (carrying its
//!   id) and waits until it has received `L − 1` such messages from distinct
//!   other processes.
//! * **Stage 2** — it then broadcasts its initial value together with the
//!   list of the `L − 1` processes heard in stage 1, and waits for stage-2
//!   messages from those `L − 1` processes *and from every remote process
//!   mentioned in one of the lists it receives* (transitive closure).
//!
//! After stage 2 the process knows an in-neighbour-closed fragment of the
//! *stage-one graph* `G` (edge `u → w` iff `w` heard `u` in stage 1),
//! containing every source component that reaches it. It deterministically
//! selects one ([`kset_graph::chosen_source_component`]) and decides the
//! value proposed by the minimum-id member.
//!
//! * With `L = ⌈(n+1)/2⌉` and `n > 2f` the source component is unique
//!   (`2δ ≥ n` with δ = L−1) and the protocol is FLP's initial-crash
//!   **consensus**.
//! * With `L = n − f` there are at most `⌊n/L⌋` source components
//!   (Lemmas 6/7), so the protocol solves **k-set agreement** for every
//!   `k ≥ ⌊n/(n−f)⌋` — equivalently whenever `kn > (k+1)f` (Theorem 8).
//!
//! The protocol tolerates **initial crashes only** (the Section VI model):
//! a process mentioned in a heard-list must eventually send its stage-2
//! message, which holds because having sent `Stage1` proves it was not
//! initially dead.

use std::collections::BTreeSet;

use kset_graph::{chosen_source_component, Digraph};
use kset_sim::{
    Effects, Envelope, Process, ProcessId, ProcessInfo, ProcessSet, Scenario, ScenarioProcess,
    SenderMap,
};

use crate::task::Val;

/// Messages of the two-stage protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TwoStageMsg {
    /// Stage-1 beacon ("I am alive"); the sender id travels in the
    /// envelope.
    Stage1,
    /// Stage-2 payload: the sender's proposal and its frozen stage-1
    /// heard-list.
    Stage2 {
        /// The sender's initial value.
        value: Val,
        /// The `L − 1` processes the sender heard from in stage 1.
        heard: ProcessSet,
    },
}

/// Input of a two-stage process: the waiting threshold `L` and the proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoStageInput {
    /// Waiting threshold `L` (the paper's `L`); every process must use the
    /// same value.
    pub l: usize,
    /// The proposal value `x_p`.
    pub value: Val,
}

/// Builds the input vector for a homogeneous threshold `L`.
pub fn two_stage_inputs(l: usize, values: &[Val]) -> Vec<TwoStageInput> {
    values
        .iter()
        .map(|v| TwoStageInput { l, value: *v })
        .collect()
}

/// The consensus threshold `L = ⌈(n+1)/2⌉` of FLP.
pub fn consensus_threshold(n: usize) -> usize {
    n.div_ceil(2) + usize::from(n.is_multiple_of(2))
}

/// The k-set threshold `L = n − f` of Section VI.
///
/// # Panics
///
/// Panics if `f ≥ n`.
pub fn kset_threshold(n: usize, f: usize) -> usize {
    assert!(f < n, "need at least one live process");
    n - f
}

/// The number of distinct decisions the protocol guarantees:
/// `⌊n/L⌋` source components at most.
pub fn decision_bound(n: usize, l: usize) -> usize {
    n / l
}

/// Per-process state of the two-stage protocol.
#[derive(Debug, Clone, Hash)]
pub struct TwoStage {
    me: ProcessId,
    n: usize,
    l: usize,
    value: Val,
    sent_stage1: bool,
    /// Stage-1 senders in arrival order (first `L − 1` freeze the list).
    heard1: Vec<ProcessId>,
    /// Frozen heard-list (stage 1 complete once set).
    my_heard: Option<ProcessSet>,
    /// Stage-2 data per process: `(value, heard)`. Includes self.
    infos: SenderMap<(Val, ProcessSet)>,
    decided: bool,
}

impl TwoStage {
    /// Whether stage 1 is complete (heard-list frozen).
    pub fn stage1_complete(&self) -> bool {
        self.my_heard.is_some()
    }

    /// The in-neighbour closure from this process over the known stage-2
    /// infos: `K = {me} ∪ heard(me) ∪ heard(heard(me)) ∪ …`. Returns
    /// `Some(K)` when every member's info is known (closure complete).
    fn closure(&self) -> Option<ProcessSet> {
        let my_heard = self.my_heard?;
        // kset-lint: allow(unchecked-capacity): self.me is a live process id of a capacity-validated system, so the singleton cannot overflow
        let mut k = ProcessSet::singleton(self.me).union(my_heard);
        loop {
            let mut grew = false;
            for p in k {
                if p == self.me {
                    continue; // own heard-list already added
                }
                let (_, heard) = self.infos.get(p)?; // info missing: not closed yet
                let before = k;
                k |= *heard;
                if k != before {
                    grew = true;
                }
            }
            if !grew {
                return Some(k);
            }
        }
    }

    /// Builds the known fragment of the stage-one graph over the closed set
    /// `K`, decides, and returns the decision value.
    fn decide_from(&self, k_set: ProcessSet) -> Val {
        let keep: BTreeSet<usize> = k_set.iter().map(|p| p.index()).collect();
        // Build the full-size graph with edges inside K only, then induce.
        let mut g = Digraph::new(self.n);
        for p in k_set {
            let heard = if p == self.me {
                // kset-lint: allow(panic-in-library): invariant — decide_from is only called with the Some(K) returned by closure(), which requires my_heard
                self.my_heard.expect("closure implies stage 1 complete")
            } else {
                // kset-lint: allow(panic-in-library): invariant — closure() returns None unless every member of K has an info entry
                self.infos.get(p).expect("closure implies info present").1
            };
            for u in heard {
                if u.index() != p.index() {
                    g.add_edge(u.index(), p.index());
                }
            }
        }
        let (sub, old_of_new) = g.induced(&keep);
        let me_new = old_of_new
            .iter()
            .position(|old| *old == self.me.index())
            // kset-lint: allow(panic-in-library): invariant — closure() seeds K with {me}, so the induced subgraph always carries self
            .expect("self is in its own closure");
        let comp = chosen_source_component(&sub, me_new);
        let min_old = comp
            .iter()
            .map(|new| old_of_new[*new])
            .min()
            // kset-lint: allow(panic-in-library): invariant — chosen_source_component returns a strongly connected component, which is nonempty by definition
            .expect("source components are nonempty");
        let min_pid = ProcessId::new(min_old);
        if min_pid == self.me {
            self.value
        } else {
            self.infos
                .get(min_pid)
                // kset-lint: allow(panic-in-library): invariant — the component is a subset of K, and closure() guarantees infos for every member of K
                .expect("component members have known info")
                .0
        }
    }
}

impl ScenarioProcess for TwoStage {
    /// The two-stage protocol at a scenario's model point: the waiting
    /// threshold is the k-set threshold `L = n − f` of Section VI, so a
    /// Theorem 8 favourable-side scenario compiles to the protocol that
    /// solves it.
    fn scenario_inputs(scenario: &Scenario) -> Vec<TwoStageInput> {
        two_stage_inputs(kset_threshold(scenario.n, scenario.f), &scenario.inputs)
    }
}

impl Process for TwoStage {
    type Msg = TwoStageMsg;
    type Input = TwoStageInput;
    type Output = Val;
    type Fd = ();

    fn init(info: ProcessInfo, input: TwoStageInput) -> Self {
        assert!(input.l >= 1 && input.l <= info.n, "need 1 ≤ L ≤ n");
        TwoStage {
            me: info.id,
            n: info.n,
            l: input.l,
            value: input.value,
            sent_stage1: false,
            heard1: Vec::new(),
            my_heard: None,
            infos: SenderMap::with_capacity(info.n),
            decided: false,
        }
    }

    fn step(
        &mut self,
        delivered: &[Envelope<TwoStageMsg>],
        _fd: Option<&()>,
        effects: &mut Effects<TwoStageMsg, Val>,
    ) {
        if !self.sent_stage1 {
            self.sent_stage1 = true;
            effects.broadcast_others(TwoStageMsg::Stage1);
        }
        for env in delivered {
            if env.src == self.me {
                continue;
            }
            match &env.payload {
                TwoStageMsg::Stage1 => {
                    if self.my_heard.is_none() && !self.heard1.contains(&env.src) {
                        self.heard1.push(env.src);
                    }
                }
                TwoStageMsg::Stage2 { value, heard } => {
                    self.infos
                        .entry_or_insert_with(env.src, || (*value, *heard));
                }
            }
        }
        // Freeze the heard-list at the first L−1 distinct stage-1 senders
        // and enter stage 2.
        if self.my_heard.is_none() && self.heard1.len() >= self.l.saturating_sub(1) {
            let frozen: ProcessSet = self.heard1.iter().take(self.l - 1).copied().collect();
            self.my_heard = Some(frozen);
            self.infos.insert(self.me, (self.value, frozen));
            effects.broadcast_others(TwoStageMsg::Stage2 {
                value: self.value,
                heard: frozen,
            });
        }
        // Decide once the in-neighbour closure is complete.
        if !self.decided {
            if let Some(k_set) = self.closure() {
                self.decided = true;
                effects.decide(self.decide_from(k_set));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{distinct_proposals, KSetTask};
    use kset_sim::sched::random::SeededRandom;
    use kset_sim::sched::round_robin::RoundRobin;
    use kset_sim::{CrashPlan, RunReport, Simulation};

    fn run_two_stage(
        l: usize,
        values: &[Val],
        plan: CrashPlan,
        seed: Option<u64>,
    ) -> RunReport<Val> {
        let inputs = two_stage_inputs(l, values);
        let mut sim: Simulation<TwoStage, _> = Simulation::new(inputs, plan);
        match seed {
            None => sim.run_to_report(&mut RoundRobin::new(), 100_000),
            Some(s) => {
                sim.run_to_report(&mut SeededRandom::new(s).with_deliver_percent(80), 500_000)
            }
        }
    }

    #[test]
    fn consensus_no_crashes() {
        let n = 5;
        let l = consensus_threshold(n);
        let values = distinct_proposals(n);
        let report = run_two_stage(l, &values, CrashPlan::none(), None);
        let v = KSetTask::consensus(n).judge(&values, &report);
        assert!(v.holds(), "{v}");
    }

    #[test]
    fn consensus_with_initial_crashes() {
        // n = 5, f = 2 (minority): L = 3.
        let n = 5;
        let l = consensus_threshold(n);
        let values = distinct_proposals(n);
        let plan = CrashPlan::initially_dead([ProcessId::new(1), ProcessId::new(4)]);
        let report = run_two_stage(l, &values, plan, None);
        let v = KSetTask::consensus(n).judge(&values, &report);
        assert!(v.holds(), "{v}");
    }

    #[test]
    fn consensus_threshold_values() {
        // Uniqueness of the source component needs 2L > n: two source
        // components are disjoint and each has ≥ δ + 1 = L members.
        for n in 1..20 {
            let l = consensus_threshold(n);
            assert!(2 * l > n, "n={n} L={l}");
            assert!(l <= n, "n={n} L={l}");
        }
    }

    #[test]
    fn kset_bound_holds_under_random_schedules() {
        // n = 6, f = 4 initial crashes, L = 2: at most ⌊6/2⌋ = 3 decisions.
        let n = 6;
        let f = 4;
        let l = kset_threshold(n, f);
        let k = decision_bound(n, l);
        assert_eq!(k, 3);
        let values = distinct_proposals(n);
        for seed in 0..10 {
            let dead: Vec<ProcessId> = (0..f).map(|i| ProcessId::new(5 - i)).collect();
            let report = run_two_stage(l, &values, CrashPlan::initially_dead(dead), Some(seed));
            let verdict = KSetTask::new(n, k).judge(&values, &report);
            assert!(verdict.holds(), "seed {seed}: {verdict}");
        }
    }

    #[test]
    fn fully_isolated_processes_decide_own_values() {
        // L = 1: nobody waits for anyone; every process decides its own
        // value (n-set agreement, the wait-free degenerate case).
        let n = 4;
        let values = distinct_proposals(n);
        let report = run_two_stage(1, &values, CrashPlan::none(), None);
        assert_eq!(report.distinct_decisions.len(), n);
        for (i, d) in report.decisions.iter().enumerate() {
            assert_eq!(*d, Some(values[i]));
        }
    }

    #[test]
    fn decision_is_minimum_id_of_source_component() {
        // No crashes, round-robin: everyone hears from everyone quickly;
        // the single source component contains p1, so all decide x1.
        let n = 4;
        let l = kset_threshold(n, 1);
        let values = vec![40, 10, 20, 30];
        let report = run_two_stage(l, &values, CrashPlan::none(), None);
        assert!(report.all_correct_decided());
        assert_eq!(report.distinct_decisions.len(), 1);
    }

    #[test]
    fn single_process_system() {
        let report = run_two_stage(1, &[7], CrashPlan::none(), None);
        assert_eq!(report.decisions, vec![Some(7)]);
    }

    #[test]
    fn validity_always_holds() {
        let n = 6;
        let values: Vec<Val> = vec![100, 200, 300, 400, 500, 600];
        for f in 0..n {
            let l = kset_threshold(n, f);
            let dead: Vec<ProcessId> = (0..f).map(ProcessId::new).collect();
            let report = run_two_stage(l, &values, CrashPlan::initially_dead(dead), Some(f as u64));
            for d in report.distinct_decisions.iter() {
                assert!(values.contains(d));
            }
        }
    }

    #[test]
    fn theorem8_borderline_f_still_works() {
        // Theorem 8: solvable iff kn > (k+1)f. Take n = 6, k = 2:
        // f = 3 gives 12 > 9 ✓ (solvable), L = 3, bound ⌊6/3⌋ = 2 = k.
        let n = 6;
        let k = 2;
        let f = 3;
        assert!(k * n > (k + 1) * f);
        let l = kset_threshold(n, f);
        assert_eq!(decision_bound(n, l), k);
        let values = distinct_proposals(n);
        for seed in 0..10 {
            let dead: Vec<ProcessId> = (0..f).map(|i| ProcessId::new(n - 1 - i)).collect();
            let report = run_two_stage(l, &values, CrashPlan::initially_dead(dead), Some(seed));
            let verdict = KSetTask::new(n, k).judge(&values, &report);
            assert!(verdict.holds(), "seed {seed}: {verdict}");
        }
    }
}
