//! FloodMin: synchronous-round k-set agreement.
//!
//! The classic algorithm (Chaudhuri et al.) for the fully favourable model
//! point: in each of `⌊f/k⌋ + 1` rounds every process broadcasts the
//! smallest value it has seen; after the last round it decides that
//! minimum. With at most `f` crash failures, at most `k` distinct values
//! survive: each round in which more than `k` "fresh" minima persist must
//! burn more than `k` crashes, and the adversary only has `f`.
//!
//! FloodMin complements the paper's story: at the *favourable* end of the
//! DDS lattice k-set agreement is solvable for **any** `f < n` — the
//! impossibility of Theorem 2 is driven purely by the asynchrony of
//! communication, not by the number of failures.

use kset_sim::{Scenario, SenderMap};

use crate::scenario::ScenarioRounds;
use crate::sync::RoundProcess;
use crate::task::Val;

/// The number of rounds FloodMin needs: `⌊f/k⌋ + 1`.
pub fn floodmin_rounds(f: usize, k: usize) -> usize {
    assert!(k >= 1, "k-set agreement needs k ≥ 1");
    f / k + 1
}

/// Per-process FloodMin state.
#[derive(Debug, Clone, Hash)]
pub struct FloodMin {
    min: Val,
    total_rounds: usize,
    rounds_done: usize,
}

impl FloodMin {
    /// Creates a FloodMin process with proposal `value`, running
    /// `total_rounds` rounds.
    pub fn new(value: Val, total_rounds: usize) -> Self {
        assert!(total_rounds >= 1, "at least one round");
        FloodMin {
            min: value,
            total_rounds,
            rounds_done: 0,
        }
    }

    /// Builds a full system of FloodMin processes for `f` failures and
    /// target `k`.
    pub fn system(values: &[Val], f: usize, k: usize) -> Vec<FloodMin> {
        let rounds = floodmin_rounds(f, k);
        values.iter().map(|v| FloodMin::new(*v, rounds)).collect()
    }
}

impl ScenarioRounds for FloodMin {
    /// One FloodMin process per scenario input, running the scenario's
    /// scheduled round count (which [`kset_sim::Scenario::favourable`]
    /// defaults to [`floodmin_rounds`]`(f, k)`).
    fn scenario_system(scenario: &Scenario) -> Vec<FloodMin> {
        scenario
            .inputs
            .iter()
            .map(|v| FloodMin::new(*v, scenario.rounds))
            .collect()
    }
}

impl RoundProcess for FloodMin {
    type Msg = Val;

    fn message(&self, _round: usize) -> Val {
        self.min
    }

    fn receive(&mut self, _round: usize, msgs: &SenderMap<Val>) {
        if let Some(m) = msgs.values().min() {
            self.min = self.min.min(*m);
        }
        self.rounds_done += 1;
    }

    fn decision(&self) -> Option<Val> {
        (self.rounds_done >= self.total_rounds).then_some(self.min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{run_sync, RoundCrash};
    use crate::task::distinct_proposals;
    use kset_sim::{ProcessId, ProcessSet};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn failure_free_run_is_consensus_on_minimum() {
        let values = vec![5, 2, 9, 4];
        let procs = FloodMin::system(&values, 0, 1);
        let out = run_sync(procs, floodmin_rounds(0, 1), &[]);
        assert_eq!(out.decisions, vec![Some(2); 4]);
    }

    #[test]
    fn rounds_formula() {
        assert_eq!(floodmin_rounds(0, 1), 1);
        assert_eq!(floodmin_rounds(3, 1), 4);
        assert_eq!(floodmin_rounds(3, 2), 2);
        assert_eq!(floodmin_rounds(4, 2), 3);
        assert_eq!(floodmin_rounds(5, 3), 2);
    }

    /// The classic worst case for consensus (k = 1): a chain of crashes,
    /// one per round, each reaching a single receiver. f+1 rounds defeat it.
    #[test]
    fn chained_crashes_do_not_break_consensus() {
        let n = 5;
        let f = 3;
        let values = distinct_proposals(n);
        let procs = FloodMin::system(&values, f, 1);
        let crashes: Vec<RoundCrash> = (0..f)
            .map(|r| RoundCrash {
                round: r + 1,
                pid: pid(r),
                receivers: [pid(r + 1)].into(),
            })
            .collect();
        let out = run_sync(procs, floodmin_rounds(f, 1), &crashes);
        let distinct = out.distinct_decisions();
        assert_eq!(distinct.len(), 1, "decisions: {:?}", out.decisions);
    }

    /// With only ⌊f/k⌋ rounds (one too few) the same chain CAN produce more
    /// than k values — showing the round bound is tight for k = 1.
    #[test]
    fn one_round_too_few_breaks_agreement() {
        let n = 5;
        let f = 3;
        let values = distinct_proposals(n);
        let rounds = floodmin_rounds(f, 1) - 1;
        let procs: Vec<FloodMin> = values.iter().map(|v| FloodMin::new(*v, rounds)).collect();
        let crashes: Vec<RoundCrash> = (0..f)
            .map(|r| RoundCrash {
                round: r + 1,
                pid: pid(r),
                receivers: [pid(r + 1)].into(),
            })
            .collect();
        let out = run_sync(procs, rounds, &crashes);
        assert!(
            out.distinct_decisions().len() > 1,
            "the chain must defeat {rounds} rounds: {:?}",
            out.decisions
        );
    }

    #[test]
    fn k_agreement_under_random_crash_patterns() {
        let n = 7;
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = rng.gen_range(0..n); // up to n−1 crashes
            let k = rng.gen_range(1..=3usize);
            let values = distinct_proposals(n);
            let rounds = floodmin_rounds(f, k);
            let procs = FloodMin::system(&values, f, k);
            // Random crash schedule: f distinct processes, random rounds,
            // random receiver subsets.
            let mut victims: Vec<usize> = (0..n).collect();
            victims.shuffle(&mut rng);
            let crashes: Vec<RoundCrash> = victims[..f]
                .iter()
                .map(|&v| {
                    let receivers: ProcessSet =
                        (0..n).filter(|_| rng.gen_bool(0.5)).map(pid).collect();
                    RoundCrash {
                        round: rng.gen_range(1..=rounds),
                        pid: pid(v),
                        receivers,
                    }
                })
                .collect();
            let out = run_sync(procs, rounds, &crashes);
            let distinct = out.distinct_decisions();
            assert!(
                distinct.len() <= k,
                "seed {seed}: f={f} k={k} rounds={rounds} decisions={:?}",
                out.decisions
            );
            // All correct processes decided.
            for i in 0..n {
                if !out.crashed.contains(pid(i)) {
                    assert!(
                        out.decisions[i].is_some(),
                        "seed {seed}: p{} undecided",
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn any_f_less_than_n_is_tolerated() {
        // The favourable model point solves k-set agreement for ANY f < n —
        // the contrast to Theorem 2's border.
        let n = 6;
        let f = n - 1;
        let k = 2;
        let values = distinct_proposals(n);
        let procs = FloodMin::system(&values, f, k);
        let crashes: Vec<RoundCrash> = (0..f)
            .map(|i| RoundCrash {
                round: i / k + 1,
                pid: pid(i),
                receivers: [pid(i + 1)].into(),
            })
            .collect();
        let out = run_sync(procs, floodmin_rounds(f, k), &crashes);
        assert!(out.distinct_decisions().len() <= k);
    }
}
