//! FloodMin: synchronous-round k-set agreement.
//!
//! The classic algorithm (Chaudhuri et al.) for the fully favourable model
//! point: in each of `⌊f/k⌋ + 1` rounds every process broadcasts the
//! smallest value it has seen; after the last round it decides that
//! minimum. With at most `f` crash failures, at most `k` distinct values
//! survive: each round in which more than `k` "fresh" minima persist must
//! burn more than `k` crashes, and the adversary only has `f`.
//!
//! FloodMin complements the paper's story: at the *favourable* end of the
//! DDS lattice k-set agreement is solvable for **any** `f < n` — the
//! impossibility of Theorem 2 is driven purely by the asynchrony of
//! communication, not by the number of failures.

use kset_sim::observe::EventCounts;
use kset_sim::planes::LimbPlanes;
use kset_sim::{ProcessId, ProcessSet, Scenario, SenderMap, PSET_LIMBS};

use crate::scenario::ScenarioRounds;
use crate::sync::{RoundCrash, RoundProcess, SyncOutcome};
use crate::task::Val;

/// The number of rounds FloodMin needs: `⌊f/k⌋ + 1`.
pub fn floodmin_rounds(f: usize, k: usize) -> usize {
    assert!(k >= 1, "k-set agreement needs k ≥ 1");
    f / k + 1
}

/// Per-process FloodMin state.
#[derive(Debug, Clone, Hash)]
pub struct FloodMin {
    min: Val,
    total_rounds: usize,
    rounds_done: usize,
}

impl FloodMin {
    /// Creates a FloodMin process with proposal `value`, running
    /// `total_rounds` rounds.
    pub fn new(value: Val, total_rounds: usize) -> Self {
        assert!(total_rounds >= 1, "at least one round");
        FloodMin {
            min: value,
            total_rounds,
            rounds_done: 0,
        }
    }

    /// Builds a full system of FloodMin processes for `f` failures and
    /// target `k`.
    pub fn system(values: &[Val], f: usize, k: usize) -> Vec<FloodMin> {
        let rounds = floodmin_rounds(f, k);
        values.iter().map(|v| FloodMin::new(*v, rounds)).collect()
    }
}

impl ScenarioRounds for FloodMin {
    /// One FloodMin process per scenario input, running the scenario's
    /// scheduled round count (which [`kset_sim::Scenario::favourable`]
    /// defaults to [`floodmin_rounds`]`(f, k)`).
    fn scenario_system(scenario: &Scenario) -> Vec<FloodMin> {
        scenario
            .inputs
            .iter()
            .map(|v| FloodMin::new(*v, scenario.rounds))
            .collect()
    }
}

/// One cell of a [`floodmin_batch`]: its proposal vector and crash
/// schedule. All lanes of a batch share one `(n, rounds)` shape.
#[derive(Debug, Clone)]
pub struct FloodMinLane {
    /// Proposal values, one per process (`values.len() == n`). Every
    /// value must be below [`Val::MAX`], which the kernel reserves as its
    /// crashed-lane sentinel.
    pub values: Vec<Val>,
    /// The lane's crash schedule, [`LockStep`](crate::sync::LockStep)
    /// semantics.
    pub crashes: Vec<RoundCrash>,
}

/// Runs `lanes.len()` independent FloodMin cells of shared shape
/// `(n, rounds)` as one structure-of-arrays computation.
///
/// The per-process minima of all lanes live in a single `n × B` buffer
/// (row-major by process, lane-minor), so the round body — "everyone
/// broadcasts its minimum, everyone keeps the smallest value heard" —
/// collapses to one branch-free column-minimum pass over `n × B`
/// contiguous words plus a select-update, with crash omissions applied
/// sparsely afterwards. Crashed slots carry a [`Val::MAX`] sentinel and
/// the per-lane alive masks are [`LimbPlanes`] columns, so a crash is a
/// single-word and-not.
///
/// Each lane's `(SyncOutcome, EventCounts)` is **identical** to what a
/// scalar [`run_sync`](crate::sync::run_sync) of the same cell under an
/// [`EventCounter`](kset_sim::observe::EventCounter) produces — the
/// property the batched sweep's byte-identity gate rests on.
///
/// # Panics
///
/// Panics if a lane's proposal count differs from `n`, a proposal equals
/// [`Val::MAX`], a lane schedules two crashes for one process, or
/// `rounds` is zero.
pub fn floodmin_batch(
    n: usize,
    rounds: usize,
    lanes: &[FloodMinLane],
) -> Vec<(SyncOutcome, EventCounts)> {
    assert!(rounds >= 1, "at least one round");
    let b = lanes.len();
    if b == 0 {
        return Vec::new();
    }
    // kset-lint: allow(unchecked-capacity): floodmin_batch mirrors run_sync's documented panicking contract; sweep drivers validate n at grid construction
    let full = ProcessSet::full(n);
    // mins[p * B + lane]: process p's current minimum in each lane;
    // Val::MAX marks a crashed slot.
    let mut mins = vec![Val::MAX; n * b];
    let mut alive: LimbPlanes<PSET_LIMBS> = LimbPlanes::filled(b, full);
    let mut alive_count = vec![n as u64; b];
    let mut counts = vec![EventCounts::default(); b];
    // Crash schedules bucketed by round; entries that can never fire in a
    // scalar run (pid ≥ n, round out of schedule) are dropped, but still
    // checked for the duplicate-pid contract first.
    let mut by_round: Vec<Vec<(usize, ProcessId, ProcessSet)>> = vec![Vec::new(); rounds + 1];
    for (lane, cell) in lanes.iter().enumerate() {
        assert_eq!(cell.values.len(), n, "lane {lane}: proposal count");
        let mut seen = ProcessSet::new();
        for c in &cell.crashes {
            assert!(seen.insert(c.pid), "duplicate crash for {}", c.pid);
            if c.pid.index() < n && (1..=rounds).contains(&c.round) {
                by_round[c.round].push((lane, c.pid, c.receivers));
            }
        }
        for (p, v) in cell.values.iter().enumerate() {
            assert!(*v < Val::MAX, "Val::MAX is the crashed-slot sentinel");
            mins[p * b + lane] = *v;
        }
    }
    // (lane, sent value, reach ∩ alive-after) of this round's crashers.
    let mut late: Vec<(usize, Val, ProcessSet)> = Vec::new();
    let mut col_min = vec![Val::MAX; b];
    for (round, round_crashes) in by_round.iter().enumerate().skip(1) {
        let alive_start: Vec<u64> = alive_count.clone();
        for c in counts.iter_mut() {
            c.rounds += 1;
        }
        for (lane, c) in counts.iter_mut().enumerate() {
            c.sends += alive_start[lane] * n as u64;
        }
        // Crash phase: withdraw each crasher from its lane before the
        // broadcast pass; its send reaches only its chosen receivers.
        late.clear();
        for &(lane, pid, receivers) in round_crashes {
            let slot = &mut mins[pid.index() * b + lane];
            let sent = *slot;
            *slot = Val::MAX;
            alive.lane_remove(lane, pid);
            alive_count[lane] -= 1;
            let reach = receivers.intersection(full);
            counts[lane].dropped += (n - reach.len()) as u64;
            counts[lane].crashes += 1;
            late.push((lane, sent, reach));
        }
        // Broadcast pass: the column minimum over all n rows is the
        // smallest value any surviving sender broadcast this round
        // (crashed slots are Val::MAX and drop out); the select keeps
        // crashed slots at the sentinel.
        col_min.iter_mut().for_each(|m| *m = Val::MAX);
        for row in mins.chunks_exact(b) {
            for (m, v) in col_min.iter_mut().zip(row) {
                *m = (*m).min(*v);
            }
        }
        for row in mins.chunks_exact_mut(b) {
            for (v, m) in row.iter_mut().zip(&col_min) {
                let lowered = (*v).min(*m);
                *v = if *v == Val::MAX { Val::MAX } else { lowered };
            }
        }
        // Omission deliveries: each crasher's value still reaches the
        // survivors it chose.
        for (lane, sent, reach) in late.iter_mut() {
            let alive_after = alive.lane(*lane);
            *reach = reach.intersection(alive_after);
            for p in reach.iter() {
                let slot = &mut mins[p.index() * b + *lane];
                *slot = (*slot).min(*sent);
            }
        }
        // Event arithmetic, matching an EventCounter on the scalar run:
        // every survivor consumed one message per round-start sender,
        // minus the crashers that omitted it.
        for (lane, c) in counts.iter_mut().enumerate() {
            c.delivers += alive_count[lane] * alive_start[lane];
        }
        for (lane, _, reach) in &late {
            counts[*lane].delivers -= alive_count[*lane] - reach.len() as u64;
        }
        if round == rounds {
            // FloodMin decides exactly at its final receive, so first
            // decisions are the processes still alive after it.
            for (lane, c) in counts.iter_mut().enumerate() {
                c.decides += alive_count[lane];
            }
        }
    }
    (0..b)
        .map(|lane| {
            let alive_set = alive.lane(lane);
            let decisions = (0..n)
                .map(|p| {
                    alive_set
                        .contains(ProcessId::new(p))
                        .then(|| mins[p * b + lane])
                })
                .collect();
            let mut c = counts[lane];
            c.halts = 1;
            (
                SyncOutcome {
                    decisions,
                    crashed: full.difference(alive_set),
                    rounds,
                },
                c,
            )
        })
        .collect()
}

impl RoundProcess for FloodMin {
    type Msg = Val;

    fn message(&self, _round: usize) -> Val {
        self.min
    }

    fn receive(&mut self, _round: usize, msgs: &SenderMap<Val>) {
        if let Some(m) = msgs.values().min() {
            self.min = self.min.min(*m);
        }
        self.rounds_done += 1;
    }

    fn decision(&self) -> Option<Val> {
        (self.rounds_done >= self.total_rounds).then_some(self.min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{run_sync, RoundCrash};
    use crate::task::distinct_proposals;
    use kset_sim::{ProcessId, ProcessSet};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn failure_free_run_is_consensus_on_minimum() {
        let values = vec![5, 2, 9, 4];
        let procs = FloodMin::system(&values, 0, 1);
        let out = run_sync(procs, floodmin_rounds(0, 1), &[]);
        assert_eq!(out.decisions, vec![Some(2); 4]);
    }

    #[test]
    fn rounds_formula() {
        assert_eq!(floodmin_rounds(0, 1), 1);
        assert_eq!(floodmin_rounds(3, 1), 4);
        assert_eq!(floodmin_rounds(3, 2), 2);
        assert_eq!(floodmin_rounds(4, 2), 3);
        assert_eq!(floodmin_rounds(5, 3), 2);
    }

    /// The classic worst case for consensus (k = 1): a chain of crashes,
    /// one per round, each reaching a single receiver. f+1 rounds defeat it.
    #[test]
    fn chained_crashes_do_not_break_consensus() {
        let n = 5;
        let f = 3;
        let values = distinct_proposals(n);
        let procs = FloodMin::system(&values, f, 1);
        let crashes: Vec<RoundCrash> = (0..f)
            .map(|r| RoundCrash {
                round: r + 1,
                pid: pid(r),
                receivers: [pid(r + 1)].into(),
            })
            .collect();
        let out = run_sync(procs, floodmin_rounds(f, 1), &crashes);
        let distinct = out.distinct_decisions();
        assert_eq!(distinct.len(), 1, "decisions: {:?}", out.decisions);
    }

    /// With only ⌊f/k⌋ rounds (one too few) the same chain CAN produce more
    /// than k values — showing the round bound is tight for k = 1.
    #[test]
    fn one_round_too_few_breaks_agreement() {
        let n = 5;
        let f = 3;
        let values = distinct_proposals(n);
        let rounds = floodmin_rounds(f, 1) - 1;
        let procs: Vec<FloodMin> = values.iter().map(|v| FloodMin::new(*v, rounds)).collect();
        let crashes: Vec<RoundCrash> = (0..f)
            .map(|r| RoundCrash {
                round: r + 1,
                pid: pid(r),
                receivers: [pid(r + 1)].into(),
            })
            .collect();
        let out = run_sync(procs, rounds, &crashes);
        assert!(
            out.distinct_decisions().len() > 1,
            "the chain must defeat {rounds} rounds: {:?}",
            out.decisions
        );
    }

    #[test]
    fn k_agreement_under_random_crash_patterns() {
        let n = 7;
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = rng.gen_range(0..n); // up to n−1 crashes
            let k = rng.gen_range(1..=3usize);
            let values = distinct_proposals(n);
            let rounds = floodmin_rounds(f, k);
            let procs = FloodMin::system(&values, f, k);
            // Random crash schedule: f distinct processes, random rounds,
            // random receiver subsets.
            let mut victims: Vec<usize> = (0..n).collect();
            victims.shuffle(&mut rng);
            let crashes: Vec<RoundCrash> = victims[..f]
                .iter()
                .map(|&v| {
                    let receivers: ProcessSet =
                        (0..n).filter(|_| rng.gen_bool(0.5)).map(pid).collect();
                    RoundCrash {
                        round: rng.gen_range(1..=rounds),
                        pid: pid(v),
                        receivers,
                    }
                })
                .collect();
            let out = run_sync(procs, rounds, &crashes);
            let distinct = out.distinct_decisions();
            assert!(
                distinct.len() <= k,
                "seed {seed}: f={f} k={k} rounds={rounds} decisions={:?}",
                out.decisions
            );
            // All correct processes decided.
            for i in 0..n {
                if !out.crashed.contains(pid(i)) {
                    assert!(
                        out.decisions[i].is_some(),
                        "seed {seed}: p{} undecided",
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn batched_floodmin_matches_scalar_under_random_schedules() {
        use kset_sim::observe::EventCounter;
        use kset_sim::Engine;

        use crate::sync::LockStep;

        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(0xf100d ^ seed);
            let n = rng.gen_range(2..=10usize);
            let f = rng.gen_range(0..n);
            let k = rng.gen_range(1..=3usize);
            let rounds = floodmin_rounds(f, k);
            let lanes: Vec<FloodMinLane> = (0..rng.gen_range(1..=7usize))
                .map(|_| {
                    let values: Vec<Val> =
                        (0..n).map(|_| rng.gen_range(0..=1000u64) as Val).collect();
                    let mut victims: Vec<usize> = (0..n).collect();
                    victims.shuffle(&mut rng);
                    let crashes: Vec<RoundCrash> = victims[..f]
                        .iter()
                        .map(|&v| {
                            let receivers: ProcessSet =
                                (0..n).filter(|_| rng.gen_bool(0.5)).map(pid).collect();
                            RoundCrash {
                                round: rng.gen_range(1..=rounds),
                                pid: pid(v),
                                receivers,
                            }
                        })
                        .collect();
                    FloodMinLane { values, crashes }
                })
                .collect();
            let batched = floodmin_batch(n, rounds, &lanes);
            for (lane, cell) in lanes.iter().enumerate() {
                let procs: Vec<FloodMin> = cell
                    .values
                    .iter()
                    .map(|v| FloodMin::new(*v, rounds))
                    .collect();
                let mut engine = LockStep::new(procs, rounds, &cell.crashes);
                let mut counter: EventCounter<Val> = EventCounter::new();
                engine.drive_observed(u64::MAX, &mut counter);
                let scalar = engine.outcome();
                let (out, counts) = &batched[lane];
                assert_eq!(
                    (out.decisions.clone(), out.crashed, out.rounds),
                    (scalar.decisions, scalar.crashed, scalar.rounds),
                    "seed {seed} lane {lane} outcome (n={n} f={f} k={k})"
                );
                assert_eq!(
                    *counts,
                    counter.counts(),
                    "seed {seed} lane {lane} event totals (n={n} f={f} k={k})"
                );
            }
        }
    }

    #[test]
    fn batched_floodmin_empty_batch_is_empty() {
        assert!(floodmin_batch(4, 2, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate crash")]
    fn batched_floodmin_rejects_duplicate_crashes() {
        let c = |round| RoundCrash {
            round,
            pid: pid(0),
            receivers: ProcessSet::new(),
        };
        let lanes = [FloodMinLane {
            values: vec![1, 2],
            crashes: vec![c(1), c(2)],
        }];
        let _ = floodmin_batch(2, 2, &lanes);
    }

    #[test]
    #[should_panic(expected = "proposal count")]
    fn batched_floodmin_rejects_ragged_lanes() {
        let lanes = [FloodMinLane {
            values: vec![1, 2, 3],
            crashes: Vec::new(),
        }];
        let _ = floodmin_batch(2, 1, &lanes);
    }

    #[test]
    fn any_f_less_than_n_is_tolerated() {
        // The favourable model point solves k-set agreement for ANY f < n —
        // the contrast to Theorem 2's border.
        let n = 6;
        let f = n - 1;
        let k = 2;
        let values = distinct_proposals(n);
        let procs = FloodMin::system(&values, f, k);
        let crashes: Vec<RoundCrash> = (0..f)
            .map(|i| RoundCrash {
                round: i / k + 1,
                pid: pid(i),
                receivers: [pid(i + 1)].into(),
            })
            .collect();
        let out = run_sync(procs, floodmin_rounds(f, k), &crashes);
        assert!(out.distinct_decisions().len() <= k);
    }
}
