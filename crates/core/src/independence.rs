//! T-independence (Definition 6 of the paper), executably.
//!
//! An algorithm `A` satisfies **T-independence** in model `M`, for a family
//! `T ⊆ 2^Π`, if for every `S ∈ T` there is a run of `A` in which the
//! processes of `S` receive messages only from `S` until every process of
//! `S` has decided or crashed. (The *strong* variant requires this only
//! eventually; the plain variant is what the impossibility machinery
//! needs.)
//!
//! The paper expresses the classic progress conditions in this language:
//! wait-freedom is (strong) `2^Π`-independence, `f`-resilience gives
//! independence for all sets of size ≥ n − f, obstruction-freedom gives
//! singleton independence, and asymmetric conditions pick the sets
//! containing a distinguished process.
//!
//! [`isolated_run`] *constructs* the witnessing run for a given `S` (an
//! isolation scheduler starves `S` of outside messages);
//! [`check_independence`] quantifies over a [`Family`]. A successful check
//! is precisely condition (A) of Theorem 1 for the partition blocks — this
//! is how the impossibility engine consumes it.

use kset_sim::sched::{Choice, Delivery, Scheduler, SimView};
use kset_sim::{
    CrashPlan, NoOracle, Oracle, Process, ProcessId, ProcessSet, RunReport, Simulation,
};

/// A family `T ⊆ 2^Π` of process sets, explicitly enumerated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Family {
    n: usize,
    sets: Vec<ProcessSet>,
}

impl Family {
    /// Creates a family from explicit sets.
    ///
    /// # Panics
    ///
    /// Panics if a set is empty or references processes outside `0..n`.
    pub fn new(n: usize, sets: Vec<ProcessSet>) -> Self {
        for s in &sets {
            assert!(!s.is_empty(), "independence sets must be nonempty");
            assert!(s.iter().all(|p| p.index() < n), "set member out of range");
        }
        Family { n, sets }
    }

    /// Wait-freedom: every nonempty subset of `Π`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 16` (the family is exponential).
    pub fn wait_free(n: usize) -> Self {
        assert!(n <= 16, "wait-free family is exponential; keep n ≤ 16");
        let sets = (1u128..(1 << n)).map(ProcessSet::from_bits).collect();
        Family { n, sets }
    }

    /// `f`-resilience: all subsets of size ≥ `n − f`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 16` or `f >= n`.
    pub fn f_resilient(n: usize, f: usize) -> Self {
        assert!(f < n, "f must be < n");
        let all = Self::wait_free(n);
        let sets = all.sets.into_iter().filter(|s| s.len() >= n - f).collect();
        Family { n, sets }
    }

    /// Obstruction-freedom: the singletons `{p1}, …, {pn}`.
    pub fn singletons(n: usize) -> Self {
        let sets = ProcessId::all(n).map(ProcessSet::singleton).collect();
        Family { n, sets }
    }

    /// The asymmetric condition `{S | {p} ⊆ S ⊆ Π}` (wait-freedom of `p`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 16`.
    pub fn containing(n: usize, p: ProcessId) -> Self {
        let all = Self::wait_free(n);
        let sets = all.sets.into_iter().filter(|s| s.contains(p)).collect();
        Family { n, sets }
    }

    /// The member sets.
    pub fn sets(&self) -> &[ProcessSet] {
        &self.sets
    }

    /// Number of member sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Observation 1(b): a subfamily is still satisfied. Returns the family
    /// restricted to sets satisfying `keep`.
    pub fn filter(&self, keep: impl Fn(&ProcessSet) -> bool) -> Family {
        Family {
            n: self.n,
            sets: self.sets.iter().filter(|s| keep(s)).copied().collect(),
        }
    }
}

/// Scheduler that isolates `S`: members of `S` receive only from `S`;
/// everyone else receives everything. Stops once every member of `S` has
/// decided or crashed.
#[derive(Debug, Clone)]
pub struct IsolationScheduler {
    s: ProcessSet,
    cursor: usize,
}

impl IsolationScheduler {
    /// Creates the scheduler isolating `s`.
    pub fn new(s: ProcessSet) -> Self {
        IsolationScheduler { s, cursor: 0 }
    }

    fn s_done<M>(&self, view: &SimView<'_, M>) -> bool {
        self.s
            .iter()
            .all(|p| !view.is_alive(p) || view.has_decided(p))
    }
}

impl<M> Scheduler<M> for IsolationScheduler {
    fn next(&mut self, view: &SimView<'_, M>) -> Option<Choice> {
        if self.s_done(view) {
            return None;
        }
        for offset in 0..view.n {
            let idx = (self.cursor + offset) % view.n;
            let pid = ProcessId::new(idx);
            if view.is_alive(pid) {
                self.cursor = (idx + 1) % view.n;
                let delivery = if self.s.contains(pid) {
                    Delivery::AllFrom(self.s)
                } else {
                    Delivery::All
                };
                return Some(Choice { pid, delivery });
            }
        }
        None
    }
}

/// Runs `A` with `S` isolated until every member of `S` decided or crashed
/// (or `max_steps` elapsed). Returns the report; the caller checks whether
/// all of `S` decided.
pub fn isolated_run<P, O>(
    inputs: Vec<P::Input>,
    oracle: O,
    s: ProcessSet,
    plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let mut sched = IsolationScheduler::new(s);
    // kset-lint: allow(unchecked-capacity): analysis entry point mirroring Simulation::with_oracle's documented panicking contract for oversized input vectors
    let mut sim: Simulation<P, O> = Simulation::with_oracle(inputs, oracle, plan);
    sim.run_to_report(&mut sched, max_steps)
}

/// [`isolated_run`] for algorithms without failure detectors.
pub fn isolated_run_no_fd<P>(
    inputs: Vec<P::Input>,
    s: ProcessSet,
    plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process<Fd = ()>,
{
    let mut sched = IsolationScheduler::new(s);
    // kset-lint: allow(unchecked-capacity): analysis entry point mirroring Simulation::new's documented panicking contract for oversized input vectors
    let mut sim: Simulation<P, NoOracle> = Simulation::new(inputs, plan);
    sim.run_to_report(&mut sched, max_steps)
}

/// Whether the isolated run witnessed independence for `S`: every member
/// decided or crashed while hearing only from `S`.
pub fn witnesses_independence<V: Clone + Ord>(report: &RunReport<V>, s: ProcessSet) -> bool {
    s.iter().all(|p| {
        report.decisions[p.index()].is_some() || report.failure_pattern.crash_time(p).is_some()
    })
}

/// Checks T-independence of an oracle-less algorithm over a whole family:
/// returns the first set with no witnessing run, or `Ok(())`.
pub fn check_independence<P>(
    make_inputs: impl Fn() -> Vec<P::Input>,
    family: &Family,
    max_steps: u64,
) -> Result<(), ProcessSet>
where
    P: Process<Fd = ()>,
{
    for &s in family.sets() {
        let report = isolated_run_no_fd::<P>(make_inputs(), s, CrashPlan::none(), max_steps);
        if !witnesses_independence(&report, s) {
            return Err(s);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive::DecideOwn;
    use crate::algorithms::two_stage::{two_stage_inputs, TwoStage};
    use crate::task::distinct_proposals;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn family_constructors() {
        assert_eq!(Family::wait_free(3).len(), 7);
        assert_eq!(Family::singletons(4).len(), 4);
        // n=4, f=1: sets of size ≥ 3: C(4,3)+C(4,4) = 5.
        assert_eq!(Family::f_resilient(4, 1).len(), 5);
        // Sets containing p1 among subsets of {p1,p2,p3}: 4.
        assert_eq!(Family::containing(3, pid(0)).len(), 4);
    }

    #[test]
    fn family_filter_is_observation_1b() {
        let wf = Family::wait_free(3);
        let big = wf.filter(|s| s.len() >= 2);
        assert_eq!(big.len(), 4);
        assert!(big.sets().iter().all(|s| s.len() >= 2));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_set_rejected() {
        let _ = Family::new(2, vec![ProcessSet::new()]);
    }

    #[test]
    fn decide_own_is_wait_free_independent() {
        // DecideOwn decides without hearing anyone: 2^Π-independence.
        let check =
            check_independence::<DecideOwn>(|| distinct_proposals(4), &Family::wait_free(4), 1_000);
        assert!(check.is_ok());
    }

    #[test]
    fn two_stage_is_f_resilient_independent() {
        // Lemma 4 (instantiated): with L = n − f, the two-stage protocol is
        // independent for every set of size ≥ L = n − f.
        let n = 6;
        let f = 3;
        let l = n - f;
        let family = Family::f_resilient(n, f).filter(|s| s.len() >= l);
        let check = check_independence::<TwoStage>(
            || two_stage_inputs(l, &distinct_proposals(n)),
            &family,
            100_000,
        );
        assert!(check.is_ok());
    }

    #[test]
    fn two_stage_is_not_singleton_independent() {
        // A single isolated process waits forever for L−1 = 2 messages:
        // {singletons}-independence fails (the algorithm is not
        // obstruction-free) — the flip side of the same lemma.
        let n = 6;
        let l = 3;
        let family = Family::singletons(n);
        let check = check_independence::<TwoStage>(
            || two_stage_inputs(l, &distinct_proposals(n)),
            &family,
            20_000,
        );
        assert!(check.is_err());
    }

    #[test]
    fn isolation_scheduler_starves_outside_sources() {
        let n = 4;
        let s: ProcessSet = [pid(0), pid(1)].into();
        let inputs = two_stage_inputs(2, &distinct_proposals(n));
        let report = isolated_run_no_fd::<TwoStage>(inputs, s, CrashPlan::none(), 50_000);
        // S members decided while isolated (L−1 = 1 message from within S).
        assert!(witnesses_independence(&report, s));
        // Their decisions involve only S values.
        for p in s {
            let d = report.decisions[p.index()].unwrap();
            assert!(d < 2, "decision {d} must come from within S");
        }
    }
}
