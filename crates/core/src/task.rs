//! The k-set agreement task and run-level verdict checkers.
//!
//! Section II-A of the paper: processes must irrevocably set their outputs
//! `y_p` based on proposal values `x_q ∈ V` such that
//!
//! * **k-Agreement** — at most `k` different decision values system-wide
//!   (over correct *and* faulty processes);
//! * **Validity** — every decision was proposed by some process;
//! * **Termination** — every correct process eventually decides.
//!
//! `k = 1` is (uniform) consensus; `k = n − 1` is set agreement. The
//! checkers in this module turn a finished [`RunReport`] into a
//! [`Verdict`]; the whole test and experiment harness is built on them.

use std::collections::BTreeSet;
use std::fmt;

use kset_sim::RunReport;

/// The proposal/decision value type used by all algorithms in this crate.
///
/// The paper assumes `|V| > n` so that runs where all processes propose
/// distinct values exist; `u64` provides that in abundance.
pub type Val = u64;

/// A k-set agreement task instance over `n` processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KSetTask {
    /// System size.
    pub n: usize,
    /// Maximum number of distinct decision values allowed.
    pub k: usize,
}

impl KSetTask {
    /// Creates a task instance.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k` and `n ≥ 1`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(k >= 1, "k-set agreement needs k ≥ 1");
        KSetTask { n, k }
    }

    /// The consensus instance (`k = 1`).
    pub fn consensus(n: usize) -> Self {
        Self::new(n, 1)
    }

    /// The set-agreement instance (`k = n − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn set_agreement(n: usize) -> Self {
        assert!(n >= 2, "set agreement needs n ≥ 2");
        Self::new(n, n - 1)
    }

    /// Judges a finished run against the three properties.
    pub fn judge(&self, proposals: &[Val], report: &RunReport<Val>) -> Verdict {
        assert_eq!(proposals.len(), self.n, "one proposal per process");
        let proposed: BTreeSet<Val> = proposals.iter().copied().collect();
        let distinct = report.distinct_decisions.len();
        let k_agreement = distinct <= self.k;
        let validity = report
            .distinct_decisions
            .iter()
            .all(|v| proposed.contains(v));
        let termination = report.all_correct_decided();
        let write_once = report.violations.is_empty();
        Verdict {
            k_agreement,
            validity,
            termination,
            write_once,
            distinct,
        }
    }
}

/// The outcome of judging one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// At most `k` distinct decisions.
    pub k_agreement: bool,
    /// Every decision was proposed.
    pub validity: bool,
    /// Every correct process decided.
    pub termination: bool,
    /// No write-once violation occurred.
    pub write_once: bool,
    /// The observed number of distinct decisions.
    pub distinct: usize,
}

impl Verdict {
    /// Whether the run satisfies all properties.
    pub fn holds(&self) -> bool {
        self.k_agreement && self.validity && self.termination && self.write_once
    }

    /// Whether the run satisfies the safety properties only (k-Agreement +
    /// Validity + write-once) — used for runs that are intentionally cut
    /// short.
    pub fn safe(&self) -> bool {
        self.k_agreement && self.validity && self.write_once
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k-agreement: {} ({} distinct), validity: {}, termination: {}, write-once: {}",
            self.k_agreement, self.distinct, self.validity, self.termination, self.write_once
        )
    }
}

/// Distinct proposal values `0, 1, …, n−1` — the worst case for agreement
/// (the paper's impossibility runs all start from distinct proposals).
pub fn distinct_proposals(n: usize) -> Vec<Val> {
    (0..n as Val).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_sim::{FailurePattern, StopReason, Trace};

    fn report(n: usize, decisions: Vec<Option<Val>>) -> RunReport<Val> {
        let distinct: BTreeSet<Val> = decisions.iter().flatten().copied().collect();
        RunReport {
            decisions,
            distinct_decisions: distinct,
            failure_pattern: FailurePattern::all_correct(n),
            violations: vec![],
            stop: StopReason::AllCorrectDecided,
            steps: 0,
            trace: Trace::new(n),
        }
    }

    #[test]
    fn consensus_run_passes() {
        let task = KSetTask::consensus(3);
        let v = task.judge(&[5, 6, 7], &report(3, vec![Some(5), Some(5), Some(5)]));
        assert!(v.holds());
        assert_eq!(v.distinct, 1);
    }

    #[test]
    fn too_many_decisions_fail_k_agreement() {
        let task = KSetTask::new(3, 2);
        let v = task.judge(&[5, 6, 7], &report(3, vec![Some(5), Some(6), Some(7)]));
        assert!(!v.k_agreement);
        assert!(v.validity);
        assert_eq!(v.distinct, 3);
        assert!(!v.holds());
    }

    #[test]
    fn unproposed_value_fails_validity() {
        let task = KSetTask::consensus(2);
        let v = task.judge(&[5, 6], &report(2, vec![Some(9), Some(9)]));
        assert!(!v.validity);
        assert!(v.k_agreement);
    }

    #[test]
    fn undecided_correct_process_fails_termination() {
        let task = KSetTask::consensus(2);
        let v = task.judge(&[5, 6], &report(2, vec![Some(5), None]));
        assert!(!v.termination);
        assert!(v.safe(), "safety holds even without termination");
    }

    #[test]
    fn crashed_process_exempt_from_termination() {
        let task = KSetTask::consensus(2);
        let mut rep = report(2, vec![Some(5), None]);
        rep.failure_pattern
            .record_crash(kset_sim::ProcessId::new(1), kset_sim::Time::new(1));
        let v = task.judge(&[5, 6], &rep);
        assert!(v.termination);
        assert!(v.holds());
    }

    #[test]
    fn faulty_decisions_still_count_for_agreement() {
        // Uniform k-agreement: a crashed process's earlier decision counts.
        let task = KSetTask::consensus(2);
        let mut rep = report(2, vec![Some(5), Some(6)]);
        rep.failure_pattern
            .record_crash(kset_sim::ProcessId::new(1), kset_sim::Time::new(9));
        let v = task.judge(&[5, 6], &rep);
        assert!(
            !v.k_agreement,
            "uniform agreement binds faulty decisions too"
        );
    }

    #[test]
    fn set_agreement_and_consensus_constructors() {
        assert_eq!(KSetTask::set_agreement(5).k, 4);
        assert_eq!(KSetTask::consensus(5).k, 1);
    }

    #[test]
    fn distinct_proposals_are_distinct() {
        let p = distinct_proposals(6);
        let set: BTreeSet<Val> = p.iter().copied().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_rejected() {
        let _ = KSetTask::new(3, 0);
    }
}
