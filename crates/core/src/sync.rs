//! Lock-step synchronous rounds: the fully favourable DDS model point.
//!
//! The paper's impossibility (Theorem 2 / Corollary 5) lives at model points
//! with *asynchronous communication*. To exhibit the border it helps to also
//! implement the fully favourable point — synchronous processes **and**
//! synchronous communication — where classic round-based algorithms such as
//! FloodMin solve k-set agreement for any number of crash failures. This
//! module provides that substrate: a lock-step round executor with
//! mid-round crash injection (a crashing process delivers its round message
//! to an adversary-chosen subset of receivers, the synchronous analogue of
//! final-step send omission).
//!
//! The executor is the workspace's second [`Engine`] substrate: [`LockStep`]
//! wraps the round state machine and advances one *round* per engine unit,
//! so runners and benches can drive it through the same API as the
//! step-level simulator. [`run_sync`] is the traditional one-shot form, now
//! a thin wrapper over `LockStep`.

use std::fmt;

use kset_sim::observe::{
    CrashEvent, DecideEvent, DeliverEvent, EventCounts, NoObserver, Observer, RoundEvent, SendEvent,
};
use kset_sim::planes::LimbPlanes;
use kset_sim::{CapacityError, Engine, ProcessId, ProcessSet, SenderMap, Time, PSET_LIMBS};

use crate::task::Val;

/// A per-round state machine for the synchronous executor.
pub trait RoundProcess: Clone + fmt::Debug {
    /// The round-message type.
    type Msg: Clone + fmt::Debug;

    /// The message this process broadcasts in round `r` (rounds are
    /// 1-based).
    fn message(&self, round: usize) -> Self::Msg;

    /// Receives the round-`r` messages (by sender; absent senders crashed
    /// or omitted) and updates the state.
    fn receive(&mut self, round: usize, msgs: &SenderMap<Self::Msg>);

    /// The decision, if the process has decided.
    fn decision(&self) -> Option<Val>;
}

/// A crash scheduled in the synchronous executor: in round `round`, process
/// `pid` sends its round message only to `receivers` and then crashes.
#[derive(Debug, Clone)]
pub struct RoundCrash {
    /// The round in which the crash occurs (1-based).
    pub round: usize,
    /// The crashing process.
    pub pid: ProcessId,
    /// The receivers that still get the final round message.
    pub receivers: ProcessSet,
}

impl RoundCrash {
    /// The round-level reading of a scenario crash — field-for-field the
    /// same description; the step-level reading is
    /// [`kset_sim::Scenario::crash_plan`]'s final-step send omission.
    pub fn from_scenario_crash(crash: &kset_sim::ScenarioCrash) -> Self {
        RoundCrash {
            round: crash.round,
            pid: crash.pid,
            receivers: crash.receivers,
        }
    }
}

/// Outcome of a synchronous execution.
#[derive(Debug, Clone)]
pub struct SyncOutcome {
    /// Per-process decisions.
    pub decisions: Vec<Option<Val>>,
    /// Which processes crashed during the execution.
    pub crashed: ProcessSet,
    /// Rounds executed.
    pub rounds: usize,
}

impl SyncOutcome {
    /// The set of distinct decision values.
    pub fn distinct_decisions(&self) -> std::collections::BTreeSet<Val> {
        self.decisions.iter().flatten().copied().collect()
    }

    /// The **number** of distinct decision values, without allocating:
    /// equal to `self.distinct_decisions().len()`, but accumulated in a
    /// small sorted stack buffer instead of a heap `BTreeSet` — sweeps
    /// call this once per cell, and k-set outcomes rarely exceed a
    /// handful of values. Beyond 32 distinct values the tally spills to
    /// one sorted `Vec`.
    pub fn distinct_count(&self) -> usize {
        const STACK: usize = 32;
        let mut buf = [0 as Val; STACK];
        let mut len = 0usize;
        let mut iter = self.decisions.iter().flatten().copied();
        while let Some(v) = iter.next() {
            match buf[..len].binary_search(&v) {
                Ok(_) => {}
                Err(_) if len == STACK => {
                    // Spill: more distinct values than the stack buffer
                    // holds; finish with one sort + dedup pass.
                    let mut all: Vec<Val> = buf.to_vec();
                    all.push(v);
                    all.extend(iter);
                    all.sort_unstable();
                    all.dedup();
                    return all.len();
                }
                Err(pos) => {
                    buf.copy_within(pos..len, pos + 1);
                    buf[pos] = v;
                    len += 1;
                }
            }
        }
        len
    }
}

/// The lock-step round executor as an [`Engine`]: one engine unit executes
/// one full synchronous round.
///
/// # Examples
///
/// ```
/// use kset_core::sync::{LockStep, RoundProcess};
/// use kset_core::Val;
/// use kset_sim::{Engine, SenderMap};
///
/// #[derive(Debug, Clone)]
/// struct Echo(Option<usize>);
///
/// impl RoundProcess for Echo {
///     type Msg = ();
///     fn message(&self, _round: usize) {}
///     fn receive(&mut self, _round: usize, msgs: &SenderMap<()>) {
///         self.0 = Some(msgs.len());
///     }
///     fn decision(&self) -> Option<Val> {
///         self.0.map(|h| h as Val)
///     }
/// }
///
/// let mut engine = LockStep::new(vec![Echo(None); 3], 1, &[]);
/// engine.drive(u64::MAX);
/// assert_eq!(engine.outcome().decisions, vec![Some(3); 3]);
/// ```
#[derive(Debug, Clone)]
pub struct LockStep<P: RoundProcess> {
    procs: Vec<P>,
    crashes: Vec<RoundCrash>,
    crashed: ProcessSet,
    /// Rounds fully executed so far.
    round: usize,
    /// Total rounds scheduled.
    max_rounds: usize,
}

impl<P: RoundProcess> LockStep<P> {
    /// Creates an executor running `rounds` lock-step rounds of `procs`,
    /// applying the scheduled crashes.
    ///
    /// # Panics
    ///
    /// Panics if two crashes name the same process, or if `procs.len()`
    /// exceeds [`ProcessSet::CAPACITY`]; [`LockStep::try_new`] is the
    /// fallible form of the capacity check.
    pub fn new(procs: Vec<P>, rounds: usize, crashes: &[RoundCrash]) -> Self {
        match Self::try_new(procs, rounds, crashes) {
            Ok(ls) => ls,
            // kset-lint: allow(panic-in-library): documented panicking convenience wrapper over try_new
            Err(e) => panic!("system size {e}"),
        }
    }

    /// Creates the executor, or a [`CapacityError`] if `procs.len()`
    /// exceeds [`ProcessSet::CAPACITY`].
    ///
    /// # Panics
    ///
    /// Still panics if two crashes name the same process — that is a
    /// malformed schedule, not a size limit.
    pub fn try_new(
        procs: Vec<P>,
        rounds: usize,
        crashes: &[RoundCrash],
    ) -> Result<Self, CapacityError> {
        if procs.len() > ProcessSet::CAPACITY {
            return Err(CapacityError::new(procs.len(), ProcessSet::CAPACITY));
        }
        let mut seen = ProcessSet::new();
        for c in crashes {
            assert!(seen.insert(c.pid), "duplicate crash for {}", c.pid);
        }
        Ok(LockStep {
            procs,
            crashes: crashes.to_vec(),
            crashed: ProcessSet::new(),
            round: 0,
            max_rounds: rounds,
        })
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The processes that have crashed so far.
    pub fn crashed(&self) -> ProcessSet {
        self.crashed
    }

    /// The execution outcome at the current point.
    pub fn outcome(&self) -> SyncOutcome {
        SyncOutcome {
            decisions: self.procs.iter().map(RoundProcess::decision).collect(),
            crashed: self.crashed,
            rounds: self.round,
        }
    }

    /// Executes one full round (send phase, then receive phase).
    fn execute_round(&mut self) {
        self.execute_round_observed(&mut NoObserver);
    }

    /// Executes one full round, reporting the round's typed events to
    /// `obs` — per the round-substrate contract of [`kset_sim::observe`]:
    /// one [`SendEvent`] per `(sender, receiver)` pair of the send phase
    /// (a crashing sender's omitted deliveries appear as `dropped` sends,
    /// so *transmitted* counts agree with the step substrate), a
    /// [`CrashEvent`] per mid-round crash, then per alive receiver one
    /// [`DeliverEvent`] per consumed inbox entry and a [`DecideEvent`]
    /// when the receive phase first produced a decision, closed by one
    /// [`RoundEvent`].
    ///
    /// The round substrate tracks no message ids and does not fingerprint
    /// payloads (round messages need not be hashable), so the id and
    /// fingerprint fields of its send/deliver events are `None`. `time` on
    /// every event is the 1-based round number.
    ///
    /// The unobserved [`LockStep::advance`] is this method with a
    /// [`NoObserver`], monomorphized away.
    fn execute_round_observed<Ob>(&mut self, obs: &mut Ob)
    where
        Ob: Observer<Val> + ?Sized,
    {
        let n = self.procs.len();
        let round = self.round + 1;
        let time = Time::new(round as u64);
        // Send phase: every alive process emits its round message; crashing
        // processes deliver to their chosen subset only.
        let mut inboxes: Vec<SenderMap<P::Msg>> =
            (0..n).map(|_| SenderMap::with_capacity(n)).collect();
        for (i, p) in self.procs.iter().enumerate() {
            let pid = ProcessId::new(i);
            if self.crashed.contains(pid) {
                continue;
            }
            let msg = p.message(round);
            let crash_now = self
                .crashes
                .iter()
                .find(|c| c.pid == pid && c.round == round);
            for dst in ProcessId::all(n) {
                let delivered = match crash_now {
                    Some(c) => c.receivers.contains(dst),
                    None => true,
                };
                if delivered {
                    inboxes[dst.index()].insert(pid, msg.clone());
                }
                obs.on_send(&SendEvent {
                    time,
                    src: pid,
                    dst,
                    id: None,
                    payload_fp: None,
                    dropped: !delivered,
                });
            }
            if crash_now.is_some() {
                self.crashed.insert(pid);
                obs.on_crash(&CrashEvent {
                    time,
                    pid,
                    after_step: true,
                });
            }
        }
        // Receive phase: every alive process consumes its round inbox.
        let mut delivered_total = 0usize;
        for (i, p) in self.procs.iter_mut().enumerate() {
            let pid = ProcessId::new(i);
            if self.crashed.contains(pid) {
                continue;
            }
            let inbox = &inboxes[i];
            let had_decided = p.decision().is_some();
            p.receive(round, inbox);
            delivered_total += inbox.len();
            for (src, _) in inbox.iter() {
                obs.on_deliver(&DeliverEvent {
                    time,
                    src,
                    dst: pid,
                    id: None,
                    payload_fp: None,
                });
            }
            if !had_decided {
                if let Some(value) = p.decision() {
                    obs.on_decide(&DecideEvent { time, pid, value });
                }
            }
        }
        self.round = round;
        obs.on_round(&RoundEvent {
            round,
            alive: n - self.crashed.len(),
            delivered: delivered_total,
        });
    }
}

impl<P: RoundProcess> Engine for LockStep<P> {
    type Output = Val;

    fn n(&self) -> usize {
        self.procs.len()
    }

    fn advance(&mut self) -> bool {
        if self.round >= self.max_rounds {
            return false;
        }
        self.execute_round();
        true
    }

    fn advance_observed(&mut self, obs: &mut dyn Observer<Val>) -> bool {
        if self.round >= self.max_rounds {
            return false;
        }
        if obs.observes_events() {
            self.execute_round_observed(obs);
        } else {
            // One virtual check instead of one virtual call per event:
            // the monomorphized no-op path keeps observed-but-no-op
            // drives at parity with plain `drive`.
            self.execute_round();
        }
        true
    }

    /// The lock-step goal: every scheduled round executed **and** every
    /// non-crashed process decided. Requiring the full round count
    /// preserves the executor's contract of running exactly the scheduled
    /// rounds (round-based algorithms decide at their final round);
    /// requiring decisions keeps [`kset_sim::StopReason::AllCorrectDecided`]
    /// truthful — a round budget too small for the algorithm surfaces as
    /// `StepLimit`/`SchedulerDone`, not as success.
    fn done(&self) -> bool {
        self.round >= self.max_rounds
            && self
                .procs
                .iter()
                .enumerate()
                .all(|(i, p)| self.crashed.contains(ProcessId::new(i)) || p.decision().is_some())
    }

    fn units(&self) -> u64 {
        self.round as u64
    }

    fn decisions(&self) -> Vec<Option<Val>> {
        self.procs.iter().map(RoundProcess::decision).collect()
    }
}

/// Runs `rounds` lock-step rounds of processes initialized by `init`,
/// applying the scheduled crashes — [`LockStep`] driven to completion
/// through the [`Engine`] interface.
///
/// # Panics
///
/// Panics if two crashes name the same process.
pub fn run_sync<P: RoundProcess>(
    procs: Vec<P>,
    rounds: usize,
    crashes: &[RoundCrash],
) -> SyncOutcome {
    // kset-lint: allow(unchecked-capacity): run_sync is itself the documented panicking convenience entry point; capacity-aware callers go through LockStep::try_new directly
    let mut engine = LockStep::new(procs, rounds, crashes);
    engine.drive(rounds as u64);
    engine.outcome()
}

/// Why a [`BatchedLockStep`] could not be assembled from its lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// The batch has no lanes.
    Empty,
    /// The shared system size exceeds [`ProcessSet::CAPACITY`].
    Capacity(CapacityError),
    /// Lane `lane` has `len` processes where the batch shape demands `n`
    /// (all lanes of a batch share one `(n, rounds)` shape).
    ShapeMismatch {
        /// The offending lane.
        lane: usize,
        /// Its process count.
        len: usize,
        /// The batch's process count (lane 0's).
        n: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Empty => write!(f, "a batch needs at least one lane"),
            BatchError::Capacity(e) => e.fmt(f),
            BatchError::ShapeMismatch { lane, len, n } => write!(
                f,
                "lane {lane} has {len} processes but the batch shape has {n}; \
                 batches run same-shape cells only"
            ),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Capacity(e) => Some(e),
            _ => None,
        }
    }
}

/// One lane of a [`BatchedLockStep`]: its processes and crash schedule.
type BatchLane<P> = (Vec<P>, Vec<RoundCrash>);

/// The batched lock-step executor: `B` independent same-shape cells —
/// identical `(n, rounds)`, independent processes, seeds and crash
/// schedules — advanced **one round per unit across all lanes**, with
/// shared state held structure-of-arrays.
///
/// Per-lane alive masks live in a [`LimbPlanes`] buffer (limb-major,
/// lane-minor), so a crash is a single-word and-not on one plane and the
/// surviving-count tallies are plane passes; the round inboxes are one
/// reusable scratch arena instead of `n` fresh maps per lane per round.
/// Event totals ([`EventCounts`]) are maintained *arithmetically* from the
/// send/crash/receive phases — per lane they equal exactly what an
/// [`EventCounter`](kset_sim::observe::EventCounter) attached to a scalar
/// [`LockStep::drive_observed`] run of the same cell reports, which is
/// what lets a batched sweep reproduce an observed sequential sweep's
/// records byte for byte.
///
/// Semantics per lane are **identical** to a scalar [`LockStep`] run:
/// crashing senders deliver to their chosen receivers only, just-crashed
/// processes skip the receive phase, every scheduled round executes.
///
/// # Examples
///
/// ```
/// use kset_core::sync::{run_sync_batch, LockStep, RoundProcess};
/// use kset_core::Val;
/// use kset_sim::{Engine, SenderMap};
///
/// #[derive(Debug, Clone)]
/// struct Echo(Option<usize>);
///
/// impl RoundProcess for Echo {
///     type Msg = ();
///     fn message(&self, _round: usize) {}
///     fn receive(&mut self, _round: usize, msgs: &SenderMap<()>) {
///         self.0 = Some(msgs.len());
///     }
///     fn decision(&self) -> Option<Val> {
///         self.0.map(|h| h as Val)
///     }
/// }
///
/// let lanes = vec![
///     (vec![Echo(None); 3], Vec::new()),
///     (vec![Echo(None); 3], Vec::new()),
/// ];
/// let results = run_sync_batch(lanes, 1).unwrap();
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].0.decisions, vec![Some(3); 3]);
/// assert_eq!(results[0].1.sends, 9);
/// assert_eq!(results[0].1.halts, 1);
/// ```
#[derive(Debug, Clone)]
pub struct BatchedLockStep<P: RoundProcess> {
    n: usize,
    max_rounds: usize,
    /// Rounds fully executed so far (uniform across lanes).
    round: usize,
    procs: Vec<Vec<P>>,
    crashes: Vec<Vec<RoundCrash>>,
    /// Per-lane alive masks, limb-major (lane `b` = plane column `b`).
    alive: LimbPlanes<PSET_LIMBS>,
    counts: Vec<EventCounts>,
    /// Scratch round inboxes, reused across lanes and rounds.
    inbox: Vec<SenderMap<P::Msg>>,
    halted: bool,
}

impl<P: RoundProcess> BatchedLockStep<P> {
    /// Creates a batched executor over `lanes`, each running `rounds`
    /// lock-step rounds.
    ///
    /// # Errors
    ///
    /// [`BatchError::Empty`] without lanes, [`BatchError::Capacity`] if
    /// the shared `n` exceeds [`ProcessSet::CAPACITY`], and
    /// [`BatchError::ShapeMismatch`] if a lane's process count differs
    /// from lane 0's.
    ///
    /// # Panics
    ///
    /// Panics if a lane schedules two crashes for the same process — the
    /// same malformed-schedule contract as [`LockStep::try_new`].
    pub fn try_new(lanes: Vec<BatchLane<P>>, rounds: usize) -> Result<Self, BatchError> {
        let Some(n) = lanes.first().map(|(procs, _)| procs.len()) else {
            return Err(BatchError::Empty);
        };
        if n > ProcessSet::CAPACITY {
            return Err(BatchError::Capacity(CapacityError::new(
                n,
                ProcessSet::CAPACITY,
            )));
        }
        for (lane, (procs, crashes)) in lanes.iter().enumerate() {
            if procs.len() != n {
                return Err(BatchError::ShapeMismatch {
                    lane,
                    len: procs.len(),
                    n,
                });
            }
            let mut seen = ProcessSet::new();
            for c in crashes {
                assert!(seen.insert(c.pid), "duplicate crash for {}", c.pid);
            }
        }
        let lane_count = lanes.len();
        let (procs, crashes) = lanes.into_iter().unzip();
        Ok(BatchedLockStep {
            n,
            max_rounds: rounds,
            round: 0,
            procs,
            crashes,
            // kset-lint: allow(unchecked-capacity): n ≤ CAPACITY was typed-checked a few lines above (BatchError::Capacity), so full(n) cannot panic here
            alive: LimbPlanes::filled(lane_count, ProcessSet::full(n)),
            counts: vec![EventCounts::default(); lane_count],
            inbox: (0..n).map(|_| SenderMap::with_capacity(n)).collect(),
            halted: false,
        })
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.procs.len()
    }

    /// Rounds executed so far (all lanes advance together).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Executes one round across every lane; returns `false` once the
    /// scheduled rounds are exhausted.
    pub fn advance(&mut self) -> bool {
        if self.round >= self.max_rounds {
            return false;
        }
        let n = self.n;
        let round = self.round + 1;
        for b in 0..self.procs.len() {
            let mut alive = self.alive.lane(b);
            let alive_start = alive.len() as u64;
            let counts = &mut self.counts[b];
            counts.rounds += 1;
            for m in &mut self.inbox {
                m.clear();
            }
            // Send phase (mirrors LockStep::execute_round_observed): every
            // alive sender broadcasts; a crasher reaches its chosen
            // receivers only, the other sends count as dropped.
            for i in 0..n {
                let pid = ProcessId::new(i);
                if !alive.contains(pid) {
                    continue;
                }
                let msg = self.procs[b][i].message(round);
                counts.sends += n as u64;
                let crash_now = self.crashes[b]
                    .iter()
                    .find(|c| c.pid == pid && c.round == round);
                match crash_now {
                    None => {
                        for dst in 0..n {
                            self.inbox[dst].insert(pid, msg.clone());
                        }
                    }
                    Some(c) => {
                        // kset-lint: allow(unchecked-capacity): n was capacity-validated by try_new and is immutable after construction
                        let reach = c.receivers.intersection(ProcessSet::full(n));
                        for dst in reach.iter() {
                            self.inbox[dst.index()].insert(pid, msg.clone());
                        }
                        counts.dropped += (n - reach.len()) as u64;
                        counts.crashes += 1;
                        alive.remove(pid);
                        self.alive.lane_remove(b, pid);
                    }
                }
            }
            // Receive phase: survivors (just-crashed lanes excluded)
            // consume their inbox; first decisions are tallied.
            for i in 0..n {
                let pid = ProcessId::new(i);
                if !alive.contains(pid) {
                    continue;
                }
                let p = &mut self.procs[b][i];
                let had_decided = p.decision().is_some();
                p.receive(round, &self.inbox[i]);
                counts.delivers += self.inbox[i].len() as u64;
                if !had_decided && p.decision().is_some() {
                    counts.decides += 1;
                }
            }
            debug_assert!(alive.len() as u64 <= alive_start);
        }
        self.round = round;
        true
    }

    /// Drives every lane through all scheduled rounds and closes each
    /// lane's event tally with its halt (one per drive, matching a scalar
    /// `drive_observed`).
    pub fn run(&mut self) {
        while self.advance() {}
        if !self.halted {
            self.halted = true;
            for c in &mut self.counts {
                c.halts += 1;
            }
        }
    }

    /// Per-lane outcomes at the current point, in lane order.
    pub fn outcomes(&self) -> Vec<SyncOutcome> {
        // kset-lint: allow(unchecked-capacity): self.n was capacity-validated by try_new and is immutable after construction
        let full = ProcessSet::full(self.n);
        (0..self.procs.len())
            .map(|b| SyncOutcome {
                decisions: self.procs[b].iter().map(RoundProcess::decision).collect(),
                crashed: full.difference(self.alive.lane(b)),
                rounds: self.round,
            })
            .collect()
    }

    /// Per-lane event totals, in lane order.
    pub fn counts(&self) -> &[EventCounts] {
        &self.counts
    }
}

/// Runs `rounds` lock-step rounds of every lane as one batch, returning
/// each lane's outcome and event totals — [`BatchedLockStep`] driven to
/// completion.
///
/// # Errors
///
/// As [`BatchedLockStep::try_new`].
pub fn run_sync_batch<P: RoundProcess>(
    lanes: Vec<BatchLane<P>>,
    rounds: usize,
) -> Result<Vec<(SyncOutcome, EventCounts)>, BatchError> {
    let mut batch = BatchedLockStep::try_new(lanes, rounds)?;
    batch.run();
    Ok(batch
        .outcomes()
        .into_iter()
        .zip(batch.counts().iter().copied())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_sim::StopReason;

    /// Trivial echo: decides the number of senders heard in round 1.
    #[derive(Debug, Clone)]
    struct CountRound1 {
        heard: Option<usize>,
    }

    impl RoundProcess for CountRound1 {
        type Msg = ();

        fn message(&self, _round: usize) {}

        fn receive(&mut self, round: usize, msgs: &SenderMap<()>) {
            if round == 1 {
                self.heard = Some(msgs.len());
            }
        }

        fn decision(&self) -> Option<Val> {
            self.heard.map(|h| h as Val)
        }
    }

    #[test]
    fn all_alive_hear_everyone() {
        let procs = vec![CountRound1 { heard: None }; 3];
        let out = run_sync(procs, 1, &[]);
        assert_eq!(out.decisions, vec![Some(3), Some(3), Some(3)]);
        assert!(out.crashed.is_empty());
    }

    #[test]
    fn mid_round_crash_partitions_receivers() {
        // p1 crashes in round 1, reaching only p2.
        let procs = vec![CountRound1 { heard: None }; 3];
        let crash = RoundCrash {
            round: 1,
            pid: ProcessId::new(0),
            receivers: [ProcessId::new(1)].into(),
        };
        let out = run_sync(procs, 1, &[crash]);
        assert_eq!(out.decisions[1], Some(3), "p2 heard everyone incl. crasher");
        assert_eq!(out.decisions[2], Some(2), "p3 missed the crasher");
        assert_eq!(out.decisions[0], None, "crashed processes do not receive");
        assert_eq!(out.crashed, [ProcessId::new(0)].into());
    }

    #[test]
    fn crashed_process_sends_nothing_later() {
        let procs = vec![CountRound1 { heard: None }; 2];
        let crash = RoundCrash {
            round: 1,
            pid: ProcessId::new(0),
            receivers: ProcessSet::new(),
        };
        let out = run_sync(procs, 2, &[crash]);
        assert_eq!(out.decisions[1], Some(1), "only its own message in round 1");
    }

    #[test]
    #[should_panic(expected = "exceeds the ProcessSet capacity")]
    fn oversized_system_rejected_at_construction() {
        let procs = vec![CountRound1 { heard: None }; ProcessSet::CAPACITY + 1];
        let _ = LockStep::new(procs, 1, &[]);
    }

    #[test]
    fn oversized_system_is_a_typed_error_on_try_new() {
        let procs = vec![CountRound1 { heard: None }; ProcessSet::CAPACITY + 1];
        let err = LockStep::try_new(procs, 1, &[]).unwrap_err();
        assert_eq!(err.requested(), ProcessSet::CAPACITY + 1);
        assert_eq!(err.capacity(), ProcessSet::CAPACITY);
        let procs = vec![CountRound1 { heard: None }; ProcessSet::CAPACITY];
        assert!(LockStep::try_new(procs, 1, &[]).is_ok());
    }

    #[test]
    #[should_panic(expected = "duplicate crash")]
    fn duplicate_crash_rejected() {
        let procs = vec![CountRound1 { heard: None }; 2];
        let c = |round| RoundCrash {
            round,
            pid: ProcessId::new(0),
            receivers: ProcessSet::new(),
        };
        let _ = run_sync(procs, 2, &[c(1), c(2)]);
    }

    #[test]
    fn lockstep_engine_round_granularity() {
        let procs = vec![CountRound1 { heard: None }; 3];
        let mut engine = LockStep::new(procs, 2, &[]);
        assert_eq!(Engine::n(&engine), 3);
        assert!(!engine.done());
        assert!(engine.advance());
        assert_eq!(engine.round(), 1);
        assert_eq!(engine.units(), 1);
        assert!(engine.decisions().iter().all(Option::is_some));
        let status = engine.drive(10);
        assert_eq!(status.stop, StopReason::AllCorrectDecided);
        assert!(engine.done());
        assert!(!engine.advance(), "no rounds beyond the schedule");
        let out = engine.outcome();
        assert_eq!(out.rounds, 2);
        assert_eq!(engine.distinct_decisions().len(), 1);
    }

    #[test]
    fn undecided_rounds_do_not_report_success() {
        /// Never decides, whatever it hears.
        #[derive(Debug, Clone)]
        struct NeverDecides;
        impl RoundProcess for NeverDecides {
            type Msg = ();
            fn message(&self, _round: usize) {}
            fn receive(&mut self, _round: usize, _msgs: &SenderMap<()>) {}
            fn decision(&self) -> Option<Val> {
                None
            }
        }
        let mut engine = LockStep::new(vec![NeverDecides; 3], 2, &[]);
        let status = engine.drive(u64::MAX);
        assert_eq!(
            status.stop,
            StopReason::SchedulerDone,
            "exhausting the rounds without decisions must not read as success"
        );
        assert!(!engine.done());
        assert!(engine.decisions().iter().all(Option::is_none));
        assert_eq!(engine.outcome().rounds, 2, "the scheduled rounds still ran");
    }

    #[test]
    fn observed_rounds_emit_typed_events() {
        use kset_sim::observe::EventCounter;

        // 3 processes, 2 rounds; p1 crashes in round 1 reaching only p2.
        let crash = RoundCrash {
            round: 1,
            pid: ProcessId::new(0),
            receivers: [ProcessId::new(1)].into(),
        };
        let mut engine = LockStep::new(vec![CountRound1 { heard: None }; 3], 2, &[crash]);
        let mut counter: EventCounter<Val> = EventCounter::new();
        let status = engine.drive_observed(u64::MAX, &mut counter);
        let counts = counter.counts();
        // Round 1: three senders × three destinations; round 2: two alive
        // senders × three destinations.
        assert_eq!(counts.sends, 9 + 6);
        // The crasher reached only its one chosen receiver: the other two
        // of its three round-1 sends are dropped.
        assert_eq!(counts.dropped, 2);
        assert_eq!(counts.transmitted(), 13);
        // Alive receivers consumed: round 1 → p2 heard 3, p3 heard 2;
        // round 2 → p2 and p3 heard 2 each.
        assert_eq!(counts.delivers, 3 + 2 + 2 + 2);
        assert_eq!(counts.rounds, 2);
        assert_eq!(counts.crashes, 1);
        assert_eq!(counts.decides, 2, "both survivors decide in round 1");
        assert_eq!(counts.halts, 1);
        assert_eq!(counts.steps, 0, "the round substrate emits no step events");
        let decided = counter.decisions_by_process();
        assert_eq!(decided.get(&ProcessId::new(1)), Some(&3));
        assert_eq!(decided.get(&ProcessId::new(2)), Some(&2));
        // The observed drive leaves the outcome identical to a plain one.
        let plain = run_sync(
            vec![CountRound1 { heard: None }; 3],
            2,
            &[RoundCrash {
                round: 1,
                pid: ProcessId::new(0),
                receivers: [ProcessId::new(1)].into(),
            }],
        );
        assert_eq!(engine.outcome().decisions, plain.decisions);
        assert_eq!(status.stop, StopReason::AllCorrectDecided);
    }

    #[test]
    fn trace_recorder_on_round_substrate_keeps_crash_history_only() {
        // A Trace is a step-substrate notion: attached to the round
        // executor, the recorder keeps the crash history and discards
        // each round's staged message records (bounded memory, no
        // half-assembled step records).
        use kset_sim::{Time, TraceRecorder};

        let crash = RoundCrash {
            round: 2,
            pid: ProcessId::new(1),
            receivers: ProcessSet::new(),
        };
        let mut engine = LockStep::new(vec![CountRound1 { heard: None }; 3], 3, &[crash]);
        let mut recorder: TraceRecorder<Val> = TraceRecorder::new(3);
        engine.drive_observed(u64::MAX, &mut recorder);
        let trace = recorder.into_trace();
        assert_eq!(trace.step_count(), 0, "no step records from rounds");
        let fp = trace.failure_pattern();
        assert_eq!(fp.faulty(), [ProcessId::new(1)].into());
        assert_eq!(fp.crash_time(ProcessId::new(1)), Some(Time::new(2)));
        assert_eq!(trace.events().len(), 1, "exactly the crash history");
    }

    #[test]
    fn batched_shape_errors_are_typed() {
        let empty: Vec<(Vec<CountRound1>, Vec<RoundCrash>)> = Vec::new();
        assert_eq!(
            BatchedLockStep::try_new(empty, 1).unwrap_err(),
            BatchError::Empty
        );
        let ragged = vec![
            (vec![CountRound1 { heard: None }; 3], Vec::new()),
            (vec![CountRound1 { heard: None }; 2], Vec::new()),
        ];
        assert_eq!(
            BatchedLockStep::try_new(ragged, 1).unwrap_err(),
            BatchError::ShapeMismatch {
                lane: 1,
                len: 2,
                n: 3
            }
        );
        let oversized = vec![(
            vec![CountRound1 { heard: None }; ProcessSet::CAPACITY + 1],
            Vec::new(),
        )];
        assert!(matches!(
            BatchedLockStep::try_new(oversized, 1).unwrap_err(),
            BatchError::Capacity(_)
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate crash")]
    fn batched_duplicate_crash_rejected() {
        let c = |round| RoundCrash {
            round,
            pid: ProcessId::new(0),
            receivers: ProcessSet::new(),
        };
        let lanes = vec![(vec![CountRound1 { heard: None }; 2], vec![c(1), c(2)])];
        let _ = BatchedLockStep::try_new(lanes, 2);
    }

    #[test]
    fn batched_lane_matches_observed_scalar_run() {
        use kset_sim::observe::EventCounter;

        // Three lanes sharing (n = 3, rounds = 2) with distinct crash
        // schedules, one of them crash-free.
        let schedules: Vec<Vec<RoundCrash>> = vec![
            Vec::new(),
            vec![RoundCrash {
                round: 1,
                pid: ProcessId::new(0),
                receivers: [ProcessId::new(1)].into(),
            }],
            vec![RoundCrash {
                round: 2,
                pid: ProcessId::new(2),
                receivers: ProcessSet::new(),
            }],
        ];
        let lanes = schedules
            .iter()
            .map(|cs| (vec![CountRound1 { heard: None }; 3], cs.clone()))
            .collect();
        let batched = run_sync_batch(lanes, 2).unwrap();
        assert_eq!(batched.len(), 3);
        for (lane, crashes) in schedules.iter().enumerate() {
            let mut engine = LockStep::new(vec![CountRound1 { heard: None }; 3], 2, crashes);
            let mut counter: EventCounter<Val> = EventCounter::new();
            engine.drive_observed(u64::MAX, &mut counter);
            let scalar = engine.outcome();
            let (out, counts) = &batched[lane];
            assert_eq!(out.decisions, scalar.decisions, "lane {lane} decisions");
            assert_eq!(out.crashed, scalar.crashed, "lane {lane} crash set");
            assert_eq!(out.rounds, scalar.rounds, "lane {lane} rounds");
            assert_eq!(*counts, counter.counts(), "lane {lane} event totals");
        }
    }

    #[test]
    fn batched_lanes_match_scalar_under_random_crash_schedules() {
        use kset_sim::observe::EventCounter;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(0x6a7c);
        for trial in 0..24u64 {
            let n = rng.gen_range(2..=9usize);
            let rounds = rng.gen_range(1..=4usize);
            let lanes: Vec<(Vec<CountRound1>, Vec<RoundCrash>)> = (0..rng.gen_range(1..=6usize))
                .map(|_| {
                    let f = rng.gen_range(0..n);
                    let mut pids: Vec<usize> = (0..n).collect();
                    let mut crashes = Vec::new();
                    for _ in 0..f {
                        let pid = pids.swap_remove(rng.gen_range(0..pids.len()));
                        let mut receivers = ProcessSet::new();
                        for dst in 0..n {
                            if rng.gen_bool(0.5) {
                                receivers.insert(ProcessId::new(dst));
                            }
                        }
                        crashes.push(RoundCrash {
                            round: rng.gen_range(1..=rounds),
                            pid: ProcessId::new(pid),
                            receivers,
                        });
                    }
                    (vec![CountRound1 { heard: None }; n], crashes)
                })
                .collect();
            let batched = run_sync_batch(lanes.clone(), rounds).unwrap();
            for (lane, (procs, crashes)) in lanes.into_iter().enumerate() {
                let mut engine = LockStep::new(procs, rounds, &crashes);
                let mut counter: EventCounter<Val> = EventCounter::new();
                engine.drive_observed(u64::MAX, &mut counter);
                let scalar = engine.outcome();
                let (out, counts) = &batched[lane];
                assert_eq!(
                    (out.decisions.clone(), out.crashed, out.rounds),
                    (scalar.decisions, scalar.crashed, scalar.rounds),
                    "trial {trial} lane {lane} outcome"
                );
                assert_eq!(*counts, counter.counts(), "trial {trial} lane {lane}");
            }
        }
    }

    #[test]
    fn distinct_count_agrees_with_distinct_decisions() {
        let out = SyncOutcome {
            decisions: vec![Some(3), None, Some(1), Some(3), Some(7), None, Some(1)],
            crashed: ProcessSet::new(),
            rounds: 1,
        };
        assert_eq!(out.distinct_count(), out.distinct_decisions().len());
        assert_eq!(out.distinct_count(), 3);
        // Spill path: more distinct values than the stack buffer holds.
        let wide = SyncOutcome {
            decisions: (0..100).map(|v| Some(v as Val)).collect(),
            crashed: ProcessSet::new(),
            rounds: 1,
        };
        assert_eq!(wide.distinct_count(), 100);
        let empty = SyncOutcome {
            decisions: vec![None; 4],
            crashed: ProcessSet::new(),
            rounds: 1,
        };
        assert_eq!(empty.distinct_count(), 0);
    }

    #[test]
    fn lockstep_engine_matches_run_sync() {
        let crash = RoundCrash {
            round: 1,
            pid: ProcessId::new(2),
            receivers: [ProcessId::new(0)].into(),
        };
        let direct = run_sync(
            vec![CountRound1 { heard: None }; 4],
            3,
            std::slice::from_ref(&crash),
        );
        let mut engine = LockStep::new(vec![CountRound1 { heard: None }; 4], 3, &[crash]);
        engine.drive(u64::MAX);
        let driven = engine.outcome();
        assert_eq!(direct.decisions, driven.decisions);
        assert_eq!(direct.crashed, driven.crashed);
        assert_eq!(direct.rounds, driven.rounds);
    }
}
