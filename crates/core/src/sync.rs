//! Lock-step synchronous rounds: the fully favourable DDS model point.
//!
//! The paper's impossibility (Theorem 2 / Corollary 5) lives at model points
//! with *asynchronous communication*. To exhibit the border it helps to also
//! implement the fully favourable point — synchronous processes **and**
//! synchronous communication — where classic round-based algorithms such as
//! FloodMin solve k-set agreement for any number of crash failures. This
//! module provides that substrate: a lock-step round executor with
//! mid-round crash injection (a crashing process delivers its round message
//! to an adversary-chosen subset of receivers, the synchronous analogue of
//! final-step send omission).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use kset_sim::ProcessId;

use crate::task::Val;

/// A per-round state machine for the synchronous executor.
pub trait RoundProcess: Clone + fmt::Debug {
    /// The round-message type.
    type Msg: Clone + fmt::Debug;

    /// The message this process broadcasts in round `r` (rounds are
    /// 1-based).
    fn message(&self, round: usize) -> Self::Msg;

    /// Receives the round-`r` messages (by sender; absent senders crashed
    /// or omitted) and updates the state.
    fn receive(&mut self, round: usize, msgs: &BTreeMap<ProcessId, Self::Msg>);

    /// The decision, if the process has decided.
    fn decision(&self) -> Option<Val>;
}

/// A crash scheduled in the synchronous executor: in round `round`, process
/// `pid` sends its round message only to `receivers` and then crashes.
#[derive(Debug, Clone)]
pub struct RoundCrash {
    /// The round in which the crash occurs (1-based).
    pub round: usize,
    /// The crashing process.
    pub pid: ProcessId,
    /// The receivers that still get the final round message.
    pub receivers: BTreeSet<ProcessId>,
}

/// Outcome of a synchronous execution.
#[derive(Debug, Clone)]
pub struct SyncOutcome {
    /// Per-process decisions.
    pub decisions: Vec<Option<Val>>,
    /// Which processes crashed during the execution.
    pub crashed: BTreeSet<ProcessId>,
    /// Rounds executed.
    pub rounds: usize,
}

impl SyncOutcome {
    /// The set of distinct decision values.
    pub fn distinct_decisions(&self) -> BTreeSet<Val> {
        self.decisions.iter().flatten().copied().collect()
    }
}

/// Runs `rounds` lock-step rounds of processes initialized by `init`,
/// applying the scheduled crashes.
///
/// # Panics
///
/// Panics if two crashes name the same process.
pub fn run_sync<P: RoundProcess>(
    mut procs: Vec<P>,
    rounds: usize,
    crashes: &[RoundCrash],
) -> SyncOutcome {
    let n = procs.len();
    {
        let mut seen = BTreeSet::new();
        for c in crashes {
            assert!(seen.insert(c.pid), "duplicate crash for {}", c.pid);
        }
    }
    let mut crashed: BTreeSet<ProcessId> = BTreeSet::new();
    for round in 1..=rounds {
        // Send phase: every alive process emits its round message; crashing
        // processes deliver to their chosen subset only.
        let mut inboxes: Vec<BTreeMap<ProcessId, P::Msg>> = vec![BTreeMap::new(); n];
        for (i, p) in procs.iter().enumerate() {
            let pid = ProcessId::new(i);
            if crashed.contains(&pid) {
                continue;
            }
            let msg = p.message(round);
            let crash_now = crashes.iter().find(|c| c.pid == pid && c.round == round);
            for dst in ProcessId::all(n) {
                let delivered = match crash_now {
                    Some(c) => c.receivers.contains(&dst),
                    None => true,
                };
                if delivered {
                    inboxes[dst.index()].insert(pid, msg.clone());
                }
            }
            if crash_now.is_some() {
                crashed.insert(pid);
            }
        }
        // Receive phase: every alive process consumes its round inbox.
        for (i, p) in procs.iter_mut().enumerate() {
            let pid = ProcessId::new(i);
            if crashed.contains(&pid) {
                continue;
            }
            p.receive(round, &inboxes[i]);
        }
    }
    SyncOutcome {
        decisions: procs.iter().map(RoundProcess::decision).collect(),
        crashed,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial echo: decides the number of senders heard in round 1.
    #[derive(Debug, Clone)]
    struct CountRound1 {
        heard: Option<usize>,
    }

    impl RoundProcess for CountRound1 {
        type Msg = ();

        fn message(&self, _round: usize) {}

        fn receive(&mut self, round: usize, msgs: &BTreeMap<ProcessId, ()>) {
            if round == 1 {
                self.heard = Some(msgs.len());
            }
        }

        fn decision(&self) -> Option<Val> {
            self.heard.map(|h| h as Val)
        }
    }

    #[test]
    fn all_alive_hear_everyone() {
        let procs = vec![CountRound1 { heard: None }; 3];
        let out = run_sync(procs, 1, &[]);
        assert_eq!(out.decisions, vec![Some(3), Some(3), Some(3)]);
        assert!(out.crashed.is_empty());
    }

    #[test]
    fn mid_round_crash_partitions_receivers() {
        // p1 crashes in round 1, reaching only p2.
        let procs = vec![CountRound1 { heard: None }; 3];
        let crash = RoundCrash {
            round: 1,
            pid: ProcessId::new(0),
            receivers: [ProcessId::new(1)].into(),
        };
        let out = run_sync(procs, 1, &[crash]);
        assert_eq!(out.decisions[1], Some(3), "p2 heard everyone incl. crasher");
        assert_eq!(out.decisions[2], Some(2), "p3 missed the crasher");
        assert_eq!(out.decisions[0], None, "crashed processes do not receive");
        assert_eq!(out.crashed, [ProcessId::new(0)].into());
    }

    #[test]
    fn crashed_process_sends_nothing_later() {
        let procs = vec![CountRound1 { heard: None }; 2];
        let crash = RoundCrash { round: 1, pid: ProcessId::new(0), receivers: BTreeSet::new() };
        let out = run_sync(procs, 2, &[crash]);
        assert_eq!(out.decisions[1], Some(1), "only its own message in round 1");
    }

    #[test]
    #[should_panic(expected = "duplicate crash")]
    fn duplicate_crash_rejected() {
        let procs = vec![CountRound1 { heard: None }; 2];
        let c = |round| RoundCrash { round, pid: ProcessId::new(0), receivers: BTreeSet::new() };
        let _ = run_sync(procs, 2, &[c(1), c(2)]);
    }
}
