//! Scenario adapters for the round-level substrate, and the differential
//! harness over both substrates.
//!
//! `kset-sim`'s [`Scenario`] is the declarative layer: one value that
//! compiles to either execution substrate. This module supplies the
//! round-level half and the machinery that makes the pair testable:
//!
//! * [`ScenarioRounds`] — round-based algorithms (FloodMin) constructible
//!   from a scenario; [`to_lockstep`] compiles a scenario to a
//!   [`LockStep`] executor (each [`ScenarioCrash`] becomes a [`RoundCrash`]
//!   verbatim, initially-dead processes become round-1 crashes that reach
//!   nobody).
//! * [`RoundAdapter`] — runs any round-based algorithm on the *step-level*
//!   substrate: local step `r` broadcasts the round-`r` message and local
//!   step `r + 1` consumes the round-`r` inbox, so under the scenario's
//!   lock-step schedule family the compiled [`Simulation`] is step-for-step
//!   equivalent to the round executor — and the step-level crash plan's
//!   final-step send omission lands exactly on the round message the
//!   round-level crash partially delivers.
//! * [`differential`] — drives both compilations of one scenario through
//!   the [`Engine`] trait and compares decisions, k-Agreement and
//!   termination, reporting divergences instead of panicking (under
//!   asynchronous schedule families divergence is the *expected* outcome —
//!   the paper's border, observed differentially).
//!
//! [`Simulation`]: kset_sim::Simulation
//! [`Engine`]: kset_sim::Engine
//! [`ScenarioCrash`]: kset_sim::ScenarioCrash

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use kset_sim::{
    Effects, Envelope, Process, ProcessInfo, ProcessSet, Scenario, ScenarioError, ScenarioProcess,
    SenderMap,
};

use crate::sync::{LockStep, RoundCrash, RoundProcess};
use crate::task::Val;

/// A round-based algorithm that can be instantiated from a [`Scenario`] —
/// the round-level counterpart of [`ScenarioProcess`].
pub trait ScenarioRounds: RoundProcess {
    /// Builds the system of round processes for `scenario` (one per
    /// process, running `scenario.rounds` rounds).
    fn scenario_system(scenario: &Scenario) -> Vec<Self>;
}

/// The round-level projection of a scenario's crash description: each
/// [`ScenarioCrash`](kset_sim::ScenarioCrash) maps verbatim via
/// [`RoundCrash::from_scenario_crash`], and every initially-dead process
/// becomes a round-1 crash delivering to nobody (it contributes nothing and
/// is marked crashed — exactly the step-level "never steps").
pub fn round_crashes(scenario: &Scenario) -> Vec<RoundCrash> {
    let mut crashes: Vec<RoundCrash> = scenario
        .initially_dead
        .iter()
        .map(|pid| RoundCrash {
            round: 1,
            pid,
            receivers: ProcessSet::new(),
        })
        .collect();
    crashes.extend(scenario.crashes.iter().map(RoundCrash::from_scenario_crash));
    crashes
}

/// Compiles a scenario to the round-level substrate: a [`LockStep`]
/// executor over `P`'s scenario system with the scenario's crash
/// description as round crashes. Drive it for `scenario.rounds` units.
///
/// # Errors
///
/// Returns the first [`ScenarioError`] of [`Scenario::validate`].
pub fn to_lockstep<P: ScenarioRounds>(scenario: &Scenario) -> Result<LockStep<P>, ScenarioError> {
    scenario.validate()?;
    Ok(LockStep::try_new(
        P::scenario_system(scenario),
        scenario.rounds,
        &round_crashes(scenario),
    )?)
}

/// A round message in flight on the step-level substrate: the payload plus
/// the round it belongs to, so the receiving adapter can slot late or early
/// deliveries into the right round inbox.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RoundMsg<M> {
    /// The 1-based round this message belongs to.
    pub round: usize,
    /// The algorithm's round message.
    pub payload: M,
}

/// Input of a [`RoundAdapter`] process: the pre-built round process and the
/// number of rounds it runs.
#[derive(Debug, Clone)]
pub struct RoundAdapterInput<P> {
    /// The initial round-process state.
    pub process: P,
    /// Total rounds to execute.
    pub rounds: usize,
}

/// Runs a [`RoundProcess`] on the step-level substrate.
///
/// Local step `s` first consumes the round-`s − 1` inbox (whatever has
/// arrived by then) and then broadcasts the round-`s` message, computed
/// from the post-receive state — the same data flow as one lock-step round.
/// Messages are tagged with their round and stashed until the adapter
/// reaches that round, so asynchronous schedules produce *some* execution
/// (with possibly incomplete inboxes) rather than a crash: divergence from
/// the round executor is then observable, which is what the differential
/// harness reports.
///
/// Under the lock-step schedule family (fair round-robin, eager delivery)
/// every round-`r` message is in the receiver's buffer before its step
/// `r + 1`, so the adapter's inboxes equal the round executor's and the two
/// substrates decide identically; `tests` and the repo-level conformance
/// suite assert this on the Theorem 8 border grid.
#[derive(Debug, Clone)]
pub struct RoundAdapter<P: RoundProcess> {
    inner: P,
    n: usize,
    total_rounds: usize,
    /// Completed local steps.
    steps: usize,
    /// Arrived-but-not-yet-consumed round messages, keyed by round.
    stash: BTreeMap<usize, Vec<(kset_sim::ProcessId, P::Msg)>>,
}

impl<P: RoundProcess> RoundAdapter<P> {
    /// Read access to the wrapped round process (for white-box tests).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The round whose message this adapter broadcasts next (1-based), or
    /// `None` once all rounds are sent.
    pub fn next_round(&self) -> Option<usize> {
        (self.steps < self.total_rounds).then_some(self.steps + 1)
    }
}

impl<P> Hash for RoundAdapter<P>
where
    P: RoundProcess + Hash,
    P::Msg: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
        self.n.hash(state);
        self.total_rounds.hash(state);
        self.steps.hash(state);
        self.stash.hash(state);
    }
}

impl<P> Process for RoundAdapter<P>
where
    P: RoundProcess + Hash + 'static,
    P::Msg: PartialEq + Hash + 'static,
{
    type Msg = RoundMsg<P::Msg>;
    type Input = RoundAdapterInput<P>;
    type Output = Val;
    type Fd = ();

    fn init(info: ProcessInfo, input: RoundAdapterInput<P>) -> Self {
        RoundAdapter {
            inner: input.process,
            n: info.n,
            total_rounds: input.rounds,
            steps: 0,
            stash: BTreeMap::new(),
        }
    }

    fn step(
        &mut self,
        delivered: &[Envelope<RoundMsg<P::Msg>>],
        _fd: Option<&()>,
        effects: &mut Effects<RoundMsg<P::Msg>, Val>,
    ) {
        for env in delivered {
            self.stash
                .entry(env.payload.round)
                .or_default()
                .push((env.src, env.payload.payload.clone()));
        }
        self.steps += 1;
        // Receive the previous round with whatever arrived by now.
        if self.steps >= 2 && self.steps - 1 <= self.total_rounds {
            let round = self.steps - 1;
            let mut inbox: SenderMap<P::Msg> = SenderMap::with_capacity(self.n);
            for (src, msg) in self.stash.remove(&round).unwrap_or_default() {
                inbox.insert(src, msg);
            }
            self.inner.receive(round, &inbox);
        }
        // Send this round's message, computed from the post-receive state.
        // A scenario crash after `round` local steps therefore omits
        // exactly the round-`round` broadcast — the mid-round partial
        // delivery of the lock-step executor.
        if self.steps <= self.total_rounds {
            effects.broadcast(RoundMsg {
                round: self.steps,
                payload: self.inner.message(self.steps),
            });
        }
        if let Some(v) = self.inner.decision() {
            effects.decide(v);
        }
    }
}

impl<P> ScenarioProcess for RoundAdapter<P>
where
    P: ScenarioRounds + Hash + 'static,
    P::Msg: PartialEq + Hash + 'static,
{
    fn scenario_inputs(scenario: &Scenario) -> Vec<RoundAdapterInput<P>> {
        P::scenario_system(scenario)
            .into_iter()
            .map(|process| RoundAdapterInput {
                process,
                rounds: scenario.rounds,
            })
            .collect()
    }
}

/// Differential conformance between the compilations of one scenario —
/// step-level, round-level, and discrete-event.
pub mod differential {
    use std::collections::BTreeSet;
    use std::hash::Hash;

    use kset_sim::observe::{NoObserver, Observer};
    use kset_sim::{Engine, ProcessId, Scenario, ScenarioError};

    use super::{to_lockstep, RoundAdapter, ScenarioRounds};
    use crate::task::Val;

    /// What one substrate produced for a scenario.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SubstrateOutcome {
        /// Per-process decisions.
        pub decisions: Vec<Option<Val>>,
        /// The distinct decision values — the quantity k-Agreement bounds.
        pub distinct: BTreeSet<Val>,
        /// Whether every correct process (under the scenario's crash
        /// description) decided.
        pub terminated: bool,
        /// Engine units executed (steps or rounds).
        pub units: u64,
    }

    impl SubstrateOutcome {
        /// Whether the outcome satisfies k-Agreement for the given `k`.
        pub fn k_agreement(&self, k: usize) -> bool {
            self.distinct.len() <= k
        }
    }

    /// One observed disagreement between the substrates.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Divergence {
        /// The substrates decided different value sets (the sets
        /// themselves are recorded — equal cardinalities can still
        /// diverge).
        DistinctValues {
            /// Distinct decisions on the step-level substrate.
            sim: BTreeSet<Val>,
            /// Distinct decisions on the round-level substrate.
            lockstep: BTreeSet<Val>,
        },
        /// A correct process decided differently (or only on one side).
        Decision {
            /// The diverging process.
            pid: ProcessId,
            /// Its step-level decision.
            sim: Option<Val>,
            /// Its round-level decision.
            lockstep: Option<Val>,
        },
        /// Only one substrate terminated (all correct decided).
        Termination {
            /// Step-level termination verdict.
            sim: bool,
            /// Round-level termination verdict.
            lockstep: bool,
        },
        /// The substrates disagree on whether k-Agreement holds.
        KAgreement {
            /// The scenario's agreement degree.
            k: usize,
            /// Step-level verdict.
            sim: bool,
            /// Round-level verdict.
            lockstep: bool,
        },
        /// The discrete-event substrate decided different value sets than
        /// the round-level reference.
        DesDistinctValues {
            /// Distinct decisions on the discrete-event substrate.
            des: BTreeSet<Val>,
            /// Distinct decisions on the round-level substrate.
            lockstep: BTreeSet<Val>,
        },
        /// A correct process decided differently on the discrete-event
        /// substrate than on the round-level reference.
        DesDecision {
            /// The diverging process.
            pid: ProcessId,
            /// Its discrete-event decision.
            des: Option<Val>,
            /// Its round-level decision.
            lockstep: Option<Val>,
        },
        /// Only one of discrete-event and round-level terminated.
        DesTermination {
            /// Discrete-event termination verdict.
            des: bool,
            /// Round-level termination verdict.
            lockstep: bool,
        },
        /// Discrete-event and round-level disagree on k-Agreement.
        DesKAgreement {
            /// The scenario's agreement degree.
            k: usize,
            /// Discrete-event verdict.
            des: bool,
            /// Round-level verdict.
            lockstep: bool,
        },
    }

    /// The full differential report for one scenario.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct DiffReport {
        /// System size.
        pub n: usize,
        /// Failure budget.
        pub f: usize,
        /// Agreement degree.
        pub k: usize,
        /// Whether the scenario ran under the lock-step schedule family —
        /// the only family under which agreement is *guaranteed*.
        pub lock_step_family: bool,
        /// The step-level outcome.
        pub sim: SubstrateOutcome,
        /// The round-level outcome.
        pub lockstep: SubstrateOutcome,
        /// The discrete-event outcome (the unit→time embedding of the
        /// scenario's schedule family).
        pub des: SubstrateOutcome,
        /// Every observed disagreement (empty = substrates agree). Both
        /// pairings are recorded: step-vs-round in the `sim`-carrying
        /// variants, discrete-event-vs-round in the `Des*` variants.
        pub divergences: Vec<Divergence>,
    }

    impl DiffReport {
        /// Whether the two substrates produced equivalent runs.
        pub fn agrees(&self) -> bool {
            self.divergences.is_empty()
        }
    }

    /// Compiles `scenario` to all three substrates — step-level, round
    /// executor, and the discrete-event engine's unit→time embedding —
    /// drives each through the [`Engine`] trait, and compares decision
    /// values, per-process decisions of correct processes, k-Agreement,
    /// and termination (each non-reference substrate against the
    /// round-level reference).
    ///
    /// Divergence is *reported*, never fatal: under asynchronous schedule
    /// families the step-level run legitimately sees incomplete round
    /// inboxes and the report flags the resulting disagreements. The
    /// embedded discrete-event run replays the step-level schedule
    /// exactly, so its divergences always mirror the step substrate's.
    ///
    /// The natively timed family
    /// ([`ScheduleFamily::Timed`](kset_sim::ScheduleFamily)) has no
    /// step-level compilation, so `check` rejects it — compare a timed
    /// run against the round executor directly (see
    /// `tests/scenario_differential.rs`).
    ///
    /// # Errors
    ///
    /// Returns the scenario's first [`ScenarioError`] if it fails
    /// validation or compilation (the same error both compilers raise).
    pub fn check<P>(scenario: &Scenario) -> Result<DiffReport, ScenarioError>
    where
        P: ScenarioRounds + Hash + 'static,
        P::Msg: PartialEq + Hash + 'static,
    {
        check_observed::<P>(scenario, &mut NoObserver, &mut NoObserver, &mut NoObserver)
    }

    /// As [`check`], with one observer attached to each substrate's run —
    /// the same scenario, the same drives, every event reported. This is
    /// how observation itself is conformance-tested: an
    /// [`EventCounter`](kset_sim::observe::EventCounter) on each side must
    /// agree on transmitted sends, decisions and crashes under the
    /// lock-step family (see `tests/scenario_differential.rs`).
    ///
    /// # Errors
    ///
    /// As [`check`].
    pub fn check_observed<P>(
        scenario: &Scenario,
        sim_obs: &mut dyn Observer<Val>,
        lockstep_obs: &mut dyn Observer<Val>,
        des_obs: &mut dyn Observer<Val>,
    ) -> Result<DiffReport, ScenarioError>
    where
        P: ScenarioRounds + Hash + 'static,
        P::Msg: PartialEq + Hash + 'static,
    {
        let correct = scenario.faulty().complement(scenario.n);

        let mut sim_engine = scenario.to_sim::<RoundAdapter<P>>()?;
        sim_engine.drive_observed(scenario.max_units, sim_obs);
        let sim = outcome(&sim_engine, correct);

        let mut lockstep_engine = to_lockstep::<P>(scenario)?;
        lockstep_engine.drive_observed(scenario.rounds as u64, lockstep_obs);
        let lockstep = outcome(&lockstep_engine, correct);

        let mut des_engine = scenario.to_des::<RoundAdapter<P>>()?;
        des_engine.drive_observed(scenario.max_units, des_obs);
        let des = outcome(&des_engine, correct);

        let mut divergences = Vec::new();
        if sim.distinct != lockstep.distinct {
            divergences.push(Divergence::DistinctValues {
                sim: sim.distinct.clone(),
                lockstep: lockstep.distinct.clone(),
            });
        }
        for pid in correct {
            let (s, l) = (sim.decisions[pid.index()], lockstep.decisions[pid.index()]);
            if s != l {
                divergences.push(Divergence::Decision {
                    pid,
                    sim: s,
                    lockstep: l,
                });
            }
        }
        if sim.terminated != lockstep.terminated {
            divergences.push(Divergence::Termination {
                sim: sim.terminated,
                lockstep: lockstep.terminated,
            });
        }
        let (ka_sim, ka_lock) = (
            sim.k_agreement(scenario.k),
            lockstep.k_agreement(scenario.k),
        );
        if ka_sim != ka_lock {
            divergences.push(Divergence::KAgreement {
                k: scenario.k,
                sim: ka_sim,
                lockstep: ka_lock,
            });
        }

        // The same four checks for the discrete-event compilation against
        // the round-level reference.
        if des.distinct != lockstep.distinct {
            divergences.push(Divergence::DesDistinctValues {
                des: des.distinct.clone(),
                lockstep: lockstep.distinct.clone(),
            });
        }
        for pid in correct {
            let (d, l) = (des.decisions[pid.index()], lockstep.decisions[pid.index()]);
            if d != l {
                divergences.push(Divergence::DesDecision {
                    pid,
                    des: d,
                    lockstep: l,
                });
            }
        }
        if des.terminated != lockstep.terminated {
            divergences.push(Divergence::DesTermination {
                des: des.terminated,
                lockstep: lockstep.terminated,
            });
        }
        let ka_des = des.k_agreement(scenario.k);
        if ka_des != ka_lock {
            divergences.push(Divergence::DesKAgreement {
                k: scenario.k,
                des: ka_des,
                lockstep: ka_lock,
            });
        }

        Ok(DiffReport {
            n: scenario.n,
            f: scenario.f,
            k: scenario.k,
            lock_step_family: scenario.is_lock_step(),
            sim,
            lockstep,
            des,
            divergences,
        })
    }

    fn outcome<E: Engine<Output = Val>>(
        engine: &E,
        correct: kset_sim::ProcessSet,
    ) -> SubstrateOutcome {
        let decisions = engine.decisions();
        let distinct = engine.distinct_decisions();
        let terminated = correct.iter().all(|p| decisions[p.index()].is_some());
        SubstrateOutcome {
            decisions,
            distinct,
            terminated,
            units: engine.units(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::floodmin::FloodMin;
    use kset_sim::{Engine, ProcessId, ScenarioCrash, ScheduleFamily};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn round_crashes_cover_initially_dead_and_scheduled() {
        let sc = Scenario::favourable(5, 2, 1)
            .with_initially_dead(pid(4))
            .with_crash(ScenarioCrash {
                pid: pid(0),
                round: 2,
                receivers: [pid(1)].into(),
            });
        let crashes = round_crashes(&sc);
        assert_eq!(crashes.len(), 2);
        assert_eq!((crashes[0].pid, crashes[0].round), (pid(4), 1));
        assert!(crashes[0].receivers.is_empty());
        assert_eq!((crashes[1].pid, crashes[1].round), (pid(0), 2));
        assert_eq!(crashes[1].receivers, [pid(1)].into());
    }

    #[test]
    fn lockstep_compilation_runs_floodmin() {
        let sc = Scenario::favourable(4, 1, 1).with_crash(ScenarioCrash {
            pid: pid(0),
            round: 1,
            receivers: [pid(1)].into(),
        });
        let mut engine = to_lockstep::<FloodMin>(&sc).expect("valid scenario");
        engine.drive(sc.rounds as u64);
        let out = engine.outcome();
        assert_eq!(out.rounds, sc.rounds);
        assert!(out.distinct_decisions().len() <= sc.k);
        assert_eq!(out.crashed, [pid(0)].into());
    }

    #[test]
    fn adapter_equals_lockstep_on_a_crashy_scenario() {
        // The core equivalence, white-box: same scenario, both substrates,
        // identical per-process decisions.
        let sc = Scenario::favourable(5, 3, 1)
            .with_initially_dead(pid(4))
            .with_crash(ScenarioCrash {
                pid: pid(0),
                round: 1,
                receivers: [pid(1)].into(),
            })
            .with_crash(ScenarioCrash {
                pid: pid(1),
                round: 2,
                receivers: [pid(2)].into(),
            });
        let report = differential::check::<FloodMin>(&sc).expect("valid scenario");
        assert!(
            report.agrees(),
            "lock-step family must agree: {:?}",
            report.divergences
        );
        assert!(report.sim.terminated && report.lockstep.terminated);
        assert_eq!(report.sim.decisions, report.lockstep.decisions);
        assert!(report.sim.k_agreement(sc.k));
    }

    #[test]
    fn adapter_next_round_tracks_steps() {
        let sc = Scenario::favourable(3, 1, 1);
        let mut engine = sc
            .to_sim::<RoundAdapter<FloodMin>>()
            .expect("valid scenario");
        // Before any step, every adapter is about to send round 1.
        assert_eq!(
            engine.simulation().state(pid(0)).next_round(),
            Some(1),
            "rounds are 1-based"
        );
        engine.drive(sc.max_units);
        assert!(engine.done(), "favourable scenarios terminate");
        assert_eq!(engine.simulation().state(pid(0)).next_round(), None);
        assert!(engine
            .simulation()
            .state(pid(0))
            .inner()
            .decision()
            .is_some());
    }

    #[test]
    fn async_family_reports_divergence_not_panic() {
        // Under an asynchronous schedule the adapter consumes incomplete
        // round inboxes; the report must carry the disagreement.
        let sc = Scenario::favourable(5, 3, 1)
            .with_crash(ScenarioCrash {
                pid: pid(0),
                round: 1,
                receivers: [pid(1)].into(),
            })
            .with_crash(ScenarioCrash {
                pid: pid(1),
                round: 2,
                receivers: [pid(2)].into(),
            })
            .with_crash(ScenarioCrash {
                pid: pid(2),
                round: 3,
                receivers: [pid(3)].into(),
            })
            .with_schedule(ScheduleFamily::Async {
                seed: 11,
                deliver_percent: 25,
                fairness_window: 4,
            });
        let report = differential::check::<FloodMin>(&sc).expect("divergence is not an error");
        assert!(!report.lock_step_family);
        // The lock-step side still satisfies consensus; whatever the async
        // side did, the report reflects it without panicking.
        assert!(report.lockstep.k_agreement(1));
        assert!(report.lockstep.terminated);
    }
}
