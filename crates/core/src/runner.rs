//! Convenience runners: one-liners for the common (algorithm, scheduler,
//! crash plan) combinations used by tests, examples, and the experiment
//! harness.
//!
//! Every helper builds a [`SimEngine`] — the step-level substrate behind
//! the unified [`Engine`] trait — and drives it to completion, so the same
//! execution path serves one-off runs here and the Engine-generic harness
//! code in `kset-bench`. [`run_engine`] is the substrate-agnostic core:
//! it accepts *any* engine (the simulator or the lock-step executor of
//! [`crate::sync::LockStep`]).

use kset_sim::observe::Observer;
use kset_sim::sched::partition::{PartitionScheduler, ReleasePolicy};
use kset_sim::sched::random::SeededRandom;
use kset_sim::sched::round_robin::RoundRobin;
use kset_sim::sched::Scheduler;
use kset_sim::{
    CrashPlan, Engine, NoOracle, Oracle, Process, ProcessSet, RunReport, RunStatus, Scenario,
    ScenarioError, ScenarioProcess, SimEngine, Simulation,
};

use crate::scenario::{to_lockstep, ScenarioRounds};
use crate::sync::SyncOutcome;
use crate::task::Val;

/// Drives any [`Engine`] to completion and returns its status — the
/// substrate-agnostic execution entry point.
pub fn run_engine<E: Engine>(engine: &mut E, max_units: u64) -> RunStatus {
    engine.drive(max_units)
}

/// Drives any [`Engine`] to completion, reporting every run event to
/// `obs` — the observed form of [`run_engine`], and the one entry point
/// through which runners, the differential harness and the sweep workers
/// thread observers over *either* substrate.
pub fn run_engine_observed<E: Engine>(
    engine: &mut E,
    max_units: u64,
    obs: &mut dyn Observer<E::Output>,
) -> RunStatus {
    engine.drive_observed(max_units, obs)
}

/// Compiles a scenario to the step-level substrate and drives it to
/// completion with `obs` attached — [`run_scenario_sim`] observed.
///
/// # Errors
///
/// Returns the scenario's first [`ScenarioError`] if it fails validation.
pub fn run_scenario_sim_observed<P: ScenarioProcess>(
    scenario: &Scenario,
    obs: &mut dyn Observer<P::Output>,
) -> Result<RunReport<P::Output>, ScenarioError> {
    let mut engine = scenario.to_sim::<P>()?;
    let status = run_engine_observed(&mut engine, scenario.max_units, obs);
    Ok(engine.report(status.stop))
}

/// Compiles a scenario to the round-level substrate and runs its scheduled
/// rounds with `obs` attached — [`run_scenario_lockstep`] observed.
///
/// # Errors
///
/// Returns the scenario's first [`ScenarioError`] if it fails validation.
pub fn run_scenario_lockstep_observed<P: ScenarioRounds>(
    scenario: &Scenario,
    obs: &mut dyn Observer<Val>,
) -> Result<SyncOutcome, ScenarioError> {
    let mut engine = to_lockstep::<P>(scenario)?;
    run_engine_observed(&mut engine, scenario.rounds as u64, obs);
    Ok(engine.outcome())
}

/// Compiles a scenario to the discrete-event substrate and drives it to
/// completion with `obs` attached — [`run_scenario_des`] observed.
///
/// # Errors
///
/// Returns the scenario's first [`ScenarioError`] if it fails validation.
pub fn run_scenario_des_observed<P: ScenarioProcess>(
    scenario: &Scenario,
    obs: &mut dyn Observer<P::Output>,
) -> Result<RunReport<P::Output>, ScenarioError> {
    let mut engine = scenario.to_des::<P>()?;
    let status = run_engine_observed(&mut engine, scenario.max_units, obs);
    Ok(engine.report(status.stop))
}

/// Compiles a scenario to the discrete-event substrate
/// ([`kset_sim::des::DesEngine`]) and drives it to completion within the
/// scenario's unit budget: the timed family runs natively, every other
/// family through the unit→time embedding.
///
/// # Errors
///
/// Returns the scenario's first [`ScenarioError`] if it fails validation.
pub fn run_scenario_des<P: ScenarioProcess>(
    scenario: &Scenario,
) -> Result<RunReport<P::Output>, ScenarioError> {
    let mut engine = scenario.to_des::<P>()?;
    Ok(engine.drive_to_report(scenario.max_units))
}

/// Compiles a scenario to the step-level substrate and drives it to
/// completion within the scenario's unit budget.
///
/// # Errors
///
/// Returns the scenario's first [`ScenarioError`] if it fails validation.
pub fn run_scenario_sim<P: ScenarioProcess>(
    scenario: &Scenario,
) -> Result<RunReport<P::Output>, ScenarioError> {
    let mut engine = scenario.to_sim::<P>()?;
    Ok(engine.drive_to_report(scenario.max_units))
}

/// Compiles a scenario to the round-level substrate and runs its scheduled
/// rounds.
///
/// # Errors
///
/// Returns the scenario's first [`ScenarioError`] if it fails validation.
pub fn run_scenario_lockstep<P: ScenarioRounds>(
    scenario: &Scenario,
) -> Result<SyncOutcome, ScenarioError> {
    let mut engine = to_lockstep::<P>(scenario)?;
    engine.drive(scenario.rounds as u64);
    Ok(engine.outcome())
}

/// Builds the [`SimEngine`] for an oracle-backed algorithm and scheduler.
pub fn engine_with_oracle<P, O, S>(
    inputs: Vec<P::Input>,
    oracle: O,
    plan: CrashPlan,
    sched: S,
) -> SimEngine<P, O, S>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
    S: Scheduler<P::Msg>,
{
    // kset-lint: allow(unchecked-capacity): convenience builder mirroring Simulation::with_oracle's documented panicking contract for oversized input vectors
    SimEngine::new(Simulation::with_oracle(inputs, oracle, plan), sched)
}

fn drive_to_report<P, O, S>(mut engine: SimEngine<P, O, S>, max_steps: u64) -> RunReport<P::Output>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
    S: Scheduler<P::Msg>,
{
    let status = run_engine(&mut engine, max_steps);
    engine.report(status.stop)
}

/// Runs an oracle-less algorithm under fair round-robin scheduling.
pub fn run_round_robin<P>(
    inputs: Vec<P::Input>,
    plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process<Fd = ()>,
{
    drive_to_report(
        engine_with_oracle::<P, _, _>(inputs, NoOracle, plan, RoundRobin::new()),
        max_steps,
    )
}

/// Runs an oracle-less algorithm under seeded random scheduling.
pub fn run_seeded<P>(
    inputs: Vec<P::Input>,
    plan: CrashPlan,
    seed: u64,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process<Fd = ()>,
{
    let sched = SeededRandom::new(seed).with_fairness_window(16);
    drive_to_report(
        engine_with_oracle::<P, _, _>(inputs, NoOracle, plan, sched),
        max_steps,
    )
}

/// Runs an algorithm with a failure-detector oracle under round-robin.
pub fn run_round_robin_with_oracle<P, O>(
    inputs: Vec<P::Input>,
    oracle: O,
    plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    drive_to_report(
        engine_with_oracle::<P, _, _>(inputs, oracle, plan, RoundRobin::new()),
        max_steps,
    )
}

/// Runs an algorithm with a failure-detector oracle under seeded random
/// scheduling.
pub fn run_seeded_with_oracle<P, O>(
    inputs: Vec<P::Input>,
    oracle: O,
    plan: CrashPlan,
    seed: u64,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let sched = SeededRandom::new(seed).with_fairness_window(16);
    drive_to_report(
        engine_with_oracle::<P, _, _>(inputs, oracle, plan, sched),
        max_steps,
    )
}

/// Runs an oracle-less algorithm under the partitioning adversary: messages
/// between blocks are delayed until every alive process decided, then
/// delivered.
pub fn run_partitioned<P>(
    inputs: Vec<P::Input>,
    blocks: Vec<ProcessSet>,
    plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process<Fd = ()>,
{
    let sched = PartitionScheduler::new(blocks, ReleasePolicy::AfterAllDecided);
    drive_to_report(
        engine_with_oracle::<P, _, _>(inputs, NoOracle, plan, sched),
        max_steps,
    )
}

/// As [`run_partitioned`], with an oracle.
pub fn run_partitioned_with_oracle<P, O>(
    inputs: Vec<P::Input>,
    oracle: O,
    blocks: Vec<ProcessSet>,
    plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let sched = PartitionScheduler::new(blocks, ReleasePolicy::AfterAllDecided);
    drive_to_report(
        engine_with_oracle::<P, _, _>(inputs, oracle, plan, sched),
        max_steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive::DecideOwn;
    use crate::algorithms::two_stage::{two_stage_inputs, TwoStage};
    use crate::task::distinct_proposals;
    use kset_sim::ProcessId;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn round_robin_runner_works() {
        let report = run_round_robin::<DecideOwn>(distinct_proposals(3), CrashPlan::none(), 100);
        assert!(report.all_correct_decided());
    }

    #[test]
    fn seeded_runner_is_reproducible() {
        let a = run_seeded::<TwoStage>(
            two_stage_inputs(2, &distinct_proposals(4)),
            CrashPlan::none(),
            7,
            100_000,
        );
        let b = run_seeded::<TwoStage>(
            two_stage_inputs(2, &distinct_proposals(4)),
            CrashPlan::none(),
            7,
            100_000,
        );
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn partitioned_runner_isolates_blocks() {
        // Two-stage with L = 2 under a {p1,p2} | {p3,p4} partition: each
        // block decides among its own values.
        let n = 4;
        let blocks: Vec<ProcessSet> = vec![[pid(0), pid(1)].into(), [pid(2), pid(3)].into()];
        let report = run_partitioned::<TwoStage>(
            two_stage_inputs(2, &distinct_proposals(n)),
            blocks,
            CrashPlan::none(),
            100_000,
        );
        assert!(report.all_correct_decided());
        assert_eq!(report.decisions[0], Some(0));
        assert_eq!(report.decisions[2], Some(2));
        assert_eq!(report.distinct_decisions.len(), 2);
    }

    #[test]
    fn engine_runner_is_substrate_agnostic() {
        // The same run_engine entry point drives both substrates.
        use crate::algorithms::floodmin::{floodmin_rounds, FloodMin};
        use crate::sync::LockStep;
        use kset_sim::sched::round_robin::RoundRobin;
        use kset_sim::{SimEngine, Simulation, StopReason};

        let mut sim_engine = SimEngine::new(
            Simulation::<DecideOwn, _>::new(distinct_proposals(3), CrashPlan::none()),
            RoundRobin::new(),
        );
        let status = run_engine(&mut sim_engine, 100);
        assert_eq!(status.stop, StopReason::AllCorrectDecided);

        let procs = FloodMin::system(&distinct_proposals(3), 0, 1);
        let mut lockstep = LockStep::new(procs, floodmin_rounds(0, 1), &[]);
        let status = run_engine(&mut lockstep, 100);
        assert_eq!(status.stop, StopReason::AllCorrectDecided);
        assert_eq!(lockstep.distinct_decisions().len(), 1);
    }
}
