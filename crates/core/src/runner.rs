//! Convenience runners: one-liners for the common (algorithm, scheduler,
//! crash plan) combinations used by tests, examples, and the experiment
//! harness.

use std::collections::BTreeSet;

use kset_sim::sched::partition::{PartitionScheduler, ReleasePolicy};
use kset_sim::sched::random::SeededRandom;
use kset_sim::sched::round_robin::RoundRobin;
use kset_sim::{CrashPlan, NoOracle, Oracle, Process, ProcessId, RunReport, Simulation};

/// Runs an oracle-less algorithm under fair round-robin scheduling.
pub fn run_round_robin<P>(
    inputs: Vec<P::Input>,
    plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process<Fd = ()>,
{
    let mut sim: Simulation<P, NoOracle> = Simulation::new(inputs, plan);
    sim.run_to_report(&mut RoundRobin::new(), max_steps)
}

/// Runs an oracle-less algorithm under seeded random scheduling.
pub fn run_seeded<P>(
    inputs: Vec<P::Input>,
    plan: CrashPlan,
    seed: u64,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process<Fd = ()>,
{
    let mut sim: Simulation<P, NoOracle> = Simulation::new(inputs, plan);
    let mut sched = SeededRandom::new(seed).with_fairness_window(16);
    sim.run_to_report(&mut sched, max_steps)
}

/// Runs an algorithm with a failure-detector oracle under round-robin.
pub fn run_round_robin_with_oracle<P, O>(
    inputs: Vec<P::Input>,
    oracle: O,
    plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let mut sim: Simulation<P, O> = Simulation::with_oracle(inputs, oracle, plan);
    sim.run_to_report(&mut RoundRobin::new(), max_steps)
}

/// Runs an algorithm with a failure-detector oracle under seeded random
/// scheduling.
pub fn run_seeded_with_oracle<P, O>(
    inputs: Vec<P::Input>,
    oracle: O,
    plan: CrashPlan,
    seed: u64,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let mut sim: Simulation<P, O> = Simulation::with_oracle(inputs, oracle, plan);
    let mut sched = SeededRandom::new(seed).with_fairness_window(16);
    sim.run_to_report(&mut sched, max_steps)
}

/// Runs an oracle-less algorithm under the partitioning adversary: messages
/// between blocks are delayed until every alive process decided, then
/// delivered.
pub fn run_partitioned<P>(
    inputs: Vec<P::Input>,
    blocks: Vec<BTreeSet<ProcessId>>,
    plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process<Fd = ()>,
{
    let mut sim: Simulation<P, NoOracle> = Simulation::new(inputs, plan);
    let mut sched = PartitionScheduler::new(blocks, ReleasePolicy::AfterAllDecided);
    sim.run_to_report(&mut sched, max_steps)
}

/// As [`run_partitioned`], with an oracle.
pub fn run_partitioned_with_oracle<P, O>(
    inputs: Vec<P::Input>,
    oracle: O,
    blocks: Vec<BTreeSet<ProcessId>>,
    plan: CrashPlan,
    max_steps: u64,
) -> RunReport<P::Output>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let mut sim: Simulation<P, O> = Simulation::with_oracle(inputs, oracle, plan);
    let mut sched = PartitionScheduler::new(blocks, ReleasePolicy::AfterAllDecided);
    sim.run_to_report(&mut sched, max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive::DecideOwn;
    use crate::algorithms::two_stage::{two_stage_inputs, TwoStage};
    use crate::task::distinct_proposals;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn round_robin_runner_works() {
        let report =
            run_round_robin::<DecideOwn>(distinct_proposals(3), CrashPlan::none(), 100);
        assert!(report.all_correct_decided());
    }

    #[test]
    fn seeded_runner_is_reproducible() {
        let a = run_seeded::<TwoStage>(
            two_stage_inputs(2, &distinct_proposals(4)),
            CrashPlan::none(),
            7,
            100_000,
        );
        let b = run_seeded::<TwoStage>(
            two_stage_inputs(2, &distinct_proposals(4)),
            CrashPlan::none(),
            7,
            100_000,
        );
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn partitioned_runner_isolates_blocks() {
        // Two-stage with L = 2 under a {p1,p2} | {p3,p4} partition: each
        // block decides among its own values.
        let n = 4;
        let blocks: Vec<BTreeSet<ProcessId>> =
            vec![[pid(0), pid(1)].into(), [pid(2), pid(3)].into()];
        let report = run_partitioned::<TwoStage>(
            two_stage_inputs(2, &distinct_proposals(n)),
            blocks,
            CrashPlan::none(),
            100_000,
        );
        assert!(report.all_correct_decided());
        assert_eq!(report.decisions[0], Some(0));
        assert_eq!(report.decisions[2], Some(2));
        assert_eq!(report.distinct_decisions.len(), 2);
    }
}
