//! Catalog-backed fleet conformance: the chaos gate the CI workflow
//! (`sweep-fleet.yml`) re-proves with real processes, run here in-process
//! (plus one real-process SIGKILL variant) so `cargo test` alone certifies
//! the property: under worker churn, the merged fleet output of a catalog
//! grid is byte-identical to `sweep --seq` of the same grid.
//!
//! The synthetic-grid equivalents (torn lines, hangs, resume) live in
//! `crates/sim/tests/fleet_conformance.rs`; these tests pay for real
//! simulation to pin the *catalog* path end-to-end.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Command, Stdio};
use std::time::Duration;

use kset_bench::fleet::{catalog_source, grid_id};
use kset_bench::sweeps;
use kset_sim::fleet::{
    run_worker, Coordinator, CoordinatorConfig, FleetCounter, FleetCounts, FleetError, GridId,
    LeaseParams, WorkerConfig,
};
use kset_sim::sweep::record::ShardFile;
use kset_sim::sweep::{cell_seed, ShardSpec};

fn reference_bytes(name: &str, grid_seed: u64) -> String {
    let grid = sweeps::grid(name, grid_seed).expect("catalog grid");
    ShardFile {
        header: grid.header(ShardSpec::FULL),
        records: grid.sweep_sequential(),
    }
    .render()
}

fn test_config() -> CoordinatorConfig {
    CoordinatorConfig {
        lease: LeaseParams {
            cells: 3,
            // Generous on purpose: catalog cells run REAL simulation, and a
            // deadline shorter than the slowest cell livelocks the sweep
            // (the lease expires mid-compute, the progress arrives stale,
            // the reassignment expires the same way). Crashed workers in
            // these tests are recovered by EOF, which is immediate; the
            // deadline only backstops silent hangs.
            timeout: Duration::from_secs(10),
        },
        poll: Duration::from_millis(2),
    }
}

/// Runs an in-process coordinator for `id` and hands `drive` the bound
/// address; returns the streamed bytes and the final counts.
fn run_fleet(id: &GridId, drive: impl FnOnce(SocketAddr)) -> (String, FleetCounts) {
    let coordinator =
        Coordinator::bind("127.0.0.1:0", id.clone(), Vec::new(), test_config()).expect("bind");
    let addr = coordinator.local_addr().expect("local_addr");
    std::thread::scope(|scope| {
        let run = scope.spawn(move || {
            let mut counter = FleetCounter::default();
            let mut out = String::new();
            let (file, counts) = coordinator
                .run(&mut counter, |chunk| out.push_str(chunk))
                .expect("fleet run");
            assert_eq!(out, file.render(), "streamed bytes == certified render");
            (out, counts)
        });
        drive(addr);
        run.join().expect("coordinator thread")
    })
}

/// The worker-side tolerance: a worker that outlives completion may see
/// the coordinator hang up instead of a polite fin.
fn expect_clean(result: Result<kset_sim::fleet::WorkerReport, FleetError>, who: &str) {
    match result {
        Ok(report) => assert!(!report.injected_failure, "{who}: unexpected injection"),
        Err(FleetError::Disconnected { .. }) | Err(FleetError::Io { .. }) => {}
        other => panic!("{who}: {other:?}"),
    }
}

#[test]
fn chaos_20_seeded_border_runs_match_sequential_bytes() {
    let reference = reference_bytes("border", 42);
    let grid = sweeps::grid("border", 42).expect("catalog grid");
    let id = grid_id(&grid);
    let total = grid.cells.len();
    for run_seed in 0..20u64 {
        // Two saboteurs dying at seeded points inside their first lease,
        // then a healthy worker so the sweep always completes.
        let fails = [
            cell_seed(run_seed, 10_000) as usize % 3,
            cell_seed(run_seed, 20_000) as usize % 3,
        ];
        let (out, counts) = run_fleet(&id, |addr| {
            // Saboteurs first, to their deaths: each dies inside its first
            // lease (fail_after < lease cells) and two of them can cover at
            // most 4 of the 9 cells, so the grid is never complete when a
            // saboteur connects — the injection always fires. Only then
            // does the healthy worker sweep what is owed.
            std::thread::scope(|scope| {
                for (w, fail_after) in fails.into_iter().enumerate() {
                    scope.spawn(move || {
                        let config = WorkerConfig {
                            name: format!("w-{w}"),
                            fail_after: Some(fail_after),
                        };
                        match run_worker(&addr.to_string(), &config, catalog_source()) {
                            Ok(report) => assert!(report.injected_failure),
                            other => panic!("saboteur w-{w}: {other:?}"),
                        }
                    });
                }
            });
            let healthy = run_worker(
                &addr.to_string(),
                &WorkerConfig::new("healthy"),
                catalog_source(),
            );
            expect_clean(healthy, "healthy");
        });
        assert_eq!(out, reference, "run_seed {run_seed}: byte drift");
        assert_eq!(counts.merged as usize, total, "run_seed {run_seed}");
        assert!(
            counts.lost + counts.expired >= 2,
            "run_seed {run_seed}: two deaths must be recovered: {counts:?}"
        );
    }
}

#[test]
fn chaos_scale_runs_match_sequential_bytes() {
    let reference = reference_bytes("scale", 42);
    let grid = sweeps::grid("scale", 42).expect("catalog grid");
    let id = grid_id(&grid);
    for run_seed in [3u64, 11] {
        let fail_after = cell_seed(run_seed, 30_000) as usize % 3;
        let (out, counts) = run_fleet(&id, |addr| {
            // Saboteur to its death first (the grid cannot complete on its
            // at-most-2 cells), then the healthy sweep.
            let config = WorkerConfig {
                name: "saboteur".to_string(),
                fail_after: Some(fail_after),
            };
            match run_worker(&addr.to_string(), &config, catalog_source()) {
                Ok(report) => assert!(report.injected_failure),
                other => panic!("saboteur: {other:?}"),
            }
            let healthy = run_worker(
                &addr.to_string(),
                &WorkerConfig::new("healthy"),
                catalog_source(),
            );
            expect_clean(healthy, "healthy");
        });
        assert_eq!(out, reference, "run_seed {run_seed}: byte drift");
        assert!(counts.lost + counts.expired >= 1, "{counts:?}");
    }
}

/// The harshest churn: a *real* `experiments work` process SIGKILLed from
/// outside mid-sweep — no drop handlers, no polite hangup, just a dead
/// peer the coordinator must recover from by EOF or deadline.
#[test]
fn sigkilled_worker_process_is_recovered_without_byte_drift() {
    let reference = reference_bytes("border", 42);
    let grid = sweeps::grid("border", 42).expect("catalog grid");
    let id = grid_id(&grid);
    let (out, counts) = run_fleet(&id, |addr| {
        let spawn = |name: &str| {
            Command::new(env!("CARGO_BIN_EXE_experiments"))
                .args(["work", "--connect", &addr.to_string(), "--name", name])
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn worker process")
        };
        // The hanger pins the sweep open: it takes the first lease and
        // sits on it, so no amount of scheduling luck lets the sweep
        // finish before the rescuer joins — the kill below always lands
        // on a coordinator that is still mid-run.
        use std::io::Write as _;
        let mut hanger = std::net::TcpStream::connect(addr).expect("connect hanger");
        hanger
            .write_all(b"hello kset-fleet v1 worker hanger\n")
            .expect("hello");
        std::thread::sleep(Duration::from_millis(20));
        let mut victim = spawn("victim");
        std::thread::sleep(Duration::from_millis(100));
        victim.kill().expect("SIGKILL victim");
        victim.wait().expect("reap victim");
        let mut rescuer = spawn("rescuer");
        // Only once the rescuer exists does the hanger let go; its lease
        // is recovered by EOF and the rescuer finishes the sweep.
        std::thread::sleep(Duration::from_millis(50));
        drop(hanger);
        let status = rescuer.wait().expect("reap rescuer");
        assert!(status.success(), "rescuer must finish cleanly: {status}");
    });
    assert_eq!(out, reference, "SIGKILL churn: byte drift");
    assert_eq!(counts.merged as usize, grid.cells.len());
}

/// `work --fail-after` really drops the connection cold and exits 3 — the
/// chaos workflow keys on that exit code.
#[test]
fn fail_after_process_exits_with_code_3() {
    let grid = sweeps::grid("border", 42).expect("catalog grid");
    let id = grid_id(&grid);
    let (out, _counts) = run_fleet(&id, |addr| {
        let saboteur = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args([
                "work",
                "--connect",
                &addr.to_string(),
                "--name",
                "saboteur",
                "--fail-after",
                "2",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("run saboteur");
        assert_eq!(saboteur.code(), Some(3), "injected failure exits 3");
        let healthy = run_worker(
            &addr.to_string(),
            &WorkerConfig::new("healthy"),
            catalog_source(),
        );
        expect_clean(healthy, "healthy");
    });
    assert_eq!(out, reference_bytes("border", 42));
}

/// Satellite: unreachable `--connect` is a typed CLI error — exit 1 with
/// an `error:` line, never a panic (exit 101).
#[test]
fn unreachable_connect_is_a_typed_cli_error() {
    // A port that was just released: connecting is refused, not hung.
    let released = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = released.local_addr().expect("local_addr").to_string();
    drop(released);
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["work", "--connect", &addr])
        .output()
        .expect("run work");
    assert_eq!(output.status.code(), Some(1), "typed failure, not a panic");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.starts_with("error:"), "stderr: {stderr}");
    assert!(stderr.contains("connect"), "stderr: {stderr}");
}

/// Satellite: an in-use `--listen` address is a typed CLI error too.
#[test]
fn in_use_listen_is_a_typed_cli_error() {
    let taken = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = taken.local_addr().expect("local_addr").to_string();
    let dir = std::env::temp_dir().join("kset-fleet-gate-listen");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let out = dir.join("never-written.txt");
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "coordinate",
            "--grid",
            "border",
            "--listen",
            &addr,
            "--out",
            out.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run coordinate");
    assert_eq!(output.status.code(), Some(1), "typed failure, not a panic");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.starts_with("error:"), "stderr: {stderr}");
    assert!(stderr.contains("bind"), "stderr: {stderr}");
}

/// The coordinator binary resumes from its own partial artifact: kill a
/// run mid-stream (simulated by truncating a finished file), restart with
/// `--resume`, and the rebuilt file must match the reference byte-for-byte.
#[test]
fn coordinate_binary_resumes_from_truncated_artifact() {
    let reference = reference_bytes("border", 42);
    let dir = std::env::temp_dir().join(format!("kset-fleet-gate-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    // A killed coordinator's artifact: header + a few records + torn tail.
    let keep_lines = 3 + 4; // header (3 lines) + 4 full records
    let mut partial: String = reference
        .lines()
        .take(keep_lines)
        .map(|l| format!("{l}\n"))
        .collect();
    partial.push_str("cell 4 n 4 f 1 k"); // torn mid-line, no newline
    let partial_path = dir.join("partial.txt");
    std::fs::write(&partial_path, &partial).expect("write partial");

    let out_path = dir.join("resumed.txt");
    let mut coordinator = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "coordinate",
            "--grid",
            "border",
            "--listen",
            "127.0.0.1:0",
            "--out",
            out_path.to_str().expect("utf8 path"),
            "--resume",
            partial_path.to_str().expect("utf8 path"),
            "--lease-cells",
            "2",
            "--poll-ms",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");
    // The first stdout line announces the bound port.
    let stdout = coordinator.stdout.take().expect("stdout");
    let mut lines = BufReader::new(stdout).lines();
    let announce = lines.next().expect("announce line").expect("read announce");
    let addr = announce
        .split_whitespace()
        .nth(3)
        .expect("addr token in announce")
        .to_string();
    let report = run_worker(&addr, &WorkerConfig::new("resumer"), catalog_source());
    expect_clean(report, "resumer");
    let status = coordinator.wait().expect("reap coordinator");
    assert!(status.success(), "coordinator exit: {status}");
    let resumed = std::fs::read_to_string(&out_path).expect("read resumed");
    assert_eq!(
        resumed, reference,
        "resume must converge to reference bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
