//! The shard-matrix CI gate, in-process: for every catalog grid, a 3-way
//! shard partition swept through the streaming runner and merged from the
//! text format must reproduce the sequential single-process sweep **byte
//! for byte** — and withholding a shard must fail the merge loudly. The
//! kill-and-resume gate rides along: any truncation of a shard file must
//! resume — recomputing only the owed cells — to those same bytes.
//!
//! `.github/workflows/sweep-shards.yml` runs exactly this across three
//! runner processes plus artifact upload/download (and a kill-and-resume
//! job on the release binary); this test keeps the gate honest without a
//! CI round-trip.

use kset_bench::sweeps::{grid, GRID_NAMES};
use kset_sim::sweep::{merge, MergeError, PartialShardFile, ShardFile, ShardSpec};

const SHARDS: usize = 3;

fn shard_files(name: &str) -> (Vec<ShardFile>, ShardFile) {
    let g = grid(name, 42).expect("catalog grid");
    let files: Vec<ShardFile> = (0..SHARDS)
        .map(|i| {
            let spec = ShardSpec::new(i, SHARDS).unwrap();
            let mut records = Vec::new();
            g.sweep_shard_streaming(spec, 4, |r| records.push(r));
            ShardFile {
                header: g.header(spec),
                records,
            }
        })
        .collect();
    let sequential = ShardFile {
        header: g.header(ShardSpec::FULL),
        records: g.sweep_sequential(),
    };
    (files, sequential)
}

#[test]
fn merged_shards_are_byte_identical_to_sequential() {
    for name in GRID_NAMES {
        let (files, sequential) = shard_files(name);
        // Each shard file survives the text round-trip unchanged …
        for file in &files {
            assert_eq!(
                ShardFile::parse(&file.render()).as_ref(),
                Ok(file),
                "grid {name}: render→parse must be identity"
            );
        }
        // … and the merge of the reparsed files is the sequential file.
        let reparsed: Vec<ShardFile> = files
            .iter()
            .map(|f| ShardFile::parse(&f.render()).unwrap())
            .collect();
        let merged = merge(&reparsed).expect("full partition merges");
        assert_eq!(merged, sequential, "grid {name}");
        assert_eq!(
            merged.render(),
            sequential.render(),
            "grid {name}: merged file must be byte-identical to sequential"
        );
    }
}

#[test]
fn withheld_shard_fails_the_merge_loudly() {
    let (files, _) = shard_files("scale");
    let withheld: Vec<ShardFile> = files
        .iter()
        .filter(|f| f.header.shard.shard_index() != 1)
        .cloned()
        .collect();
    assert_eq!(
        merge(&withheld),
        Err(MergeError::MissingShard { shard_index: 1 })
    );
    let doubled: Vec<ShardFile> = files.iter().chain(files.first()).cloned().collect();
    assert_eq!(
        merge(&doubled),
        Err(MergeError::DuplicateShard { shard_index: 0 })
    );
}

#[test]
fn killed_sweeps_resume_to_identical_bytes() {
    // The resume contract on the real catalog: cut a shard file anywhere —
    // between lines or mid-line — and completing the owed cells from the
    // partial must rebuild the uninterrupted file byte for byte. This is
    // the in-process form of the CI kill-and-resume job.
    let g = grid("border", 42).expect("catalog grid");
    let spec = ShardSpec::new(1, 2).unwrap();
    let mut records = Vec::new();
    g.sweep_shard_streaming(spec, 4, |r| records.push(r));
    let full = ShardFile {
        header: g.header(spec),
        records,
    };
    let reference = full.render();

    // Every cut position: after the header, after each record line, and a
    // mid-line tear inside each record line.
    let line_ends: Vec<usize> = reference
        .char_indices()
        .filter(|&(_, c)| c == '\n')
        .map(|(i, _)| i + 1)
        .collect();
    let header_end = line_ends[2];
    for (i, &line_end) in line_ends.iter().enumerate().skip(2) {
        for cut in [line_end, line_end.saturating_sub(7).max(header_end)] {
            if cut < header_end {
                continue;
            }
            let partial = PartialShardFile::parse(&reference[..cut])
                .unwrap_or_else(|e| panic!("cut at byte {cut} (line {i}): {e}"));
            let mut resumed = partial.records.clone();
            g.sweep_range_streaming(partial.owed(), 4, |r| resumed.push(r));
            let rebuilt = ShardFile {
                header: partial.header,
                records: resumed,
            };
            assert_eq!(
                rebuilt.render(),
                reference,
                "cut at byte {cut} must resume to identical bytes"
            );
        }
    }
}

#[test]
fn grids_under_different_seeds_do_not_mix() {
    let a = grid("scale", 42).unwrap();
    let b = grid("scale", 43).unwrap();
    let file = |g: &kset_bench::sweeps::SweepGrid, i| {
        let spec = ShardSpec::new(i, 2).unwrap();
        let mut records = Vec::new();
        g.sweep_shard_streaming(spec, 4, |r| records.push(r));
        ShardFile {
            header: g.header(spec),
            records,
        }
    };
    assert!(matches!(
        merge(&[file(&a, 0), file(&b, 1)]),
        Err(MergeError::GridMismatch { .. })
    ));
}
