//! The batched-execution conformance gate: batching a sweep changes the
//! execution schedule and **nothing else**.
//!
//! For every catalog grid and batch sizes B ∈ {1, 3, 8, 16} — including
//! batches that leave a ragged final chunk — the batched sweep must
//! produce per-cell digests and `Observation` payloads identical to the
//! one-at-a-time scalar path, and the rendered `kset-sweep v2` shard
//! file must be **byte-identical** to the sequential reference. This is
//! the in-process twin of the `cmp`-based CI leg in `sweep-shards.yml`.

use kset_bench::sweeps::{grid, GRID_NAMES};
use kset_sim::sweep::{cell_seed, GridCell, ShardFile, ShardSpec};

const BATCHES: [usize; 4] = [1, 3, 8, 16];

#[test]
fn batched_sweep_records_match_sequential_for_every_grid_and_batch() {
    for name in GRID_NAMES {
        let g = grid(name, 42).expect("catalog grid resolves");
        let reference = g.sweep_sequential();
        for batch in BATCHES {
            let batched = g.sweep_shard_batched(ShardSpec::FULL, batch);
            assert_eq!(batched.len(), reference.len());
            for (b, s) in batched.iter().zip(&reference) {
                assert_eq!(b.index, s.index, "grid {name} batch {batch}: order");
                assert_eq!(
                    b.digest, s.digest,
                    "grid {name} batch {batch} cell {}: digest",
                    s.index
                );
                assert_eq!(
                    b.obs, s.obs,
                    "grid {name} batch {batch} cell {}: observation payload",
                    s.index
                );
                assert_eq!(b, s, "grid {name} batch {batch} cell {}", s.index);
            }
        }
    }
}

#[test]
fn batched_shard_file_is_byte_identical_to_sequential() {
    for name in GRID_NAMES {
        let g = grid(name, 42).expect("catalog grid resolves");
        let sequential = ShardFile {
            header: g.header(ShardSpec::FULL),
            records: g.sweep_sequential(),
        }
        .render();
        for batch in BATCHES {
            let batched = ShardFile {
                header: g.header(ShardSpec::FULL),
                records: g.sweep_shard_batched(ShardSpec::FULL, batch),
            }
            .render();
            assert_eq!(
                batched, sequential,
                "grid {name} batch {batch}: rendered shard file must be byte-identical"
            );
        }
    }
}

#[test]
fn batched_sub_shards_match_the_sequential_slice() {
    // Batching composes with sharding: each shard's batched records equal
    // the matching slice of the sequential reference.
    for name in GRID_NAMES {
        let g = grid(name, 42).expect("catalog grid resolves");
        let reference = g.sweep_sequential();
        let mut reassembled = Vec::new();
        for shard_index in 0..3 {
            let shard = ShardSpec::new(shard_index, 3).unwrap();
            let batched = g.sweep_shard_batched(shard, 8);
            assert_eq!(batched.as_slice(), shard.slice(&reference), "grid {name}");
            reassembled.extend(batched);
        }
        assert_eq!(reassembled, reference, "grid {name}: shards cover the grid");
    }
}

#[test]
fn ragged_final_batch_matches_per_cell_records() {
    // 19 same-shape cells at B = 8 chunk as 8 + 8 + 3: the ragged tail
    // must flow through the same kernel and come out identical. The cells
    // are synthetic because the catalog grids never repeat an (n, f, k)
    // point, so their largest same-shape group is 3 cells.
    let g = grid("scale", 42).expect("catalog grid resolves");
    let cells: Vec<GridCell> = (0..19)
        .map(|index| GridCell {
            index,
            n: 64,
            f: 3,
            k: 2,
            seed: cell_seed(42, index),
        })
        .collect();
    let refs: Vec<&GridCell> = cells.iter().collect();
    let scalar: Vec<_> = cells.iter().map(|cell| g.record(cell)).collect();
    for batch in BATCHES {
        for chunk in refs.chunks(batch) {
            let start = chunk[0].index;
            let batched = g.record_batch(chunk);
            assert_eq!(
                batched,
                scalar[start..start + chunk.len()],
                "batch {batch} chunk at {start}"
            );
        }
    }
}
