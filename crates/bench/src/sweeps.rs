//! The sharded-sweep grid catalog: the named grids CI shards across
//! processes, with their deterministic per-cell decision digests.
//!
//! The `experiments` binary (`sweep` / `merge` subcommands), the
//! integration tests and the shard-matrix CI workflow all resolve grid
//! names through this one module, so "grid `border` under seed 42" means
//! the same cell list and the same digest function everywhere. The
//! conformance claim the CI gate checks is: merging the [`ShardFile`](kset_sim::sweep::ShardFile)s of
//! any full shard partition reproduces, **byte for byte**, the file a
//! sequential single-process sweep writes.
//!
//! Two grids are registered:
//!
//! * **`border`** — the Theorem 8 border grid (`kn = (k+1)f`): each cell
//!   runs the full pasted impossibility construction
//!   ([`border_demo`]), digests its verdict and records the distinct
//!   decision values of the pasted run as its typed observation.
//! * **`scale`** — a [`scale_grid`] slice spanning n ∈ {64, …, 512}: each
//!   cell runs lock-step FloodMin with a seed-derived crash layout under
//!   an attached [`EventCounter`]
//!   ([`Engine::drive_observed`]), digests the decision vector and
//!   records the run's event counts as its typed observation.
//!
//! Observations ride the `kset-sweep v2` record format; they must be pure
//! functions of the cell (resume byte-identity depends on it), which the
//! deterministic substrates guarantee.

use std::fmt;

use kset_core::algorithms::floodmin::{floodmin_batch, floodmin_rounds, FloodMin, FloodMinLane};
use kset_core::sync::{LockStep, RoundCrash};
use kset_core::task::distinct_proposals;
use kset_impossibility::theorem8::border_demo;
use kset_impossibility::theorem8_border_cells;
use kset_sim::observe::EventCounter;
use kset_sim::sweep::{
    scale_grid, sweep_batched, sweep_seq, sweep_streaming_ordered, CellRecord, GridCell,
    Observation, ShardSpec, SweepHeader,
};
use kset_sim::{stable_fingerprint, Engine, ProcessId};

/// The grid names the catalog resolves (the CI matrix runs all of them).
pub const GRID_NAMES: &[&str] = &["border", "scale"];

/// A named, seeded sweep grid: its cells and its digest semantics.
pub struct SweepGrid {
    /// Catalog name (`border` or `scale`).
    pub name: &'static str,
    /// Whitespace-free axes description recorded in shard headers.
    pub axes: &'static str,
    /// The grid seed every cell seed derives from.
    pub grid_seed: u64,
    /// The full cell list, in emission order.
    pub cells: Vec<GridCell>,
    /// Computes one cell's digest and typed observation (pure).
    observe: fn(&GridCell) -> (u64, Option<Observation>),
    /// Optional structure-of-arrays kernel: the shape key two cells must
    /// share to ride one batch, and the batch observe function (one
    /// digest/observation pair per lane, in lane order, each identical to
    /// what `observe` computes for that cell). Grids without a kernel —
    /// or grids where no two cells share a shape — fall back to the
    /// scalar path cell by cell, so `--batch` is a no-op there rather
    /// than a failure.
    batch: Option<BatchKernel>,
}

/// Per-lane `(digest, observation)` pairs, in lane order.
type LaneResults = Vec<(u64, Option<Observation>)>;

/// The shape-keyed batch kernel of a [`SweepGrid`].
#[derive(Clone, Copy)]
struct BatchKernel {
    /// Cells may share a batch iff this key matches (`(n, rounds)` for
    /// the lock-step grids).
    shape: fn(&GridCell) -> (usize, usize),
    /// Runs one same-shape batch; returns per-lane `(digest, observation)`
    /// pairs in lane order.
    run: fn(&[&GridCell]) -> LaneResults,
}

impl fmt::Debug for SweepGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepGrid")
            .field("name", &self.name)
            .field("grid_seed", &self.grid_seed)
            .field("cells", &self.cells.len())
            .finish()
    }
}

/// A grid name outside [`GRID_NAMES`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownGrid(pub String);

impl fmt::Display for UnknownGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown grid {:?} (known: {GRID_NAMES:?})", self.0)
    }
}

impl std::error::Error for UnknownGrid {}

/// Resolves a catalog grid by name under a grid seed.
pub fn grid(name: &str, grid_seed: u64) -> Result<SweepGrid, UnknownGrid> {
    match name {
        "border" => Ok(SweepGrid {
            name: "border",
            axes: "theorem8-border:kn=(k+1)f",
            grid_seed,
            cells: theorem8_border_cells(grid_seed),
            observe: border_observe,
            // The pasted construction has no SoA kernel (and border cells
            // rarely share a shape anyway): --batch falls back to the
            // scalar path.
            batch: None,
        }),
        "scale" => Ok(SweepGrid {
            name: "scale",
            axes: "ns=64,128,256,512;fs=1,2,3;ks=1,2",
            grid_seed,
            cells: scale_grid(&[64, 128, 256, 512], &[1, 2, 3], &[1, 2], grid_seed)
                // kset-lint: allow(panic-in-library): invariant — the axes are compile-time catalog constants already validated against the grid contract
                .expect("catalog axes are duplicate-free and within capacity"),
            observe: floodmin_observe,
            batch: Some(BatchKernel {
                shape: |cell| (cell.n, floodmin_rounds(cell.f, cell.k)),
                run: floodmin_observe_batch,
            }),
        }),
        other => Err(UnknownGrid(other.to_string())),
    }
}

impl SweepGrid {
    /// The shard-file header for `shard` of this grid.
    pub fn header(&self, shard: ShardSpec) -> SweepHeader {
        SweepHeader::new(
            self.name,
            self.grid_seed,
            self.axes,
            self.cells.len(),
            shard,
        )
    }

    /// Computes one cell's decision digest (pure: safe to call from any
    /// shard, any thread, any host).
    pub fn digest(&self, cell: &GridCell) -> u64 {
        (self.observe)(cell).0
    }

    /// Computes one cell's full record: digest plus the grid's typed
    /// observation payload (pure, like [`SweepGrid::digest`]).
    pub fn record(&self, cell: &GridCell) -> CellRecord {
        let (digest, obs) = (self.observe)(cell);
        let record = CellRecord::new(cell, digest);
        match obs {
            Some(obs) => record.with_observation(obs),
            None => record,
        }
    }

    /// Sweeps one shard, **streaming**: records flow to `emit` in cell
    /// order as cells complete (at most `window` results in flight), so a
    /// caller can write the shard file without materializing the shard.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` (the CLI validates its `--window` before
    /// reaching here; library callers own the same contract).
    pub fn sweep_shard_streaming(
        &self,
        shard: ShardSpec,
        window: usize,
        mut emit: impl FnMut(CellRecord),
    ) {
        let slice = shard.slice(&self.cells);
        sweep_streaming_ordered(
            slice,
            window,
            |_, cell| self.record(cell),
            |_, record| emit(record),
        )
        // kset-lint: allow(panic-in-library): documented panicking contract — window == 0 is a caller bug, surfaced per the # Panics section
        .expect("window >= 1 is the caller's contract");
    }

    /// Sweeps exactly the cells of `range` (global indices), streaming
    /// records in cell order — the resume path: a partial shard file
    /// names its owed range and only that remainder is recomputed.
    ///
    /// # Panics
    ///
    /// Panics if `range` lies outside the grid or `window == 0`.
    pub fn sweep_range_streaming(
        &self,
        range: std::ops::Range<usize>,
        window: usize,
        mut emit: impl FnMut(CellRecord),
    ) {
        let slice = &self.cells[range];
        sweep_streaming_ordered(
            slice,
            window,
            |_, cell| self.record(cell),
            |_, record| emit(record),
        )
        // kset-lint: allow(panic-in-library): documented panicking contract — window == 0 is a caller bug, surfaced per the # Panics section
        .expect("window >= 1 is the caller's contract");
    }

    /// Sweeps the **full** grid sequentially on one thread — the reference
    /// the merged shard files must reproduce byte for byte.
    pub fn sweep_sequential(&self) -> Vec<CellRecord> {
        sweep_seq(&self.cells, |_, cell| self.record(cell))
    }

    /// Whether this grid registers a structure-of-arrays batch kernel
    /// (grids without one run `--batch` on the scalar path).
    pub fn supports_batching(&self) -> bool {
        self.batch.is_some()
    }

    /// Computes the records of one **same-shape** batch through the grid's
    /// SoA kernel, in lane order — or cell by cell through the scalar
    /// path if the grid has no kernel. Each record is identical to what
    /// [`SweepGrid::record`] computes for that cell; only the execution
    /// schedule differs.
    pub fn record_batch(&self, lanes: &[&GridCell]) -> Vec<CellRecord> {
        let Some(kernel) = self.batch else {
            return lanes.iter().map(|cell| self.record(cell)).collect();
        };
        (kernel.run)(lanes)
            .into_iter()
            .zip(lanes)
            .map(|((digest, obs), cell)| {
                let record = CellRecord::new(cell, digest);
                match obs {
                    Some(obs) => record.with_observation(obs),
                    None => record,
                }
            })
            .collect()
    }

    /// Sweeps one shard **batched**: cells grouped by the grid's shape
    /// key, executed through the SoA kernel in batches of at most `batch`
    /// lanes, and re-serialized in canonical cell order. Cell indices,
    /// seeds and record contents are invariant under batching, so the
    /// resulting records — and any shard file rendered from them — are
    /// byte-identical to the streaming/sequential reference.
    ///
    /// Grids without a kernel fall back to the scalar path (same records,
    /// no fusion); a degenerate grid where no two cells share a shape
    /// simply yields single-lane batches.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn sweep_shard_batched(&self, shard: ShardSpec, batch: usize) -> Vec<CellRecord> {
        let slice = shard.slice(&self.cells);
        let Some(kernel) = self.batch else {
            assert!(batch >= 1, "batch size must be at least 1");
            return slice.iter().map(|cell| self.record(cell)).collect();
        };
        sweep_batched(
            slice,
            batch,
            |_, cell| (kernel.shape)(cell),
            |lanes| {
                let cells: Vec<&GridCell> = lanes.iter().map(|(_, c)| *c).collect();
                self.record_batch(&cells)
            },
        )
    }
}

/// One Theorem 8 border cell: the digest of the pasted impossibility
/// construction's verdict at `(n, k)`, observed as the distinct decision
/// values of the pasted run.
fn border_observe(cell: &GridCell) -> (u64, Option<Observation>) {
    let demo = border_demo(cell.n, cell.k, 300_000)
        // kset-lint: allow(panic-in-library): invariant — theorem8_border_cells only emits exact divisible border points, so the demo always constructs
        .expect("border grid cells are exact divisible border points");
    debug_assert_eq!(demo.f, cell.f, "border cell carries the derived f");
    let digest = stable_fingerprint(&(
        demo.f,
        demo.pasted.verified,
        demo.pasted.distinct_decisions(),
        demo.pasted.report.failure_pattern.num_faulty(),
        demo.violates_k_agreement(),
    ));
    let obs = Observation::distinct(demo.pasted.report.distinct_decisions.iter().copied());
    (digest, Some(obs))
}

/// One scale cell: lock-step FloodMin under a seed-derived crash layout
/// (the same construction `tests/sweep_integration.rs` pins), with an
/// [`EventCounter`] attached through the uniform observation API — the
/// digest covers the decision vector, the observation records the run's
/// event totals.
fn floodmin_observe(cell: &GridCell) -> (u64, Option<Observation>) {
    let GridCell { n, f, k, .. } = *cell;
    // kset-lint: allow(unchecked-capacity): cell.n comes from scale_grid, which capacity-validates every axis value at grid construction
    let mut engine = LockStep::new(
        FloodMin::system(&distinct_proposals(n), f, k),
        floodmin_rounds(f, k),
        &scale_cell_crashes(cell),
    );
    let mut counter = EventCounter::new();
    engine.drive_observed(u64::MAX, &mut counter);
    let out = engine.outcome();
    let digest = floodmin_digest(&out);
    (digest, Some(Observation::Counts(counter.counts())))
}

/// The seed-derived crash layout of one scale cell — shared verbatim by
/// the scalar and batched paths, so the two execute the *same* scenario.
fn scale_cell_crashes(cell: &GridCell) -> Vec<RoundCrash> {
    let GridCell { n, f, k, seed, .. } = *cell;
    let base = (seed as usize) % n;
    (0..f)
        .map(|j| RoundCrash {
            round: 1 + j % floodmin_rounds(f, k),
            pid: ProcessId::new((base + j) % n),
            receivers: ProcessId::all((seed >> 8) as usize % n).collect(),
        })
        .collect()
}

/// The scale grid's decision digest (allocation-free distinct count —
/// same value the old per-cell `BTreeSet` produced).
fn floodmin_digest(out: &kset_core::sync::SyncOutcome) -> u64 {
    stable_fingerprint(&(
        stable_fingerprint(&out.decisions),
        out.distinct_count(),
        out.rounds,
    ))
}

/// The batched twin of [`floodmin_observe`]: one [`floodmin_batch`] call
/// over a same-shape lane set, producing per lane exactly the digest and
/// [`Observation::Counts`] the scalar path computes for that cell.
fn floodmin_observe_batch(lanes: &[&GridCell]) -> LaneResults {
    let Some(first) = lanes.first() else {
        return Vec::new();
    };
    let rounds = floodmin_rounds(first.f, first.k);
    let cells: Vec<FloodMinLane> = lanes
        .iter()
        .map(|cell| {
            debug_assert_eq!((cell.n, floodmin_rounds(cell.f, cell.k)), (first.n, rounds));
            FloodMinLane {
                values: distinct_proposals(cell.n),
                crashes: scale_cell_crashes(cell),
            }
        })
        .collect();
    floodmin_batch(first.n, rounds, &cells)
        .into_iter()
        .map(|(out, counts)| (floodmin_digest(&out), Some(Observation::Counts(counts))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_resolves_every_registered_name() {
        for name in GRID_NAMES {
            let g = grid(name, 42).expect("registered name resolves");
            assert_eq!(g.name, *name);
            assert!(!g.cells.is_empty());
        }
        assert!(grid("no-such-grid", 42).is_err());
    }

    #[test]
    fn batched_records_match_sequential_for_every_grid() {
        use kset_sim::sweep::ShardSpec;

        for name in GRID_NAMES {
            let g = grid(name, 42).unwrap();
            let reference = g.sweep_sequential();
            for batch in [1, 3, 16] {
                let batched = g.sweep_shard_batched(ShardSpec::FULL, batch);
                assert_eq!(batched, reference, "grid {name} batch {batch}");
            }
        }
    }

    #[test]
    fn scale_grid_registers_a_batch_kernel() {
        assert!(grid("scale", 42).unwrap().supports_batching());
        assert!(!grid("border", 42).unwrap().supports_batching());
    }

    #[test]
    fn scale_digest_is_deterministic() {
        let g = grid("scale", 42).unwrap();
        let a = g.digest(&g.cells[0]);
        let b = g.digest(&g.cells[0]);
        assert_eq!(a, b);
        assert_ne!(a, g.digest(&g.cells[1]), "cells digest differently");
    }
}
