//! The sharded-sweep grid catalog: the named grids CI shards across
//! processes, with their deterministic per-cell decision digests.
//!
//! The `experiments` binary (`sweep` / `merge` subcommands), the
//! integration tests and the shard-matrix CI workflow all resolve grid
//! names through this one module, so "grid `border` under seed 42" means
//! the same cell list and the same digest function everywhere. The
//! conformance claim the CI gate checks is: merging the [`ShardFile`](kset_sim::sweep::ShardFile)s of
//! any full shard partition reproduces, **byte for byte**, the file a
//! sequential single-process sweep writes.
//!
//! Two grids are registered:
//!
//! * **`border`** — the Theorem 8 border grid (`kn = (k+1)f`): each cell
//!   runs the full pasted impossibility construction
//!   ([`border_demo`]), digests its verdict and records the distinct
//!   decision values of the pasted run as its typed observation.
//! * **`scale`** — a [`scale_grid`] slice spanning n ∈ {64, …, 512}: each
//!   cell runs lock-step FloodMin with a seed-derived crash layout under
//!   an attached [`EventCounter`]
//!   ([`Engine::drive_observed`]), digests the decision vector and
//!   records the run's event counts as its typed observation.
//!
//! Observations ride the `kset-sweep v2` record format; they must be pure
//! functions of the cell (resume byte-identity depends on it), which the
//! deterministic substrates guarantee.

use std::fmt;

use kset_core::algorithms::floodmin::{floodmin_rounds, FloodMin};
use kset_core::sync::{LockStep, RoundCrash};
use kset_core::task::distinct_proposals;
use kset_impossibility::theorem8::border_demo;
use kset_impossibility::theorem8_border_cells;
use kset_sim::observe::EventCounter;
use kset_sim::sweep::{
    scale_grid, sweep_seq, sweep_streaming_ordered, CellRecord, GridCell, Observation, ShardSpec,
    SweepHeader,
};
use kset_sim::{stable_fingerprint, Engine, ProcessId};

/// The grid names the catalog resolves (the CI matrix runs all of them).
pub const GRID_NAMES: &[&str] = &["border", "scale"];

/// A named, seeded sweep grid: its cells and its digest semantics.
pub struct SweepGrid {
    /// Catalog name (`border` or `scale`).
    pub name: &'static str,
    /// Whitespace-free axes description recorded in shard headers.
    pub axes: &'static str,
    /// The grid seed every cell seed derives from.
    pub grid_seed: u64,
    /// The full cell list, in emission order.
    pub cells: Vec<GridCell>,
    /// Computes one cell's digest and typed observation (pure).
    observe: fn(&GridCell) -> (u64, Option<Observation>),
}

impl fmt::Debug for SweepGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepGrid")
            .field("name", &self.name)
            .field("grid_seed", &self.grid_seed)
            .field("cells", &self.cells.len())
            .finish()
    }
}

/// A grid name outside [`GRID_NAMES`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownGrid(pub String);

impl fmt::Display for UnknownGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown grid {:?} (known: {GRID_NAMES:?})", self.0)
    }
}

impl std::error::Error for UnknownGrid {}

/// Resolves a catalog grid by name under a grid seed.
pub fn grid(name: &str, grid_seed: u64) -> Result<SweepGrid, UnknownGrid> {
    match name {
        "border" => Ok(SweepGrid {
            name: "border",
            axes: "theorem8-border:kn=(k+1)f",
            grid_seed,
            cells: theorem8_border_cells(grid_seed),
            observe: border_observe,
        }),
        "scale" => Ok(SweepGrid {
            name: "scale",
            axes: "ns=64,128,256,512;fs=1,2,3;ks=1,2",
            grid_seed,
            cells: scale_grid(&[64, 128, 256, 512], &[1, 2, 3], &[1, 2], grid_seed)
                .expect("catalog axes are duplicate-free and within capacity"),
            observe: floodmin_observe,
        }),
        other => Err(UnknownGrid(other.to_string())),
    }
}

impl SweepGrid {
    /// The shard-file header for `shard` of this grid.
    pub fn header(&self, shard: ShardSpec) -> SweepHeader {
        SweepHeader::new(
            self.name,
            self.grid_seed,
            self.axes,
            self.cells.len(),
            shard,
        )
    }

    /// Computes one cell's decision digest (pure: safe to call from any
    /// shard, any thread, any host).
    pub fn digest(&self, cell: &GridCell) -> u64 {
        (self.observe)(cell).0
    }

    /// Computes one cell's full record: digest plus the grid's typed
    /// observation payload (pure, like [`SweepGrid::digest`]).
    pub fn record(&self, cell: &GridCell) -> CellRecord {
        let (digest, obs) = (self.observe)(cell);
        let record = CellRecord::new(cell, digest);
        match obs {
            Some(obs) => record.with_observation(obs),
            None => record,
        }
    }

    /// Sweeps one shard, **streaming**: records flow to `emit` in cell
    /// order as cells complete (at most `window` results in flight), so a
    /// caller can write the shard file without materializing the shard.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` (the CLI validates its `--window` before
    /// reaching here; library callers own the same contract).
    pub fn sweep_shard_streaming(
        &self,
        shard: ShardSpec,
        window: usize,
        mut emit: impl FnMut(CellRecord),
    ) {
        let slice = shard.slice(&self.cells);
        sweep_streaming_ordered(
            slice,
            window,
            |_, cell| self.record(cell),
            |_, record| emit(record),
        )
        .expect("window >= 1 is the caller's contract");
    }

    /// Sweeps exactly the cells of `range` (global indices), streaming
    /// records in cell order — the resume path: a partial shard file
    /// names its owed range and only that remainder is recomputed.
    ///
    /// # Panics
    ///
    /// Panics if `range` lies outside the grid or `window == 0`.
    pub fn sweep_range_streaming(
        &self,
        range: std::ops::Range<usize>,
        window: usize,
        mut emit: impl FnMut(CellRecord),
    ) {
        let slice = &self.cells[range];
        sweep_streaming_ordered(
            slice,
            window,
            |_, cell| self.record(cell),
            |_, record| emit(record),
        )
        .expect("window >= 1 is the caller's contract");
    }

    /// Sweeps the **full** grid sequentially on one thread — the reference
    /// the merged shard files must reproduce byte for byte.
    pub fn sweep_sequential(&self) -> Vec<CellRecord> {
        sweep_seq(&self.cells, |_, cell| self.record(cell))
    }
}

/// One Theorem 8 border cell: the digest of the pasted impossibility
/// construction's verdict at `(n, k)`, observed as the distinct decision
/// values of the pasted run.
fn border_observe(cell: &GridCell) -> (u64, Option<Observation>) {
    let demo = border_demo(cell.n, cell.k, 300_000)
        .expect("border grid cells are exact divisible border points");
    debug_assert_eq!(demo.f, cell.f, "border cell carries the derived f");
    let digest = stable_fingerprint(&(
        demo.f,
        demo.pasted.verified,
        demo.pasted.distinct_decisions(),
        demo.pasted.report.failure_pattern.num_faulty(),
        demo.violates_k_agreement(),
    ));
    let obs = Observation::distinct(demo.pasted.report.distinct_decisions.iter().copied());
    (digest, Some(obs))
}

/// One scale cell: lock-step FloodMin under a seed-derived crash layout
/// (the same construction `tests/sweep_integration.rs` pins), with an
/// [`EventCounter`] attached through the uniform observation API — the
/// digest covers the decision vector, the observation records the run's
/// event totals.
fn floodmin_observe(cell: &GridCell) -> (u64, Option<Observation>) {
    let GridCell { n, f, k, seed, .. } = *cell;
    let base = (seed as usize) % n;
    let crashes: Vec<RoundCrash> = (0..f)
        .map(|j| RoundCrash {
            round: 1 + j % floodmin_rounds(f, k),
            pid: ProcessId::new((base + j) % n),
            receivers: ProcessId::all((seed >> 8) as usize % n).collect(),
        })
        .collect();
    let mut engine = LockStep::new(
        FloodMin::system(&distinct_proposals(n), f, k),
        floodmin_rounds(f, k),
        &crashes,
    );
    let mut counter = EventCounter::new();
    engine.drive_observed(u64::MAX, &mut counter);
    let out = engine.outcome();
    let distinct = out
        .decisions
        .iter()
        .flatten()
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    let digest = stable_fingerprint(&(stable_fingerprint(&out.decisions), distinct, out.rounds));
    (digest, Some(Observation::Counts(counter.counts())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_resolves_every_registered_name() {
        for name in GRID_NAMES {
            let g = grid(name, 42).expect("registered name resolves");
            assert_eq!(g.name, *name);
            assert!(!g.cells.is_empty());
        }
        assert!(grid("no-such-grid", 42).is_err());
    }

    #[test]
    fn scale_digest_is_deterministic() {
        let g = grid("scale", 42).unwrap();
        let a = g.digest(&g.cells[0]);
        let b = g.digest(&g.cells[0]);
        assert_eq!(a, b);
        assert_ne!(a, g.digest(&g.cells[1]), "cells digest differently");
    }
}
