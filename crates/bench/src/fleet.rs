//! Catalog adapter for the fleet worker: resolves a leased [`GridId`]
//! against [`crate::sweeps`] and computes cells with [`SweepGrid::record`]
//! — the exact same cell function the sequential reference and the
//! sharded sweeps use, which is what makes a fleet sweep byte-identical
//! to `sweep --seq`.
//!
//! Resolution is *verified*, not trusted: the grid name must exist in the
//! catalog, and the catalog grid's axes signature and cell count must
//! match what the lease announced. A coordinator built against a drifted
//! catalog is refused with a [`GridRejected`] naming the drift (the
//! coordinator-side seed re-derivation would catch the lie anyway, but a
//! named refusal beats a silent protocol fault).

use kset_sim::fleet::{GridId, GridRejected};
use kset_sim::sweep::CellRecord;

use crate::sweeps::{self, SweepGrid};

/// A resolving, caching compute source for [`kset_sim::fleet::run_worker`]:
/// call [`CatalogSource::compute`] (or use [`catalog_source`] for a ready
/// closure). Resolution happens once per distinct [`GridId`] — every
/// coordinator sticks to one grid, so in practice once per run.
#[derive(Debug, Default)]
pub struct CatalogSource {
    cached: Option<(GridId, SweepGrid)>,
}

impl CatalogSource {
    /// A source with an empty cache.
    pub fn new() -> CatalogSource {
        CatalogSource::default()
    }

    fn resolve(&mut self, id: &GridId) -> Result<&SweepGrid, GridRejected> {
        if self.cached.as_ref().is_none_or(|(cid, _)| cid != id) {
            let grid = sweeps::grid(&id.grid, id.grid_seed).map_err(|e| GridRejected {
                reason: e.to_string(),
            })?;
            if grid.axes != id.axes || grid.cells.len() != id.total {
                return Err(GridRejected {
                    reason: format!(
                        "catalog grid {:?} drifted from the lease: axes {:?} vs {:?}, \
                         {} vs {} cells",
                        id.grid,
                        grid.axes,
                        id.axes,
                        grid.cells.len(),
                        id.total
                    ),
                });
            }
            self.cached = Some((id.clone(), grid));
        }
        match &self.cached {
            Some((_, grid)) => Ok(grid),
            None => Err(GridRejected {
                reason: "catalog cache invariant broken".to_string(),
            }),
        }
    }

    /// Computes one leased cell through the catalog's own cell function.
    pub fn compute(&mut self, id: &GridId, index: usize) -> Result<CellRecord, GridRejected> {
        let grid = self.resolve(id)?;
        let cell = grid.cells.get(index).ok_or_else(|| GridRejected {
            reason: format!(
                "cell {index} outside grid {:?} ({} cells)",
                id.grid, id.total
            ),
        })?;
        Ok(grid.record(cell))
    }
}

/// The compute closure [`kset_sim::fleet::run_worker`] wants, backed by a
/// fresh [`CatalogSource`].
pub fn catalog_source() -> impl FnMut(&GridId, usize) -> Result<CellRecord, GridRejected> {
    let mut source = CatalogSource::new();
    move |id, index| source.compute(id, index)
}

/// The [`GridId`] a coordinator should announce for a catalog grid — the
/// shared vocabulary between `coordinate` and `work`.
pub fn grid_id(grid: &SweepGrid) -> GridId {
    GridId {
        grid: grid.name.to_string(),
        grid_seed: grid.grid_seed,
        axes: grid.axes.to_string(),
        total: grid.cells.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_catalog_cells_identically_to_sequential() {
        let grid = sweeps::grid("border", 42).unwrap();
        let id = grid_id(&grid);
        let mut source = CatalogSource::new();
        let sequential = grid.sweep_sequential();
        for (index, expected) in sequential.iter().enumerate() {
            assert_eq!(source.compute(&id, index).as_ref(), Ok(expected));
        }
    }

    #[test]
    fn rejects_unknown_grid_and_drifted_lease() {
        let mut source = CatalogSource::new();
        let mut id = grid_id(&sweeps::grid("border", 42).unwrap());
        id.grid = "no-such-grid".to_string();
        assert!(source.compute(&id, 0).is_err());

        let mut drifted = grid_id(&sweeps::grid("border", 42).unwrap());
        drifted.total += 1;
        let err = source.compute(&drifted, 0).unwrap_err();
        assert!(err.reason.contains("drifted"), "{err:?}");
    }

    #[test]
    fn rejects_out_of_range_cells() {
        let grid = sweeps::grid("border", 42).unwrap();
        let id = grid_id(&grid);
        let mut source = CatalogSource::new();
        assert!(source.compute(&id, id.total).is_err());
    }
}
