//! The experiments binary: regenerates every border table of the paper.
//!
//! ```sh
//! cargo run --release -p kset-bench --bin experiments          # all
//! cargo run --release -p kset-bench --bin experiments -- --e4  # one
//! ```
//!
//! The output is recorded in EXPERIMENTS.md; the "paper" columns are the
//! closed-form borders from the theorems, the "measured" columns come from
//! the simulator constructions. Agreement between the two is the
//! reproduction claim.

use kset_bench::{glyph, Table};
use kset_core::algorithms::floodmin::{floodmin_rounds, FloodMin};
use kset_core::algorithms::two_stage::{decision_bound, kset_threshold};
use kset_core::sync::{run_sync, RoundCrash};
use kset_core::task::distinct_proposals;
use kset_graph::{
    check_lemma6, check_lemma7, check_source_count_bound, source_components, stage_one_graph,
};
use kset_impossibility::theorem10::demo as theorem10_demo;
use kset_impossibility::theorem2::{demo_decide_own, demo_two_stage};
use kset_impossibility::theorem8::{border_demo, possibility_demo};
use kset_impossibility::{
    bouzid_travers_impossible, corollary13_solvable, theorem10_impossible, theorem2_impossible,
    theorem8_solvable, Theorem1Outcome,
};
use kset_sim::sweep::sweep;
use kset_sim::ProcessId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |tag: &str| args.is_empty() || args.iter().any(|a| a == tag);

    if want("--e1") {
        e1_theorem2();
    }
    if want("--e2") {
        e2_theorem8_possible();
    }
    if want("--e3") {
        e3_theorem8_border();
    }
    if want("--e4") {
        e4_theorem10();
    }
    if want("--e5") {
        e5_corollary13();
    }
    if want("--e6") {
        e6_graph_lemmas();
    }
}

/// E1 — Theorem 2: the partially synchronous border, with the Theorem 1
/// checker run against two candidates at every impossible grid point, and
/// the synchronous contrast column (FloodMin).
fn e1_theorem2() {
    let mut t = Table::new(
        "E1 — Theorem 2 border: k ≤ (n−1)/(n−f) (proc sync, comm async)",
        &[
            "n",
            "f",
            "k",
            "paper: impossible",
            "checker vs DecideOwn",
            "checker vs two-stage(L=n−f)",
            "sync point solvable (FloodMin)",
        ],
    );
    for n in 4..=8usize {
        for (f, k) in [(n - 1, 2), (n - 2, 2), (n - 1, 3), (n - 2, 3)] {
            if k >= n {
                continue;
            }
            let impossible = theorem2_impossible(n, f, k);
            let naive = demo_decide_own(n, f, k, 100_000)
                .map(|d| outcome_tag(&d.analysis.outcome, d.refuted()))
                .unwrap_or_else(|| "n/a (solvable)".into());
            let twostage = demo_two_stage(n, f, k, 200_000)
                .map(|d| outcome_tag(&d.analysis.outcome, d.refuted()))
                .unwrap_or_else(|| "n/a (solvable)".into());
            // Synchronous contrast: FloodMin on the same (n, f, k).
            let values = distinct_proposals(n);
            let crashes: Vec<RoundCrash> = (0..f)
                .map(|i| RoundCrash {
                    round: i / k + 1,
                    pid: ProcessId::new(i),
                    receivers: [ProcessId::new((i + 1) % n)].into(),
                })
                .collect();
            let out = run_sync(
                FloodMin::system(&values, f, k),
                floodmin_rounds(f, k),
                &crashes,
            );
            let sync_ok = out.distinct_decisions().len() <= k;
            t.row(&[
                n.to_string(),
                f.to_string(),
                k.to_string(),
                glyph(impossible).into(),
                naive,
                twostage,
                glyph(sync_ok).into(),
            ]);
        }
    }
    println!("{t}");
}

fn outcome_tag(outcome: &Theorem1Outcome, refuted: bool) -> String {
    let tag = match outcome {
        Theorem1Outcome::DirectViolation { distinct, k } => {
            format!("violated ({distinct}>{k})")
        }
        Theorem1Outcome::ReductionEstablished => "reduced to ⟨D̄⟩-consensus".into(),
        Theorem1Outcome::ConditionAFailed { .. } => "not flagged".into(),
    };
    format!("{tag}{}", if refuted { " ⇒ refuted" } else { "" })
}

/// E2 — Theorem 8 possibility side: the two-stage protocol across the
/// solvable grid, hostile schedules, rotating dead sets. Cells sweep in
/// parallel.
fn e2_theorem8_possible() {
    let mut t = Table::new(
        "E2 — Theorem 8 possibility: two-stage with L = n−f (f initial crashes)",
        &[
            "n",
            "f",
            "k",
            "paper: solvable",
            "runs",
            "all hold",
            "max distinct",
            "bound ⌊n/L⌋",
        ],
    );
    let grid: Vec<(usize, usize)> = vec![(4, 1), (5, 2), (6, 3), (7, 3), (8, 5), (9, 4), (10, 7)];
    let demos = sweep(&grid, |_, &(n, f)| {
        let l = kset_threshold(n, f);
        let k = decision_bound(n, l).max(1);
        theorem8_solvable(n, f, k).then(|| possibility_demo(n, f, k, 6))
    });
    for ((n, f), demo) in grid.iter().zip(demos) {
        let Some(demo) = demo else {
            continue;
        };
        let l = kset_threshold(*n, *f);
        t.row(&[
            n.to_string(),
            f.to_string(),
            demo.k.to_string(),
            glyph(true).into(),
            demo.runs.to_string(),
            glyph(demo.all_hold).into(),
            demo.max_distinct.to_string(),
            decision_bound(*n, l).to_string(),
        ]);
    }
    println!("{t}");
}

/// E3 — Theorem 8 impossibility side: the k+1-partition construction at
/// the exact border kn = (k+1)f. The grid cells are independent, so they
/// run through the parallel sweep; results come back in grid order, so the
/// table is identical to a sequential pass.
fn e3_theorem8_border() {
    let mut t = Table::new(
        "E3 — Theorem 8 border (kn = (k+1)f): pasted failure-free run",
        &[
            "n",
            "k",
            "f",
            "pasting verified",
            "faulty in run",
            "distinct decisions",
            "violates k-agreement",
        ],
    );
    let grid: Vec<(usize, usize)> = kset_impossibility::THEOREM8_BORDER_GRID.to_vec();
    let demos = sweep(&grid, |_, &(n, k)| border_demo(n, k, 300_000));
    for ((n, k), demo) in grid.iter().zip(demos) {
        let Some(demo) = demo else {
            continue;
        };
        t.row(&[
            n.to_string(),
            k.to_string(),
            demo.f.to_string(),
            glyph(demo.pasted.verified).into(),
            demo.pasted.report.failure_pattern.num_faulty().to_string(),
            demo.pasted.distinct_decisions().to_string(),
            glyph(demo.violates_k_agreement()).into(),
        ]);
    }
    println!("{t}");
}

/// E4 — Theorem 10: (Σk, Ωk) refuted for 2 ≤ k ≤ n−2, with Lemma 9
/// validation and the Bouzid–Travers comparison column.
fn e4_theorem10() {
    let mut t = Table::new(
        "E4 — Theorem 10: (Σk, Ωk) vs k-set agreement, candidate LeaderAdopt",
        &[
            "n",
            "k",
            "paper: impossible",
            "BT[5] covers",
            "outcome",
            "history legal (Lemma 9)",
            "refuted",
        ],
    );
    for n in 5..=8usize {
        for k in 2..=n - 2 {
            let Some(demo) = theorem10_demo(n, k, 200_000) else {
                continue;
            };
            t.row(&[
                n.to_string(),
                k.to_string(),
                glyph(theorem10_impossible(n, k)).into(),
                glyph(bouzid_travers_impossible(n, k)).into(),
                outcome_tag(&demo.analysis.outcome, demo.refuted()),
                glyph(demo.history_legal_for_sigma_omega_k()).into(),
                glyph(demo.refuted()).into(),
            ]);
        }
    }
    println!("{t}");
}

/// E5 — Corollary 13 endpoints: consensus from (Σ, Ω) and (n−1)-set
/// agreement from loneliness, across crash counts.
fn e5_corollary13() {
    use kset_core::algorithms::lonely_set::LonelySetAgreement;
    use kset_core::algorithms::sigma_omega_consensus::SigmaOmegaConsensus;
    use kset_core::runner::run_round_robin_with_oracle;
    use kset_core::task::KSetTask;
    use kset_fd::{LonelinessOracle, RealisticSigmaOmega};
    use kset_sim::{CrashPlan, Time};

    let mut t = Table::new(
        "E5 — Corollary 13 endpoints: k = 1 via (Σ,Ω), k = n−1 via L",
        &[
            "n",
            "k",
            "f (initial)",
            "paper: solvable",
            "holds",
            "distinct",
        ],
    );
    let n = 6;
    for f in 0..n {
        let values = distinct_proposals(n);
        let survivor = f; // lowest non-dead id
        let dead: Vec<ProcessId> = (0..f).map(ProcessId::new).collect();
        // k = 1.
        let oracle = RealisticSigmaOmega::consensus(n, Time::new(20), ProcessId::new(survivor));
        let report = run_round_robin_with_oracle::<SigmaOmegaConsensus, _>(
            values.clone(),
            oracle,
            CrashPlan::initially_dead(dead.clone()),
            400_000,
        );
        let verdict = KSetTask::consensus(n).judge(&values, &report);
        t.row(&[
            n.to_string(),
            "1".into(),
            f.to_string(),
            glyph(corollary13_solvable(n, 1)).into(),
            glyph(verdict.holds()).into(),
            verdict.distinct.to_string(),
        ]);
        // k = n−1.
        let report = run_round_robin_with_oracle::<LonelySetAgreement, _>(
            values.clone(),
            LonelinessOracle::new(n),
            CrashPlan::initially_dead(dead),
            100_000,
        );
        let verdict = KSetTask::set_agreement(n).judge(&values, &report);
        t.row(&[
            n.to_string(),
            (n - 1).to_string(),
            f.to_string(),
            glyph(corollary13_solvable(n, n - 1)).into(),
            glyph(verdict.holds()).into(),
            verdict.distinct.to_string(),
        ]);
    }
    println!("{t}");
}

/// E6 — Lemmas 6/7 on random stage-one graphs: source-component counts vs
/// the ⌊n/(δ+1)⌋ bound.
fn e6_graph_lemmas() {
    let mut t = Table::new(
        "E6 — Lemmas 6/7: source components of stage-one graphs (100 seeds each)",
        &[
            "n",
            "δ",
            "lemma 6",
            "lemma 7",
            "count bound",
            "max sources seen",
            "bound ⌊n/(δ+1)⌋",
        ],
    );
    for (n, delta) in [(6, 1), (6, 2), (9, 2), (12, 2), (12, 3), (16, 3), (20, 4)] {
        let mut ok6 = true;
        let mut ok7 = true;
        let mut okb = true;
        let mut max_sources = 0;
        for seed in 0..100 {
            let g = stage_one_graph(n, delta, seed);
            ok6 &= check_lemma6(&g, delta).is_ok();
            ok7 &= check_lemma7(&g, delta).is_ok();
            okb &= check_source_count_bound(&g, delta).is_ok();
            max_sources = max_sources.max(source_components(&g).len());
        }
        t.row(&[
            n.to_string(),
            delta.to_string(),
            glyph(ok6).into(),
            glyph(ok7).into(),
            glyph(okb).into(),
            max_sources.to_string(),
            (n / (delta + 1)).to_string(),
        ]);
    }
    println!("{t}");
}
