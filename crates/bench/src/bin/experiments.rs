//! The experiments binary: regenerates every border table of the paper,
//! and runs/merges sharded sweeps.
//!
//! ```sh
//! cargo run --release -p kset-bench --bin experiments          # all tables
//! cargo run --release -p kset-bench --bin experiments -- --e4  # one table
//!
//! # Sharded sweeps: run shard 1 of 3 of the border grid, streaming the
//! # records into a self-describing shard file …
//! experiments sweep --grid border --shard 1/3 --out border-1.txt
//! # … the sequential single-process reference of the same grid …
//! experiments sweep --grid border --seq --out border-seq.txt
//! # … the batched schedule: same-shape cells fused into
//! # structure-of-arrays batches of 16, output byte-identical to --seq …
//! experiments sweep --grid scale --batch 16 --out scale-batched.txt
//! # … and merge the shards, verifying exact coverage and (optionally)
//! # that the merged records equal an in-process sequential recompute.
//! experiments merge --out merged.txt --check-against-sequential \
//!     border-0.txt border-1.txt border-2.txt
//!
//! # A sweep killed mid-run leaves a valid partial (kset-sweep v2) file;
//! # resume recomputes only the owed cells and rewrites the completed
//! # file, byte-identical to an uninterrupted sweep.
//! experiments sweep --resume border-1.txt
//!
//! # Fleet mode: a coordinator leases cell ranges to TCP workers, steals
//! # work back from crashed or hung ones, and streams the incrementally
//! # merged file — byte-identical to --seq under any worker churn.
//! experiments coordinate --grid scale --listen 127.0.0.1:7700 --out scale.txt
//! experiments work --connect 127.0.0.1:7700 --name w0
//! experiments work --connect 127.0.0.1:7700 --name w1 --fail-after 5  # chaos
//! ```
//!
//! The merged file is **byte-identical** to the sequential one whenever
//! the shards cover the grid exactly — that identity is the shard-matrix
//! conformance gate in CI. Grid names resolve through
//! [`kset_bench::sweeps`]; cells are citable as `(grid_seed, index)`.
//!
//! The table output is recorded in EXPERIMENTS.md; the "paper" columns are
//! the closed-form borders from the theorems, the "measured" columns come
//! from the simulator constructions. Agreement between the two is the
//! reproduction claim.

use kset_bench::{glyph, Table};
use kset_core::algorithms::floodmin::{floodmin_rounds, FloodMin};
use kset_core::algorithms::two_stage::{decision_bound, kset_threshold};
use kset_core::sync::{run_sync, RoundCrash};
use kset_core::task::distinct_proposals;
use kset_graph::{
    check_lemma6, check_lemma7, check_source_count_bound, source_components, stage_one_graph,
};
use kset_impossibility::theorem10::demo as theorem10_demo;
use kset_impossibility::theorem2::{demo_decide_own, demo_two_stage};
use kset_impossibility::theorem8::{border_demo, possibility_demo};
use kset_impossibility::{
    bouzid_travers_impossible, corollary13_solvable, theorem10_impossible, theorem2_impossible,
    theorem8_solvable, Theorem1Outcome,
};
use kset_sim::sweep::sweep;
use kset_sim::ProcessId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => return sweep_cmd(&args[1..]),
        Some("merge") => return merge_cmd(&args[1..]),
        Some("coordinate") => return coordinate_cmd(&args[1..]),
        Some("work") => return work_cmd(&args[1..]),
        _ => {}
    }
    let want = |tag: &str| args.is_empty() || args.iter().any(|a| a == tag);

    if want("--e1") {
        e1_theorem2();
    }
    if want("--e2") {
        e2_theorem8_possible();
    }
    if want("--e3") {
        e3_theorem8_border();
    }
    if want("--e4") {
        e4_theorem10();
    }
    if want("--e5") {
        e5_corollary13();
    }
    if want("--e6") {
        e6_graph_lemmas();
    }
    if want("--e7") {
        e7_discrete_event();
    }
}

/// E1 — Theorem 2: the partially synchronous border, with the Theorem 1
/// checker run against two candidates at every impossible grid point, and
/// the synchronous contrast column (FloodMin).
fn e1_theorem2() {
    let mut t = Table::new(
        "E1 — Theorem 2 border: k ≤ (n−1)/(n−f) (proc sync, comm async)",
        &[
            "n",
            "f",
            "k",
            "paper: impossible",
            "checker vs DecideOwn",
            "checker vs two-stage(L=n−f)",
            "sync point solvable (FloodMin)",
        ],
    );
    for n in 4..=8usize {
        for (f, k) in [(n - 1, 2), (n - 2, 2), (n - 1, 3), (n - 2, 3)] {
            if k >= n {
                continue;
            }
            let impossible = theorem2_impossible(n, f, k);
            let naive = demo_decide_own(n, f, k, 100_000)
                .map(|d| outcome_tag(&d.analysis.outcome, d.refuted()))
                .unwrap_or_else(|| "n/a (solvable)".into());
            let twostage = demo_two_stage(n, f, k, 200_000)
                .map(|d| outcome_tag(&d.analysis.outcome, d.refuted()))
                .unwrap_or_else(|| "n/a (solvable)".into());
            // Synchronous contrast: FloodMin on the same (n, f, k).
            let values = distinct_proposals(n);
            let crashes: Vec<RoundCrash> = (0..f)
                .map(|i| RoundCrash {
                    round: i / k + 1,
                    pid: ProcessId::new(i),
                    receivers: [ProcessId::new((i + 1) % n)].into(),
                })
                .collect();
            let out = run_sync(
                FloodMin::system(&values, f, k),
                floodmin_rounds(f, k),
                &crashes,
            );
            let sync_ok = out.distinct_decisions().len() <= k;
            t.row(&[
                n.to_string(),
                f.to_string(),
                k.to_string(),
                glyph(impossible).into(),
                naive,
                twostage,
                glyph(sync_ok).into(),
            ]);
        }
    }
    println!("{t}");
}

fn outcome_tag(outcome: &Theorem1Outcome, refuted: bool) -> String {
    let tag = match outcome {
        Theorem1Outcome::DirectViolation { distinct, k } => {
            format!("violated ({distinct}>{k})")
        }
        Theorem1Outcome::ReductionEstablished => "reduced to ⟨D̄⟩-consensus".into(),
        Theorem1Outcome::ConditionAFailed { .. } => "not flagged".into(),
    };
    format!("{tag}{}", if refuted { " ⇒ refuted" } else { "" })
}

/// E2 — Theorem 8 possibility side: the two-stage protocol across the
/// solvable grid, hostile schedules, rotating dead sets. Cells sweep in
/// parallel.
fn e2_theorem8_possible() {
    let mut t = Table::new(
        "E2 — Theorem 8 possibility: two-stage with L = n−f (f initial crashes)",
        &[
            "n",
            "f",
            "k",
            "paper: solvable",
            "runs",
            "all hold",
            "max distinct",
            "bound ⌊n/L⌋",
        ],
    );
    let grid: Vec<(usize, usize)> = vec![(4, 1), (5, 2), (6, 3), (7, 3), (8, 5), (9, 4), (10, 7)];
    let demos = sweep(&grid, |_, &(n, f)| {
        let l = kset_threshold(n, f);
        let k = decision_bound(n, l).max(1);
        theorem8_solvable(n, f, k).then(|| possibility_demo(n, f, k, 6))
    });
    for ((n, f), demo) in grid.iter().zip(demos) {
        let Some(demo) = demo else {
            continue;
        };
        let l = kset_threshold(*n, *f);
        t.row(&[
            n.to_string(),
            f.to_string(),
            demo.k.to_string(),
            glyph(true).into(),
            demo.runs.to_string(),
            glyph(demo.all_hold).into(),
            demo.max_distinct.to_string(),
            decision_bound(*n, l).to_string(),
        ]);
    }
    println!("{t}");
}

/// E3 — Theorem 8 impossibility side: the k+1-partition construction at
/// the exact border kn = (k+1)f. The grid cells are independent, so they
/// run through the parallel sweep; results come back in grid order, so the
/// table is identical to a sequential pass.
fn e3_theorem8_border() {
    let mut t = Table::new(
        "E3 — Theorem 8 border (kn = (k+1)f): pasted failure-free run",
        &[
            "n",
            "k",
            "f",
            "pasting verified",
            "faulty in run",
            "distinct decisions",
            "violates k-agreement",
        ],
    );
    let grid: Vec<(usize, usize)> = kset_impossibility::THEOREM8_BORDER_GRID.to_vec();
    let demos = sweep(&grid, |_, &(n, k)| border_demo(n, k, 300_000));
    for ((n, k), demo) in grid.iter().zip(demos) {
        let Some(demo) = demo else {
            continue;
        };
        t.row(&[
            n.to_string(),
            k.to_string(),
            demo.f.to_string(),
            glyph(demo.pasted.verified).into(),
            demo.pasted.report.failure_pattern.num_faulty().to_string(),
            demo.pasted.distinct_decisions().to_string(),
            glyph(demo.violates_k_agreement()).into(),
        ]);
    }
    println!("{t}");
}

/// E4 — Theorem 10: (Σk, Ωk) refuted for 2 ≤ k ≤ n−2, with Lemma 9
/// validation and the Bouzid–Travers comparison column.
fn e4_theorem10() {
    let mut t = Table::new(
        "E4 — Theorem 10: (Σk, Ωk) vs k-set agreement, candidate LeaderAdopt",
        &[
            "n",
            "k",
            "paper: impossible",
            "BT[5] covers",
            "outcome",
            "history legal (Lemma 9)",
            "refuted",
        ],
    );
    for n in 5..=8usize {
        for k in 2..=n - 2 {
            let Some(demo) = theorem10_demo(n, k, 200_000) else {
                continue;
            };
            t.row(&[
                n.to_string(),
                k.to_string(),
                glyph(theorem10_impossible(n, k)).into(),
                glyph(bouzid_travers_impossible(n, k)).into(),
                outcome_tag(&demo.analysis.outcome, demo.refuted()),
                glyph(demo.history_legal_for_sigma_omega_k()).into(),
                glyph(demo.refuted()).into(),
            ]);
        }
    }
    println!("{t}");
}

/// E5 — Corollary 13 endpoints: consensus from (Σ, Ω) and (n−1)-set
/// agreement from loneliness, across crash counts.
fn e5_corollary13() {
    use kset_core::algorithms::lonely_set::LonelySetAgreement;
    use kset_core::algorithms::sigma_omega_consensus::SigmaOmegaConsensus;
    use kset_core::runner::run_round_robin_with_oracle;
    use kset_core::task::KSetTask;
    use kset_fd::{LonelinessOracle, RealisticSigmaOmega};
    use kset_sim::{CrashPlan, Time};

    let mut t = Table::new(
        "E5 — Corollary 13 endpoints: k = 1 via (Σ,Ω), k = n−1 via L",
        &[
            "n",
            "k",
            "f (initial)",
            "paper: solvable",
            "holds",
            "distinct",
        ],
    );
    let n = 6;
    for f in 0..n {
        let values = distinct_proposals(n);
        let survivor = f; // lowest non-dead id
        let dead: Vec<ProcessId> = (0..f).map(ProcessId::new).collect();
        // k = 1.
        let oracle = RealisticSigmaOmega::consensus(n, Time::new(20), ProcessId::new(survivor));
        let report = run_round_robin_with_oracle::<SigmaOmegaConsensus, _>(
            values.clone(),
            oracle,
            CrashPlan::initially_dead(dead.clone()),
            400_000,
        );
        let verdict = KSetTask::consensus(n).judge(&values, &report);
        t.row(&[
            n.to_string(),
            "1".into(),
            f.to_string(),
            glyph(corollary13_solvable(n, 1)).into(),
            glyph(verdict.holds()).into(),
            verdict.distinct.to_string(),
        ]);
        // k = n−1.
        let report = run_round_robin_with_oracle::<LonelySetAgreement, _>(
            values.clone(),
            LonelinessOracle::new(n),
            CrashPlan::initially_dead(dead),
            100_000,
        );
        let verdict = KSetTask::set_agreement(n).judge(&values, &report);
        t.row(&[
            n.to_string(),
            (n - 1).to_string(),
            f.to_string(),
            glyph(corollary13_solvable(n, n - 1)).into(),
            glyph(verdict.holds()).into(),
            verdict.distinct.to_string(),
        ]);
    }
    println!("{t}");
}

// ---------------------------------------------------------------------------
// Sharded sweeps: `sweep` / `merge` subcommands (the CI shard matrix).
// ---------------------------------------------------------------------------

/// Incrementally fingerprints the bytes written to a shard file, so the
/// summary line can report a whole-file digest without rematerializing it.
/// Uses the release-stable [`kset_sim::StableHasher`]: the digest a shard
/// job prints must match the digest the (separately built) merge job
/// prints for the same bytes.
struct FileDigest(kset_sim::StableHasher);

impl FileDigest {
    fn new() -> Self {
        FileDigest(kset_sim::StableHasher::new())
    }

    fn update(&mut self, chunk: &str) {
        std::hash::Hasher::write(&mut self.0, chunk.as_bytes());
    }

    fn finish(&self) -> u64 {
        std::hash::Hasher::finish(&self.0)
    }
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments sweep --grid <{names}> --out FILE \
         [--grid-seed N] [--shard I/J] [--window N] [--seq | --batch B]\n\
         \u{20}      experiments sweep --resume FILE [--out FILE] [--window N]\n\
         \u{20}      experiments merge --out FILE [--check-against-sequential] SHARD_FILE...\n\
         \u{20}      experiments coordinate --grid <{names}> --listen ADDR --out FILE \
         [--grid-seed N] [--lease-cells N] [--lease-timeout-ms N] [--resume FILE]\n\
         \u{20}      experiments work --connect ADDR [--name NAME] [--fail-after N]",
        names = kset_bench::sweeps::GRID_NAMES.join("|")
    );
    std::process::exit(2);
}

/// `sweep`: run one shard of a catalog grid, streaming records to a
/// self-describing shard file (`--seq` forces the single-threaded
/// sequential reference pass instead of the streaming parallel runner —
/// the files they write are byte-identical, which CI asserts; `--batch B`
/// runs same-shape cells through the grid's structure-of-arrays kernel in
/// batches of at most B lanes, again byte-identical).
///
/// `--resume FILE` reads a partial `kset-sweep v2` shard file — every
/// parameter (grid, seed, shard) comes from its header — recomputes
/// **only the cells the file still owes**, and rewrites the completed
/// file (in place unless `--out` redirects), byte-identical to an
/// uninterrupted sweep.
fn sweep_cmd(args: &[String]) {
    use kset_sim::sweep::ShardSpec;

    let mut grid_name: Option<String> = None;
    let mut grid_seed: u64 = 42;
    let mut shard = ShardSpec::FULL;
    let mut out: Option<String> = None;
    let mut window: usize = 64;
    let mut seq = false;
    let mut batch: Option<usize> = None;
    let mut resume: Option<String> = None;
    let mut explicit = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        if matches!(
            arg.as_str(),
            "--grid" | "--grid-seed" | "--shard" | "--seq" | "--batch"
        ) {
            explicit.push(arg.as_str());
        }
        match arg.as_str() {
            "--grid" => grid_name = Some(value("--grid").clone()),
            "--grid-seed" => {
                grid_seed = value("--grid-seed")
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("bad --grid-seed: {e}")));
            }
            "--shard" => {
                shard = value("--shard")
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("bad --shard: {e}")));
            }
            "--out" => out = Some(value("--out").clone()),
            "--window" => {
                window = value("--window")
                    .parse()
                    .ok()
                    .filter(|&w: &usize| w > 0)
                    .unwrap_or_else(|| usage("bad --window: need an integer of at least 1"));
            }
            "--seq" => seq = true,
            "--batch" => {
                batch = Some(
                    value("--batch")
                        .parse()
                        .ok()
                        .filter(|&b: &usize| b > 0)
                        .unwrap_or_else(|| usage("bad --batch: need an integer of at least 1")),
                );
            }
            "--resume" => resume = Some(value("--resume").clone()),
            other => usage(&format!("unknown sweep argument {other:?}")),
        }
    }
    if let Some(resume) = resume {
        if let Some(flag) = explicit.first() {
            usage(&format!(
                "--resume reads every parameter from the file's header; drop {flag}"
            ));
        }
        return resume_cmd(&resume, out.as_deref().unwrap_or(&resume), window);
    }
    let Some(grid_name) = grid_name else {
        usage("sweep needs --grid");
    };
    let Some(out) = out else {
        usage("sweep needs --out");
    };
    if seq && !shard.is_full() {
        usage("--seq is the whole-grid reference pass; it cannot take --shard");
    }
    if seq && batch.is_some() {
        usage("--seq and --batch are different execution schedules; pick one");
    }
    let grid = kset_bench::sweeps::grid(&grid_name, grid_seed).unwrap_or_else(|e| fail(e));

    let mut writer = ShardWriter::create(&out);
    writer.emit(&grid.header(shard).render());
    let mut records = 0usize;
    let mode;
    if seq {
        mode = "sequential".to_string();
        for record in grid.sweep_sequential() {
            records += 1;
            writer.emit(&format!("{}\n", record.render_line()));
        }
    } else if let Some(batch) = batch {
        mode = format!("batched:{batch}");
        for record in grid.sweep_shard_batched(shard, batch) {
            records += 1;
            writer.emit(&format!("{}\n", record.render_line()));
        }
    } else {
        mode = "streaming".to_string();
        grid.sweep_shard_streaming(shard, window, |record| {
            records += 1;
            writer.emit(&format!("{}\n", record.render_line()));
        });
    }
    writer.emit(&kset_sim::sweep::record::render_footer(records));
    let file_digest = writer.finish();
    println!(
        "sweep grid={grid_name} seed={grid_seed} shard={shard} mode={mode} \
         cells={records} out={out} file-digest={file_digest:#018x}",
    );
}

/// A shard file being written: bytes stream to disk and into the running
/// whole-file digest the summary line reports.
struct ShardWriter {
    path: String,
    file: std::io::BufWriter<std::fs::File>,
    digest: FileDigest,
}

impl ShardWriter {
    fn create(path: &str) -> Self {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| fail(format_args!("cannot create {path}: {e}")));
        ShardWriter {
            path: path.to_string(),
            file: std::io::BufWriter::new(file),
            digest: FileDigest::new(),
        }
    }

    fn emit(&mut self, chunk: &str) {
        use std::io::Write as _;
        self.digest.update(chunk);
        self.file
            .write_all(chunk.as_bytes())
            .unwrap_or_else(|e| fail(format_args!("cannot write {}: {e}", self.path)));
    }

    fn finish(mut self) -> u64 {
        use std::io::Write as _;
        self.file
            .flush()
            .unwrap_or_else(|e| fail(format_args!("cannot write {}: {e}", self.path)));
        self.digest.finish()
    }
}

/// The `sweep --resume` path: parse the partial file, recompute only the
/// owed cells, rewrite the completed shard file.
fn resume_cmd(resume_path: &str, out: &str, window: usize) {
    use kset_sim::sweep::PartialShardFile;

    let text = std::fs::read_to_string(resume_path)
        .unwrap_or_else(|e| fail(format_args!("cannot read {resume_path}: {e}")));
    let partial =
        PartialShardFile::parse(&text).unwrap_or_else(|e| fail(format_args!("{resume_path}: {e}")));
    let header = &partial.header;
    let grid = kset_bench::sweeps::grid(&header.grid, header.grid_seed).unwrap_or_else(|e| fail(e));
    // The header must still describe the catalog grid it names — resuming
    // against a drifted catalog would silently mix semantics.
    let expected = grid.header(header.shard);
    if *header != expected {
        fail(format_args!(
            "{resume_path}: header does not match the current \"{}\" catalog grid \
             (axes or cell count drifted); re-sweep instead of resuming",
            header.grid
        ));
    }
    let resumed = partial.records.len();
    let owed = partial.owed();
    let recomputed = owed.len();

    // Resume must itself be kill-safe: the default output is the partial
    // file, and truncating it before the recompute finishes would destroy
    // exactly the work resuming exists to preserve. Write beside it and
    // rename into place only once the completed file is flushed (a plain
    // `sweep` writes directly on purpose — its streamed partial IS the
    // crash artifact; here the crash artifact already exists).
    let staging = format!("{out}.resume-tmp");
    let mut writer = ShardWriter::create(&staging);
    writer.emit(&header.render());
    for record in &partial.records {
        writer.emit(&format!("{}\n", record.render_line()));
    }
    let mut records = resumed;
    grid.sweep_range_streaming(owed, window, |record| {
        records += 1;
        writer.emit(&format!("{}\n", record.render_line()));
    });
    writer.emit(&kset_sim::sweep::record::render_footer(records));
    let file_digest = writer.finish();
    std::fs::rename(&staging, out)
        .unwrap_or_else(|e| fail(format_args!("cannot move {staging} into {out}: {e}")));
    println!(
        "sweep grid={} seed={} shard={} mode=resume resumed={resumed} \
         recomputed={recomputed} cells={records} out={out} file-digest={file_digest:#018x}",
        header.grid, header.grid_seed, header.shard,
    );
}

/// `merge`: reassemble per-shard files into the canonical full-grid file,
/// verifying exact coverage; `--check-against-sequential` additionally
/// recomputes the whole grid in-process and demands identical records.
fn merge_cmd(args: &[String]) {
    use kset_sim::sweep::{merge, ShardFile, ShardSpec};

    let mut out: Option<String> = None;
    let mut check = false;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--out needs a value"))
                        .clone(),
                );
            }
            "--check-against-sequential" => check = true,
            flag if flag.starts_with("--") => usage(&format!("unknown merge argument {flag:?}")),
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        usage("merge needs at least one shard file");
    }
    let shards: Vec<ShardFile> = paths
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
            ShardFile::parse(&text).unwrap_or_else(|e| fail(format_args!("{path}: {e}")))
        })
        .collect();
    let merged = merge(&shards).unwrap_or_else(|e| fail(e));
    let rendered = merged.render();
    let mut digest = FileDigest::new();
    digest.update(&rendered);
    println!(
        "merge grid={} seed={} shards={} cells={} file-digest={:#018x}",
        merged.header.grid,
        merged.header.grid_seed,
        shards.len(),
        merged.records.len(),
        digest.finish(),
    );
    if let Some(out) = &out {
        std::fs::write(out, &rendered)
            .unwrap_or_else(|e| fail(format_args!("cannot write {out}: {e}")));
    }
    if check {
        let grid = kset_bench::sweeps::grid(&merged.header.grid, merged.header.grid_seed)
            .unwrap_or_else(|e| fail(e));
        let sequential = ShardFile {
            header: grid.header(ShardSpec::FULL),
            records: grid.sweep_sequential(),
        };
        for (m, s) in merged.records.iter().zip(&sequential.records) {
            if m != s {
                fail(format_args!(
                    "cell {} diverges from the sequential recompute: \
                     merged {m:?}, sequential {s:?}",
                    m.index
                ));
            }
        }
        if rendered != sequential.render() {
            fail("merged file is not byte-identical to the sequential recompute");
        }
        println!(
            "check grid={} seed={}: merged == sequential ({} cells)",
            merged.header.grid,
            merged.header.grid_seed,
            merged.records.len(),
        );
    }
}

/// Coordinator-side progress log: one stderr line per scheduling event,
/// driven by the fleet's typed observer hooks (stdout stays reserved for
/// the machine-readable listening/summary lines).
struct LogObserver;

impl kset_sim::fleet::FleetObserver for LogObserver {
    fn on_worker_connected(&mut self, worker: &str) {
        eprintln!("fleet: worker {worker} connected");
    }
    fn on_lease_granted(&mut self, lease: u64, worker: &str, range: &std::ops::Range<usize>) {
        eprintln!(
            "fleet: lease {lease} -> {worker}: cells {}..{}",
            range.start, range.end
        );
    }
    fn on_lease_expired(&mut self, lease: u64, worker: &str, remainder: &std::ops::Range<usize>) {
        eprintln!(
            "fleet: lease {lease} ({worker}) expired; reassigning {}..{}",
            remainder.start, remainder.end
        );
    }
    fn on_worker_lost(&mut self, worker: &str) {
        eprintln!("fleet: worker {worker} lost");
    }
    fn on_protocol_fault(&mut self, worker: &str) {
        eprintln!("fleet: worker {worker} violated the protocol; cut off");
    }
    fn on_stale_dropped(&mut self, lease: u64) {
        eprintln!("fleet: stale message for dead lease {lease} dropped");
    }
    fn on_complete(&mut self, cells: usize) {
        eprintln!("fleet: all {cells} cells merged");
    }
}

/// `coordinate`: serve a catalog grid to fleet workers until every cell
/// has merged, streaming the incrementally merged file to `--out` (always
/// a valid partial-file prefix, so a killed coordinator can be restarted
/// with `--resume` on its own output). The final file is byte-identical
/// to `sweep --seq` of the same grid — the fleet CI gate `cmp`s exactly
/// that.
fn coordinate_cmd(args: &[String]) {
    use kset_sim::fleet::{Coordinator, CoordinatorConfig, LeaseParams};
    use kset_sim::sweep::{PartialShardFile, ShardSpec};

    let mut grid_name: Option<String> = None;
    let mut grid_seed: u64 = 42;
    let mut listen: Option<String> = None;
    let mut out: Option<String> = None;
    let mut lease_cells: usize = 4;
    let mut lease_timeout_ms: u64 = 30_000;
    let mut poll_ms: u64 = 10;
    let mut resume: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--grid" => grid_name = Some(value("--grid").clone()),
            "--grid-seed" => {
                grid_seed = value("--grid-seed")
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("bad --grid-seed: {e}")));
            }
            "--listen" => listen = Some(value("--listen").clone()),
            "--out" => out = Some(value("--out").clone()),
            "--lease-cells" => {
                lease_cells = value("--lease-cells")
                    .parse()
                    .ok()
                    .filter(|&c: &usize| c > 0)
                    .unwrap_or_else(|| usage("bad --lease-cells: need an integer of at least 1"));
            }
            "--lease-timeout-ms" => {
                lease_timeout_ms = value("--lease-timeout-ms")
                    .parse()
                    .ok()
                    .filter(|&t: &u64| t > 0)
                    .unwrap_or_else(|| {
                        usage("bad --lease-timeout-ms: need an integer of at least 1")
                    });
            }
            "--poll-ms" => {
                poll_ms = value("--poll-ms")
                    .parse()
                    .ok()
                    .filter(|&t: &u64| t > 0)
                    .unwrap_or_else(|| usage("bad --poll-ms: need an integer of at least 1"));
            }
            "--resume" => resume = Some(value("--resume").clone()),
            other => usage(&format!("unknown coordinate argument {other:?}")),
        }
    }
    let Some(grid_name) = grid_name else {
        usage("coordinate needs --grid");
    };
    let Some(listen) = listen else {
        usage("coordinate needs --listen");
    };
    let Some(out) = out else {
        usage("coordinate needs --out");
    };
    let grid = kset_bench::sweeps::grid(&grid_name, grid_seed).unwrap_or_else(|e| fail(e));
    let grid_id = kset_bench::fleet::grid_id(&grid);

    // `--resume FILE` seeds the merge from a partial coordinator artifact.
    // Like `sweep --resume`, the rewrite must be kill-safe when it targets
    // the partial file itself: stage beside it, rename once complete. A
    // fresh run writes `--out` directly — the streamed partial IS the
    // crash artifact.
    let resume_records = match &resume {
        None => Vec::new(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
            let partial = PartialShardFile::parse(&text)
                .unwrap_or_else(|e| fail(format_args!("{path}: {e}")));
            let expected = grid.header(ShardSpec::FULL);
            if partial.header != expected {
                fail(format_args!(
                    "{path}: header does not match the current \"{grid_name}\" catalog \
                     grid (fleet artifacts are always full-grid, shard 0/1); \
                     re-coordinate instead of resuming"
                ));
            }
            partial.records
        }
    };
    let resumed = resume_records.len();

    let config = CoordinatorConfig {
        lease: LeaseParams {
            cells: lease_cells,
            timeout: std::time::Duration::from_millis(lease_timeout_ms),
        },
        poll: std::time::Duration::from_millis(poll_ms),
    };
    let coordinator =
        Coordinator::bind(&listen, grid_id, resume_records, config).unwrap_or_else(|e| fail(e));
    let addr = coordinator.local_addr().unwrap_or_else(|e| fail(e));
    println!("coordinate listening on {addr} grid={grid_name} seed={grid_seed}");
    // The line above is how spawning tests/scripts learn the bound port;
    // make sure it crosses a pipe before the (potentially long) run.
    {
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }

    let staging = resume.as_deref().map(|_| format!("{out}.resume-tmp"));
    let write_path = staging.as_deref().unwrap_or(&out);
    let mut writer = ShardWriter::create(write_path);
    let mut log = LogObserver;
    let (_file, counts) = coordinator
        .run(&mut log, |chunk| writer.emit(chunk))
        .unwrap_or_else(|e| fail(e));
    let file_digest = writer.finish();
    if let Some(staging) = &staging {
        std::fs::rename(staging, &out)
            .unwrap_or_else(|e| fail(format_args!("cannot move {staging} into {out}: {e}")));
    }
    println!(
        "coordinate grid={grid_name} seed={grid_seed} cells={merged} resumed={resumed} \
         workers={workers} leases={leases} completed={completed} expired={expired} \
         stale={stale} lost={lost} faults={faults} out={out} file-digest={file_digest:#018x}",
        merged = counts.merged,
        workers = counts.workers,
        leases = counts.leases,
        completed = counts.completed,
        expired = counts.expired,
        stale = counts.stale,
        lost = counts.lost,
        faults = counts.faults,
    );
}

/// `work`: one fleet worker computing catalog cells for the coordinator at
/// `--connect` until it says fin. `--fail-after N` is deterministic fault
/// injection — the worker drops its connection cold after computing N
/// cells (exit code 3), which is what the chaos gates use to kill workers
/// mid-range on purpose.
fn work_cmd(args: &[String]) {
    use kset_sim::fleet::{run_worker, WorkerConfig};

    let mut connect: Option<String> = None;
    let mut name = "worker".to_string();
    let mut fail_after: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--connect" => connect = Some(value("--connect").clone()),
            "--name" => name = value("--name").clone(),
            "--fail-after" => {
                fail_after = Some(
                    value("--fail-after")
                        .parse()
                        .unwrap_or_else(|e| usage(&format!("bad --fail-after: {e}"))),
                );
            }
            other => usage(&format!("unknown work argument {other:?}")),
        }
    }
    let Some(connect) = connect else {
        usage("work needs --connect");
    };
    let config = WorkerConfig { name, fail_after };
    let report = run_worker(&connect, &config, kset_bench::fleet::catalog_source())
        .unwrap_or_else(|e| fail(e));
    println!(
        "work name={} leases={} cells={} injected-failure={}",
        config.name,
        report.leases,
        report.cells,
        glyph(report.injected_failure),
    );
    if report.injected_failure {
        std::process::exit(3);
    }
}

/// E6 — Lemmas 6/7 on random stage-one graphs: source-component counts vs
/// the ⌊n/(δ+1)⌋ bound.
fn e6_graph_lemmas() {
    let mut t = Table::new(
        "E6 — Lemmas 6/7: source components of stage-one graphs (100 seeds each)",
        &[
            "n",
            "δ",
            "lemma 6",
            "lemma 7",
            "count bound",
            "max sources seen",
            "bound ⌊n/(δ+1)⌋",
        ],
    );
    for (n, delta) in [(6, 1), (6, 2), (9, 2), (12, 2), (12, 3), (16, 3), (20, 4)] {
        let mut ok6 = true;
        let mut ok7 = true;
        let mut okb = true;
        let mut max_sources = 0;
        for seed in 0..100 {
            let g = stage_one_graph(n, delta, seed);
            ok6 &= check_lemma6(&g, delta).is_ok();
            ok7 &= check_lemma7(&g, delta).is_ok();
            okb &= check_source_count_bound(&g, delta).is_ok();
            max_sources = max_sources.max(source_components(&g).len());
        }
        t.row(&[
            n.to_string(),
            delta.to_string(),
            glyph(ok6).into(),
            glyph(ok7).into(),
            glyph(okb).into(),
            max_sources.to_string(),
            (n / (delta + 1)).to_string(),
        ]);
    }
    println!("{t}");
}

/// E7 — the discrete-event substrate: three-substrate agreement over the
/// Theorem 8 border grid, then the timed family's idle-skip — the virtual
/// horizon grows linearly with the latency bound while the executed units
/// stay constant.
fn e7_discrete_event() {
    use kset_core::scenario::{differential, RoundAdapter};
    use kset_sim::des::Latency;
    use kset_sim::scenario::{Scenario, ScheduleFamily};
    use kset_sim::Engine;

    let mut t = Table::new(
        "E7a — three substrates on the Theorem 8 border grid",
        &["n", "k", "f", "sim = lock", "des = sim", "units sim/des"],
    );
    for cell in kset_impossibility::theorem8_border_cells(42) {
        let scenario = Scenario::from_cell(&cell);
        let report = match differential::check::<FloodMin>(&scenario) {
            Ok(report) => report,
            Err(_) => continue,
        };
        t.row(&[
            cell.n.to_string(),
            cell.k.to_string(),
            cell.f.to_string(),
            glyph(report.agrees()).into(),
            glyph(report.des.decisions == report.sim.decisions).into(),
            format!("{}/{}", report.sim.units, report.des.units),
        ]);
    }
    println!("{t}");

    let mut t = Table::new(
        "E7b — timed family, fixed latency d (n=8, f=3, k=1): idle time is skipped",
        &["d", "virtual horizon", "units", "distinct", "decided"],
    );
    for d in [1u64, 4, 64, 1024] {
        let scenario = Scenario::favourable(8, 3, 1).with_schedule(ScheduleFamily::Timed {
            latency: Latency::fixed(d),
            gst: 0,
            seed: 42,
        });
        let Ok(mut engine) = scenario.to_des::<RoundAdapter<FloodMin>>() else {
            continue;
        };
        engine.drive(scenario.max_units);
        t.row(&[
            d.to_string(),
            engine.now().to_string(),
            engine.units().to_string(),
            engine.distinct_decisions().len().to_string(),
            glyph(engine.done()).into(),
        ]);
    }
    println!("{t}");
}
