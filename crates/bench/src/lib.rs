//! # kset-bench — experiment harness
//!
//! Shared table-formatting helpers for the `experiments` binary and the
//! Criterion benches. Each experiment (E1–E7, see DESIGN.md §4) regenerates
//! one of the paper's borders or validates one of its constructions; the
//! binary prints the rows recorded in EXPERIMENTS.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;

pub mod fleet;
pub mod sweeps;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable cells.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, " {:w$} |", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.header);
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders a boolean as the table glyphs used throughout EXPERIMENTS.md.
pub fn glyph(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.push(&[1, 2]);
        t.push(&[333, 4]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| a   | bbbb |"));
        assert!(s.contains("| 333 | 4    |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_rejected() {
        let mut t = Table::new("demo", &["a"]);
        t.push(&[1, 2]);
    }
}
