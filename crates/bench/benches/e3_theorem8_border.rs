//! E3 — Theorem 8 border construction: cost of building and verifying the
//! k+1-partition pasted run as n and k grow, plus the parallel-sweep
//! speedup over the whole border grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kset_impossibility::theorem8::border_demo;
use kset_impossibility::THEOREM8_BORDER_GRID;
use kset_sim::sweep::{sweep, sweep_seq};

fn bench_border(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_theorem8_border");
    group.sample_size(10);
    for (n, k) in [(4usize, 1usize), (8, 1), (6, 2), (12, 2), (12, 3), (20, 4)] {
        group.bench_with_input(
            BenchmarkId::new("paste_and_verify", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| {
                    let demo = border_demo(n, k, 500_000).expect("border point");
                    assert!(demo.violates_k_agreement());
                });
            },
        );
    }
    group.finish();
}

/// The whole border grid, sequentially vs through the parallel sweep —
/// the wall-clock win of the sweep module on real workload.
fn bench_border_grid_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_border_grid");
    group.sample_size(10);
    let grid: Vec<(usize, usize)> = THEOREM8_BORDER_GRID.to_vec();
    let run_cell = |_i: usize, &(n, k): &(usize, usize)| {
        let demo = border_demo(n, k, 300_000).expect("border point");
        assert!(demo.violates_k_agreement());
        demo.pasted.distinct_decisions()
    };
    group.bench_function("sequential", |b| {
        b.iter(|| sweep_seq(&grid, run_cell));
    });
    group.bench_function("parallel_sweep", |b| {
        b.iter(|| sweep(&grid, run_cell));
    });
    group.finish();
}

criterion_group!(benches, bench_border, bench_border_grid_sweep);
criterion_main!(benches);
