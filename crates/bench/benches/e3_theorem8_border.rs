//! E3 — Theorem 8 border construction: cost of building and verifying the
//! k+1-partition pasted run as n and k grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kset_impossibility::theorem8::border_demo;

fn bench_border(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_theorem8_border");
    group.sample_size(10);
    for (n, k) in [(4usize, 1usize), (8, 1), (6, 2), (12, 2), (12, 3), (20, 4)] {
        group.bench_with_input(BenchmarkId::new("paste_and_verify", format!("n{n}_k{k}")), &(n, k), |b, &(n, k)| {
            b.iter(|| {
                let demo = border_demo(n, k, 500_000).expect("border point");
                assert!(demo.violates_k_agreement());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_border);
criterion_main!(benches);
