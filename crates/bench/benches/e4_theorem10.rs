//! E4 — Theorem 10 construction: cost of the full (Σ′k, Ω′k) adversary
//! playbook (solo runs with the split scheduler, pasting, restriction
//! replay, Lemma 9 history validation) across (n, k).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kset_impossibility::theorem10::demo;

fn bench_theorem10(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_theorem10");
    group.sample_size(10);
    for (n, k) in [(5usize, 2usize), (6, 3), (8, 4), (10, 5), (12, 6)] {
        group.bench_with_input(
            BenchmarkId::new("playbook", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| {
                    let d = demo(n, k, 300_000).expect("in range");
                    assert!(d.refuted());
                    assert!(d.history_legal_for_sigma_omega_k());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_theorem10);
criterion_main!(benches);
