//! E2 — Theorem 8 possibility side: latency (steps) of the two-stage
//! protocol to termination as n grows, under fair and hostile schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kset_core::algorithms::two_stage::{kset_threshold, two_stage_inputs, TwoStage};
use kset_core::runner::{run_round_robin, run_seeded};
use kset_core::task::distinct_proposals;
use kset_sim::{CrashPlan, ProcessId};

fn bench_two_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_two_stage");
    group.sample_size(10);
    for n in [4usize, 6, 8, 12, 16] {
        let f = n / 3;
        let l = kset_threshold(n, f);
        let dead: Vec<ProcessId> = (0..f).map(|i| ProcessId::new(n - 1 - i)).collect();
        group.bench_with_input(BenchmarkId::new("round_robin", n), &n, |b, _| {
            b.iter(|| {
                let report = run_round_robin::<TwoStage>(
                    two_stage_inputs(l, &distinct_proposals(n)),
                    CrashPlan::initially_dead(dead.clone()),
                    1_000_000,
                );
                assert!(report.all_correct_decided());
            });
        });
        group.bench_with_input(BenchmarkId::new("seeded_random", n), &n, |b, _| {
            b.iter(|| {
                let report = run_seeded::<TwoStage>(
                    two_stage_inputs(l, &distinct_proposals(n)),
                    CrashPlan::initially_dead(dead.clone()),
                    42,
                    5_000_000,
                );
                assert!(report.all_correct_decided());
            });
        });
    }
    group.finish();
}

/// Ablation: threshold L vs termination cost and decision spread.
fn bench_threshold_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_threshold_ablation");
    group.sample_size(10);
    let n = 12usize;
    for l in [1usize, 2, 3, 4, 6, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| {
                let report = run_round_robin::<TwoStage>(
                    two_stage_inputs(l, &distinct_proposals(n)),
                    CrashPlan::none(),
                    1_000_000,
                );
                assert!(report.all_correct_decided());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_two_stage, bench_threshold_ablation);
criterion_main!(benches);
