//! E5 — Corollary 13 endpoints: termination latency of (Σ, Ω) consensus
//! and loneliness-based (n−1)-set agreement as n grows, plus the effect of
//! the Ω stabilization time on consensus latency (ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kset_core::algorithms::lonely_set::LonelySetAgreement;
use kset_core::algorithms::sigma_omega_consensus::SigmaOmegaConsensus;
use kset_core::runner::run_round_robin_with_oracle;
use kset_core::task::distinct_proposals;
use kset_fd::{LonelinessOracle, RealisticSigmaOmega};
use kset_sim::{CrashPlan, ProcessId, Time};

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_sigma_omega_consensus");
    group.sample_size(10);
    for n in [3usize, 5, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let oracle = RealisticSigmaOmega::consensus(n, Time::ZERO, ProcessId::new(0));
                let report = run_round_robin_with_oracle::<SigmaOmegaConsensus, _>(
                    distinct_proposals(n),
                    oracle,
                    CrashPlan::none(),
                    500_000,
                );
                assert!(report.all_correct_decided());
            });
        });
    }
    group.finish();
}

fn bench_stabilization_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_gst_ablation");
    group.sample_size(10);
    let n = 5usize;
    for tgst in [0u64, 50, 200, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(tgst), &tgst, |b, &tgst| {
            b.iter(|| {
                let oracle = RealisticSigmaOmega::consensus(n, Time::new(tgst), ProcessId::new(1));
                let report = run_round_robin_with_oracle::<SigmaOmegaConsensus, _>(
                    distinct_proposals(n),
                    oracle,
                    CrashPlan::none(),
                    1_000_000,
                );
                assert!(report.all_correct_decided());
            });
        });
    }
    group.finish();
}

fn bench_lonely_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_lonely_set");
    group.sample_size(10);
    for n in [3usize, 6, 12, 24] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let report = run_round_robin_with_oracle::<LonelySetAgreement, _>(
                    distinct_proposals(n),
                    LonelinessOracle::new(n),
                    CrashPlan::none(),
                    200_000,
                );
                assert!(report.all_correct_decided());
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_consensus,
    bench_stabilization_ablation,
    bench_lonely_set
);
criterion_main!(benches);
