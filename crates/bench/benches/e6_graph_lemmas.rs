//! E6 — graph substrate: SCC/condensation/source-component throughput on
//! stage-one graphs, and the Lemma 6/7 checkers as verification cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kset_graph::{check_lemma6, check_lemma7, source_components, stage_one_graph, tarjan_scc};

fn bench_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_tarjan_scc");
    for n in [32usize, 128, 512, 2048] {
        let g = stage_one_graph(n, 3, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let scc = tarjan_scc(g);
                assert!(scc.count() >= 1);
            });
        });
    }
    group.finish();
}

fn bench_source_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_source_components");
    for n in [32usize, 128, 512, 2048] {
        let g = stage_one_graph(n, 3, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let s = source_components(g);
                assert!(!s.is_empty());
            });
        });
    }
    group.finish();
}

fn bench_lemma_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_lemma_checkers");
    for n in [32usize, 128, 512] {
        let g = stage_one_graph(n, 3, 7);
        group.bench_with_input(BenchmarkId::new("lemma6", n), &g, |b, g| {
            b.iter(|| check_lemma6(g, 3).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("lemma7", n), &g, |b, g| {
            b.iter(|| check_lemma7(g, 3).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scc,
    bench_source_components,
    bench_lemma_checkers
);
criterion_main!(benches);
