//! E7 — simulator engineering figures: steps/s per scheduler, pasting
//! cost vs run length, and the delivery-batching ablation (one message per
//! step vs batch — the DDS receive granularity dimension; the border
//! results are invariant, the throughput is not).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use kset_core::algorithms::two_stage::{two_stage_inputs, TwoStage};
use kset_core::task::distinct_proposals;
use kset_impossibility::lemma12_no_fd;
use kset_sim::sched::partition::{PartitionScheduler, ReleasePolicy};
use kset_sim::sched::random::SeededRandom;
use kset_sim::{CrashPlan, ProcessId, Simulation};
use std::collections::BTreeSet;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_steps_per_second");
    let n = 8usize;
    let steps = 20_000u64;
    group.throughput(Throughput::Elements(steps));
    group.sample_size(10);

    group.bench_function("round_robin_raw", |b| {
        // Raw engine throughput: drive steps directly, bypassing the
        // stop-on-decided run loop.
        b.iter(|| {
            let mut sim: Simulation<TwoStage, _> = Simulation::new(
                two_stage_inputs(3, &distinct_proposals(n)),
                CrashPlan::none(),
            );
            for s in 0..steps {
                let pid = ProcessId::new((s as usize) % n);
                sim.step(pid, kset_sim::sched::Delivery::All).unwrap();
            }
        });
    });

    group.bench_function("seeded_random", |b| {
        b.iter(|| {
            let mut sim: Simulation<TwoStage, _> = Simulation::new(
                two_stage_inputs(3, &distinct_proposals(n)),
                CrashPlan::none(),
            );
            let mut sched = SeededRandom::new(7);
            let _ = sim.run(&mut sched, steps);
        });
    });

    group.bench_function("partition", |b| {
        let blocks: Vec<BTreeSet<ProcessId>> = vec![
            (0..n / 2).map(ProcessId::new).collect(),
            (n / 2..n).map(ProcessId::new).collect(),
        ];
        b.iter(|| {
            let mut sim: Simulation<TwoStage, _> = Simulation::new(
                two_stage_inputs(3, &distinct_proposals(n)),
                CrashPlan::none(),
            );
            let mut sched = PartitionScheduler::new(blocks.clone(), ReleasePolicy::AfterAllDecided);
            let _ = sim.run(&mut sched, steps);
        });
    });

    group.finish();
}

fn bench_pasting_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_pasting_cost");
    group.sample_size(10);
    for blocks in [2usize, 3, 4, 6] {
        let n = blocks * 3;
        let parts: Vec<BTreeSet<ProcessId>> = (0..blocks)
            .map(|b| (b * 3..(b + 1) * 3).map(ProcessId::new).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &parts, |b, parts| {
            b.iter(|| {
                let pasted = lemma12_no_fd::<TwoStage>(
                    || two_stage_inputs(3, &distinct_proposals(n)),
                    parts,
                    500_000,
                );
                assert!(pasted.verified);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_pasting_cost);
criterion_main!(benches);
