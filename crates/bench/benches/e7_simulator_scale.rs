//! E7 — simulator engineering figures: steps/s per scheduler, pasting
//! cost vs run length, buffer-receive microbenches (the bitset/`SenderMap`
//! guardrail), and Engine-driven execution of both substrates.
//!
//! The `e7_buffer_receive` group is the perf guardrail for the
//! `ProcessSet`/`SenderMap` migration: `take_all_from_bitset` exercises the
//! filtered-receive hot path with the dense representation, while
//! `btree_baseline` re-enacts the pre-migration `BTreeMap`/`BTreeSet` data
//! flow on identical traffic, so the win stays visible in the perf
//! trajectory commit over commit.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use kset_core::algorithms::floodmin::{floodmin_rounds, FloodMin};
use kset_core::algorithms::two_stage::{two_stage_inputs, TwoStage};
use kset_core::scenario::{differential, to_lockstep, RoundAdapter};
use kset_core::sync::LockStep;
use kset_core::task::distinct_proposals;
use kset_impossibility::lemma12_no_fd;
use kset_sim::observe::{EventCounter, NoObserver};
use kset_sim::sched::partition::{PartitionScheduler, ReleasePolicy};
use kset_sim::sched::random::SeededRandom;
use kset_sim::sched::round_robin::RoundRobin;
use kset_sim::{
    Buffer, CrashPlan, Engine, Envelope, MsgId, ProcessId, ProcessSet, Scenario, SenderMap,
    SimEngine, Simulation, Time, WideSet,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_steps_per_second");
    let n = 8usize;
    let steps = 20_000u64;
    group.throughput(Throughput::Elements(steps));
    group.sample_size(10);

    group.bench_function("round_robin_raw", |b| {
        // Raw engine throughput: drive steps directly, bypassing the
        // stop-on-decided run loop.
        b.iter(|| {
            let mut sim: Simulation<TwoStage, _> = Simulation::new(
                two_stage_inputs(3, &distinct_proposals(n)),
                CrashPlan::none(),
            );
            for s in 0..steps {
                let pid = ProcessId::new((s as usize) % n);
                sim.step(pid, kset_sim::sched::Delivery::All).unwrap();
            }
        });
    });

    group.bench_function("seeded_random", |b| {
        b.iter(|| {
            let mut sim: Simulation<TwoStage, _> = Simulation::new(
                two_stage_inputs(3, &distinct_proposals(n)),
                CrashPlan::none(),
            );
            let mut sched = SeededRandom::new(7);
            let _ = sim.run(&mut sched, steps);
        });
    });

    group.bench_function("partition", |b| {
        let blocks: Vec<ProcessSet> = vec![
            (0..n / 2).map(ProcessId::new).collect(),
            (n / 2..n).map(ProcessId::new).collect(),
        ];
        b.iter(|| {
            let mut sim: Simulation<TwoStage, _> = Simulation::new(
                two_stage_inputs(3, &distinct_proposals(n)),
                CrashPlan::none(),
            );
            let mut sched = PartitionScheduler::new(blocks.clone(), ReleasePolicy::AfterAllDecided);
            let _ = sim.run(&mut sched, steps);
        });
    });

    group.finish();
}

/// Both substrates driven through the unified Engine trait.
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_engine_substrates");
    group.sample_size(10);
    let n = 8usize;

    group.bench_function("sim_engine_two_stage", |b| {
        b.iter(|| {
            let sim: Simulation<TwoStage, _> = Simulation::new(
                two_stage_inputs(3, &distinct_proposals(n)),
                CrashPlan::none(),
            );
            let mut engine = SimEngine::new(sim, RoundRobin::new());
            let status = engine.drive(100_000);
            black_box(status.steps)
        });
    });

    group.bench_function("lockstep_engine_floodmin", |b| {
        let values = distinct_proposals(n);
        let (f, k) = (3usize, 1usize);
        b.iter(|| {
            let mut engine =
                LockStep::new(FloodMin::system(&values, f, k), floodmin_rounds(f, k), &[]);
            let status = engine.drive(u64::MAX);
            assert_eq!(engine.distinct_decisions().len(), 1);
            black_box(status.steps)
        });
    });

    group.finish();
}

/// The bitset/SenderMap guardrail: buffer receive and round-inbox
/// microbenches, with the pre-migration BTree data flow as the baseline.
fn bench_buffer_receive(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_buffer_receive");
    let n = 16usize;
    let per_source = 8usize;
    let msgs = (n * per_source) as u64;
    group.throughput(Throughput::Elements(msgs));
    group.sample_size(50);

    let envelopes: Vec<Envelope<u64>> = (0..msgs)
        .map(|i| {
            Envelope::new(
                MsgId::new(i),
                ProcessId::new((i as usize) % n),
                ProcessId::new(0),
                Time::new(i),
                i * 3,
            )
        })
        .collect();
    let allowed: ProcessSet = (0..n / 2).map(ProcessId::new).collect();

    group.bench_function("take_all_from_bitset", |b| {
        b.iter(|| {
            let mut buf: Buffer<u64> = Buffer::new();
            for env in &envelopes {
                buf.push(env.clone());
            }
            let got = buf.take_all_from(allowed);
            let rest = buf.take_all();
            black_box((got.len(), rest.len()))
        });
    });

    group.bench_function("btree_baseline", |b| {
        // The pre-migration representation: BTreeMap of per-source queues
        // filtered through a BTreeSet, on identical traffic.
        let allowed_btree: BTreeSet<ProcessId> = (0..n / 2).map(ProcessId::new).collect();
        b.iter(|| {
            let mut by_src: BTreeMap<ProcessId, VecDeque<Envelope<u64>>> = BTreeMap::new();
            for env in &envelopes {
                by_src.entry(env.src).or_default().push_back(env.clone());
            }
            let mut got = Vec::new();
            for (src, queue) in &mut by_src {
                if allowed_btree.contains(src) {
                    got.extend(queue.drain(..));
                }
            }
            let mut rest = Vec::new();
            for queue in by_src.values_mut() {
                rest.extend(queue.drain(..));
            }
            black_box((got.len(), rest.len()))
        });
    });

    group.bench_function("sender_map_round_inbox", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for round in 0..per_source as u64 {
                let mut inbox: SenderMap<u64> = SenderMap::with_capacity(n);
                for i in 0..n {
                    inbox.insert(ProcessId::new(i), round * 100 + i as u64);
                }
                acc += inbox.values().copied().min().unwrap_or(0);
                acc += inbox.senders().len() as u64;
            }
            black_box(acc)
        });
    });

    group.bench_function("btree_round_inbox_baseline", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for round in 0..per_source as u64 {
                let mut inbox: BTreeMap<ProcessId, u64> = BTreeMap::new();
                for i in 0..n {
                    inbox.insert(ProcessId::new(i), round * 100 + i as u64);
                }
                acc += inbox.values().copied().min().unwrap_or(0);
                acc += inbox.keys().count() as u64;
            }
            black_box(acc)
        });
    });

    group.finish();
}

/// SplitMix64, for reproducible pseudo-random bit patterns without pulling
/// a generator into the measured loops.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The wide-bitset guardrail: the n ≤ 128 window must stay at
/// u128-register speed after the width bump to 512, and the wide ops must
/// stay far ahead of the pre-bitset `BTreeSet` data flow at n = 512.
///
/// Four representations run the identical op mix (∪, ∩, \, ⊆, popcount)
/// over the same 256 pseudo-random set pairs:
///
/// * `u128_reference_n128` — the old representation's cost, re-enacted on
///   raw `u128`s;
/// * `wideset2_n128` — `WideSet<2>`, the same 128-bit window behind the
///   width-generic API (any gap here is pure abstraction overhead);
/// * `processet_w8_n128` — the shipping `ProcessSet` (W = 8) on n ≤ 128
///   members: the price every existing workload pays for the headroom;
/// * `processet_w8_n512` / `btreeset_n512` — the new territory, against
///   the `BTreeSet<ProcessId>` baseline.
///
/// The W = 8 specialization pass (interleaved popcount accumulators in
/// `len`, single-accumulator branch-free `is_subset`/`is_disjoint`/
/// `is_empty`, `#[inline]` on every hot op) moved this box on the CI
/// reference machine (5 samples): `processet_w8_n512` 5.25µs → 4.67µs
/// per 256 op-mix pairs (~11%), `iterate_members_w8_n512` 541ns → 486ns
/// (~10%), `processet_w8_n128` flat at ~4.7µs. The remaining gap to
/// `wideset2_n128` (1.24µs) is the 4× limb traffic a 512-capacity set
/// pays on a 128-bit population — the batched SoA kernels (`e7_batched`)
/// are the lever that amortizes it across cells.
fn bench_wide_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_wide_sets");
    let pairs = 256usize;
    group.throughput(Throughput::Elements(pairs as u64));
    group.sample_size(50);

    let patterns: Vec<u128> = (0..=pairs)
        .map(|i| (mix(i as u64) as u128) << 64 | mix(i as u64 ^ 0xABCD) as u128)
        .collect();

    group.bench_function("u128_reference_n128", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for w in patterns.windows(2) {
                let (x, y) = (w[0], w[1]);
                acc += (x | y).count_ones() + (x & y).count_ones() + (x & !y).count_ones();
                acc += u32::from(x & !y == 0);
            }
            black_box(acc)
        });
    });

    let wide2: Vec<WideSet<2>> = patterns.iter().map(|&p| WideSet::from_bits(p)).collect();
    group.bench_function("wideset2_n128", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for w in wide2.windows(2) {
                let (x, y) = (w[0], w[1]);
                acc += x.union(y).len() + x.intersection(y).len() + x.difference(y).len();
                acc += usize::from(x.is_subset(y));
            }
            black_box(acc)
        });
    });

    let w8_narrow: Vec<ProcessSet> = patterns.iter().map(|&p| ProcessSet::from_bits(p)).collect();
    group.bench_function("processet_w8_n128", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for w in w8_narrow.windows(2) {
                let (x, y) = (w[0], w[1]);
                acc += x.union(y).len() + x.intersection(y).len() + x.difference(y).len();
                acc += usize::from(x.is_subset(y));
            }
            black_box(acc)
        });
    });

    // n = 512: ~170 members per set, strided across all eight limbs.
    let wide_sets: Vec<ProcessSet> = (0..=pairs)
        .map(|i| {
            (0..512usize)
                .filter(|&j| mix((i * 512 + j) as u64).is_multiple_of(3))
                .map(ProcessId::new)
                .collect()
        })
        .collect();
    group.bench_function("processet_w8_n512", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for w in wide_sets.windows(2) {
                let (x, y) = (w[0], w[1]);
                acc += x.union(y).len() + x.intersection(y).len() + x.difference(y).len();
                acc += usize::from(x.is_subset(y));
            }
            black_box(acc)
        });
    });

    let btree_sets: Vec<BTreeSet<ProcessId>> = wide_sets
        .iter()
        .map(|s| s.iter().collect::<BTreeSet<ProcessId>>())
        .collect();
    group.bench_function("btreeset_n512", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for w in btree_sets.windows(2) {
                let (x, y) = (&w[0], &w[1]);
                acc += x.union(y).count() + x.intersection(y).count() + x.difference(y).count();
                acc += usize::from(x.is_subset(y));
            }
            black_box(acc)
        });
    });

    // Iteration: drain the members of one wide set vs the BTreeSet.
    group.bench_function("iterate_members_w8_n512", |b| {
        let s = &wide_sets[0];
        b.iter(|| {
            let sum: usize = s.iter().map(ProcessId::index).sum();
            black_box(sum)
        });
    });
    group.bench_function("iterate_members_btree_n512", |b| {
        let s = &btree_sets[0];
        b.iter(|| {
            let sum: usize = s.iter().map(|p| p.index()).sum();
            black_box(sum)
        });
    });

    group.finish();
}

/// The scenario layer: compilation cost of both substrates and full
/// differential runs on the Theorem 8 border grid — the price of turning
/// the two-substrate architecture into a *tested* equivalence, tracked
/// commit over commit.
fn bench_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_scenario");
    group.sample_size(10);

    // The E3 border grid (every divisible point), with f = kn/(k+1) and
    // seed-derived crash layouts.
    let border: Vec<Scenario> = kset_impossibility::theorem8_border_cells(42)
        .iter()
        .map(Scenario::from_cell)
        .collect();
    group.throughput(Throughput::Elements(border.len() as u64));

    group.bench_function("compile_border_grid", |b| {
        // Compilation only: validate + build both engines, no execution.
        b.iter(|| {
            let mut units = 0usize;
            for sc in &border {
                let sim = sc.to_sim::<RoundAdapter<FloodMin>>().unwrap();
                let lock = to_lockstep::<FloodMin>(sc).unwrap();
                units += sim.n() + Engine::n(&lock);
            }
            black_box(units)
        });
    });

    group.bench_function("differential_border_grid", |b| {
        b.iter(|| {
            let mut agreed = 0usize;
            for sc in &border {
                let report = differential::check::<FloodMin>(sc).unwrap();
                assert!(report.agrees(), "border grid must agree");
                agreed += usize::from(report.sim.terminated);
            }
            black_box(agreed)
        });
    });

    group.finish();
}

/// The observation-layer guardrail: `drive` (the statically-dispatched
/// unobserved loop) vs `drive_observed` with a no-op observer (the dynamic
/// event stream, discarded) vs a counting observer (the cheapest real
/// consumer) — on both substrates. The redesign's claim is that the
/// abstraction is free when unobserved and within noise for a no-op
/// observer; the measured numbers live in ARCHITECTURE.md's Observation
/// layer section.
fn bench_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_observe");
    group.sample_size(30);
    let n = 8usize;

    let make_sim = || {
        SimEngine::new(
            Simulation::<TwoStage, _>::new(
                two_stage_inputs(3, &distinct_proposals(n)),
                CrashPlan::none(),
            ),
            RoundRobin::new(),
        )
    };
    group.bench_function("sim_drive_plain", |b| {
        b.iter(|| {
            let mut engine = make_sim();
            black_box(engine.drive(100_000).steps)
        });
    });
    group.bench_function("sim_drive_observed_noop", |b| {
        b.iter(|| {
            let mut engine = make_sim();
            black_box(engine.drive_observed(100_000, &mut NoObserver).steps)
        });
    });
    group.bench_function("sim_drive_observed_counter", |b| {
        b.iter(|| {
            let mut engine = make_sim();
            let mut counter: EventCounter<kset_core::Val> = EventCounter::new();
            let status = engine.drive_observed(100_000, &mut counter);
            assert_eq!(counter.counts().steps, status.steps);
            black_box(counter.counts().sends)
        });
    });

    let values = distinct_proposals(64);
    let (f, k) = (3usize, 1usize);
    let make_lockstep =
        || LockStep::new(FloodMin::system(&values, f, k), floodmin_rounds(f, k), &[]);
    group.bench_function("lockstep_drive_plain", |b| {
        b.iter(|| {
            let mut engine = make_lockstep();
            black_box(engine.drive(u64::MAX).steps)
        });
    });
    group.bench_function("lockstep_drive_observed_noop", |b| {
        b.iter(|| {
            let mut engine = make_lockstep();
            black_box(engine.drive_observed(u64::MAX, &mut NoObserver).steps)
        });
    });
    group.bench_function("lockstep_drive_observed_counter", |b| {
        b.iter(|| {
            let mut engine = make_lockstep();
            let mut counter: EventCounter<kset_core::Val> = EventCounter::new();
            engine.drive_observed(u64::MAX, &mut counter);
            black_box(counter.counts().delivers)
        });
    });

    group.finish();
}

/// The batched lock-step gate: 16 same-shape scale cells (f = 3, k = 1,
/// so 4 scheduled rounds) swept one-at-a-time through the scalar
/// [`SweepGrid::record`](kset_bench::sweeps::SweepGrid::record) path vs
/// fused through the structure-of-arrays kernel
/// ([`record_batch`](kset_bench::sweeps::SweepGrid::record_batch)). Both
/// paths produce identical `CellRecord`s (the library and CI byte-identity
/// gates pin that); this group pins the throughput ratio — the acceptance
/// bar is ≥ 3× at B = 16 for n ≥ 256.
///
/// The cells are synthetic (the catalog grid never repeats an `(n, f, k)`
/// point, so its largest same-shape group is 3 cells): 16 lanes per n,
/// each with its own `cell_seed`-derived crash layout.
fn bench_batched(c: &mut Criterion) {
    use kset_sim::sweep::{cell_seed, GridCell};

    let mut group = c.benchmark_group("e7_batched");
    group.sample_size(10);
    let grid = kset_bench::sweeps::grid("scale", 42).expect("catalog grid");
    let lanes = 16usize;
    group.throughput(Throughput::Elements(lanes as u64));
    for n in [256usize, 512] {
        let cells: Vec<GridCell> = (0..lanes)
            .map(|index| GridCell {
                index,
                n,
                f: 3,
                k: 1,
                seed: cell_seed(42, index),
            })
            .collect();
        let refs: Vec<&GridCell> = cells.iter().collect();
        group.bench_function(BenchmarkId::new("one_at_a_time", n), |b| {
            b.iter(|| {
                let records: Vec<_> = cells.iter().map(|cell| grid.record(cell)).collect();
                black_box(records.len())
            });
        });
        group.bench_function(BenchmarkId::new("batched_16", n), |b| {
            b.iter(|| black_box(grid.record_batch(&refs).len()));
        });
    }
    group.finish();
}

/// The discrete-event substrate's idle-skip claim, measured. One flooding
/// workload (broadcast once, decide on full coverage; n = 16) runs four
/// ways:
///
/// * `sim_round_robin_eager` — the step substrate with eager delivery:
///   the dense baseline, 2n units.
/// * `sim_delay_bounded_2048` — the step substrate emulating latency with
///   [`DelayBounded`]: every unit of message age costs a scheduler pick,
///   so the run burns ~Δ idle steps before the first delivery.
/// * `des_timed_dense_1` / `des_timed_sparse_2048` — the discrete-event
///   engine at fixed latency 1 and 2048: virtual time between arrivals is
///   *skipped*, so both cost the same 2n units and the same wall time.
///
/// The win is the sparse pair: `des_timed_sparse_2048` stays flat where
/// `sim_delay_bounded_2048` scales with the latency bound.
fn bench_des(c: &mut Criterion) {
    use kset_sim::des::{DesEngine, Latency};
    use kset_sim::sched::delay_bounded::DelayBounded;
    use kset_sim::{Effects, Process, ProcessInfo};

    /// Broadcasts its input on the first step, then decides the minimum
    /// once it has seen values from all `n` processes.
    #[derive(Debug, Clone, Hash)]
    struct MinFlood {
        n: usize,
        seen: BTreeSet<u64>,
        sent: bool,
    }

    impl Process for MinFlood {
        type Msg = u64;
        type Input = u64;
        type Output = u64;
        type Fd = ();

        fn init(info: ProcessInfo, input: u64) -> Self {
            MinFlood {
                n: info.n,
                seen: BTreeSet::from([input]),
                sent: false,
            }
        }

        fn step(
            &mut self,
            delivered: &[Envelope<u64>],
            _fd: Option<&()>,
            effects: &mut Effects<u64, u64>,
        ) {
            if !self.sent {
                self.sent = true;
                let mine = *self.seen.iter().next().unwrap();
                effects.broadcast(mine);
            }
            self.seen.extend(delivered.iter().map(|e| e.payload));
            if self.seen.len() >= self.n {
                effects.decide(*self.seen.iter().next().unwrap());
            }
        }
    }

    let mut group = c.benchmark_group("e7_des");
    group.sample_size(10);
    let n = 16usize;
    let delta = 2048u64;
    let make_sim = || Simulation::<MinFlood, _>::new((0..n as u64).collect(), CrashPlan::none());

    group.bench_function("sim_round_robin_eager", |b| {
        b.iter(|| {
            let mut engine = SimEngine::new(make_sim(), RoundRobin::new());
            engine.drive(u64::MAX);
            assert_eq!(engine.distinct_decisions().len(), 1);
            black_box(engine.units())
        });
    });
    group.bench_function("sim_delay_bounded_2048", |b| {
        b.iter(|| {
            let mut engine = SimEngine::new(make_sim(), DelayBounded::new(delta));
            engine.drive(u64::MAX);
            assert_eq!(engine.distinct_decisions().len(), 1);
            black_box(engine.units())
        });
    });
    group.bench_function("des_timed_dense_1", |b| {
        b.iter(|| {
            let mut engine = DesEngine::timed(make_sim(), Latency::fixed(1), 0, 42);
            engine.drive(u64::MAX);
            assert_eq!(engine.distinct_decisions().len(), 1);
            black_box(engine.units())
        });
    });
    group.bench_function("des_timed_sparse_2048", |b| {
        b.iter(|| {
            let mut engine = DesEngine::timed(make_sim(), Latency::fixed(delta), 0, 42);
            engine.drive(u64::MAX);
            assert_eq!(engine.distinct_decisions().len(), 1);
            // The whole point: 2n units regardless of the latency bound.
            assert_eq!(engine.units(), 2 * n as u64);
            black_box(engine.units())
        });
    });
    group.finish();
}

fn bench_pasting_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_pasting_cost");
    group.sample_size(10);
    for blocks in [2usize, 3, 4, 6] {
        let n = blocks * 3;
        let parts: Vec<ProcessSet> = (0..blocks)
            .map(|b| (b * 3..(b + 1) * 3).map(ProcessId::new).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &parts, |b, parts| {
            b.iter(|| {
                let pasted = lemma12_no_fd::<TwoStage>(
                    || two_stage_inputs(3, &distinct_proposals(n)),
                    parts,
                    500_000,
                );
                assert!(pasted.verified);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_engines,
    bench_buffer_receive,
    bench_wide_sets,
    bench_scenario,
    bench_observe,
    bench_batched,
    bench_des,
    bench_pasting_cost
);
criterion_main!(benches);
