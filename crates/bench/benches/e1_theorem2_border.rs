//! E1 — Theorem 2 border: cost of the Theorem 1 checker construction
//! (solo runs + pasting + restriction replay) across grid points, for both
//! candidates. The correctness rows live in the `experiments` binary; this
//! bench tracks how the construction scales with n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kset_impossibility::theorem2::{demo_decide_own, demo_two_stage};

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_theorem2_checker");
    group.sample_size(10);
    for n in [4usize, 6, 8, 10] {
        let f = n - 1; // wait-free corner: k = 2 impossible for every n ≥ 3
        let k = 2;
        group.bench_with_input(BenchmarkId::new("decide_own", n), &n, |b, _| {
            b.iter(|| {
                let demo = demo_decide_own(n, f, k, 100_000).expect("impossible point");
                assert!(demo.refuted());
            });
        });
        group.bench_with_input(BenchmarkId::new("two_stage", n), &n, |b, _| {
            b.iter(|| {
                let demo = demo_two_stage(n, f, k, 200_000).expect("impossible point");
                assert!(demo.refuted());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
