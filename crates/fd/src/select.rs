//! Detector selection: mapping a scenario's [`DetectorChoice`] to a
//! concrete oracle.
//!
//! The simulator's scenario layer only *names* the failure detector
//! (`kset-sim` knows no detector classes); this module resolves each name
//! to the oracle that implements it. The constructors are per-class rather
//! than one sum type because detector classes have different sample types —
//! the algorithm an experiment pairs with a scenario fixes the class it
//! expects, and the matching selector either produces the oracle or reports
//! that the scenario asked for a different class.

use kset_sim::{DetectorChoice, ProcessId, ProcessSet, Scenario, Time};

use crate::loneliness::LonelinessOracle;
use crate::partition_fd::RealisticSigmaOmega;
use crate::perfect::PerfectOracle;
use crate::samples::LeaderSample;

/// The perfect detector P, if the scenario selects it.
pub fn perfect_for(scenario: &Scenario) -> Option<PerfectOracle> {
    matches!(scenario.detector, DetectorChoice::Perfect).then(PerfectOracle::new)
}

/// The loneliness detector L, if the scenario selects it.
pub fn loneliness_for(scenario: &Scenario) -> Option<LonelinessOracle> {
    matches!(scenario.detector, DetectorChoice::Loneliness)
        .then(|| LonelinessOracle::new(scenario.n))
}

/// The (Σk, Ωk) pair, if the scenario selects it: a
/// [`RealisticSigmaOmega`] whose Ωk component stabilizes at the scenario's
/// `tgst` on [`scenario_leaders`] — a leader set guaranteed to intersect
/// the scenario's correct processes, as the class demands.
///
/// A degree outside `1..=n` returns `None` rather than panicking —
/// [`Scenario::validate`] rejects such scenarios as
/// `ScenarioError::DetectorDegree` before they reach a compiler.
pub fn sigma_omega_for(scenario: &Scenario) -> Option<RealisticSigmaOmega> {
    match scenario.detector {
        DetectorChoice::SigmaOmega { k, tgst } if k >= 1 && k <= scenario.n => {
            Some(RealisticSigmaOmega::new(
                scenario.n,
                k,
                Time::new(tgst),
                scenario_leaders(scenario, k),
            ))
        }
        _ => None,
    }
}

/// A deterministic stabilized leader set of exactly `k` ids for the
/// scenario: correct processes first (ascending), padded with faulty ids
/// only if fewer than `k` processes are correct. Since a validated
/// scenario has at least one correct process, the set always intersects
/// the correct set — the Ωk validity requirement.
///
/// # Panics
///
/// Panics if `k > scenario.n`.
pub fn scenario_leaders(scenario: &Scenario, k: usize) -> LeaderSample {
    assert!(k <= scenario.n, "need k ≤ n leaders");
    let faulty = scenario.faulty();
    let mut leaders = ProcessSet::new();
    for p in ProcessId::all(scenario.n).filter(|p| !faulty.contains(*p)) {
        if leaders.len() == k {
            break;
        }
        leaders.insert(p);
    }
    for p in faulty {
        if leaders.len() == k {
            break;
        }
        leaders.insert(p);
    }
    leaders
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_sim::{FailurePattern, Oracle, ScenarioCrash};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn selectors_match_only_their_choice() {
        let none = Scenario::favourable(4, 1, 1);
        assert!(perfect_for(&none).is_none());
        assert!(loneliness_for(&none).is_none());
        assert!(sigma_omega_for(&none).is_none());

        let perfect = none.clone().with_detector(DetectorChoice::Perfect);
        assert!(perfect_for(&perfect).is_some());
        assert!(sigma_omega_for(&perfect).is_none());

        let lonely = none.clone().with_detector(DetectorChoice::Loneliness);
        assert!(loneliness_for(&lonely).is_some());

        let pair = none.with_detector(DetectorChoice::SigmaOmega { k: 2, tgst: 5 });
        assert!(sigma_omega_for(&pair).is_some());
        assert!(perfect_for(&pair).is_none());
    }

    #[test]
    fn invalid_detector_degree_selects_nothing() {
        // validate() rejects such scenarios; the selector must not panic on
        // one that skipped validation.
        let sc = Scenario::favourable(4, 1, 1)
            .with_detector(DetectorChoice::SigmaOmega { k: 10, tgst: 5 });
        assert!(sc.validate().is_err());
        assert!(sigma_omega_for(&sc).is_none());
    }

    #[test]
    fn selected_sigma_omega_stabilizes_on_correct_leaders() {
        let sc = Scenario::favourable(4, 1, 1)
            .with_crash(ScenarioCrash {
                pid: pid(0),
                round: 1,
                receivers: ProcessSet::new(),
            })
            .with_detector(DetectorChoice::SigmaOmega { k: 2, tgst: 3 });
        let leaders = scenario_leaders(&sc, 2);
        assert_eq!(leaders, [pid(1), pid(2)].into(), "correct-first selection");

        let mut oracle = sigma_omega_for(&sc).expect("matching choice");
        let fp = FailurePattern::all_correct(4);
        let sample = oracle.sample(pid(1), Time::new(10), &fp);
        assert_eq!(sample.omega, leaders, "post-tgst samples are stabilized");
    }

    #[test]
    fn leaders_pad_with_faulty_when_correct_are_scarce() {
        let sc = Scenario::favourable(3, 2, 1)
            .with_initially_dead(pid(0))
            .with_initially_dead(pid(2));
        let leaders = scenario_leaders(&sc, 2);
        assert!(leaders.contains(pid(1)), "the correct process leads");
        assert_eq!(leaders.len(), 2);
    }
}
