//! History validity checkers: executable forms of Definitions 4, 5 and 7.
//!
//! The checkers are *oracles for finite histories*: they verify every
//! finitely refutable aspect of the class definitions and project the
//! "eventually" clauses onto the recorded horizon (documented per checker).
//! They are used as test oracles — e.g. Lemma 9 ("every history of
//! (Σ′k,Ω′k) is a history of (Σk,Ωk)") is verified by generating partition
//! histories and feeding them to [`check_sigma_k`] / [`check_omega_k`].

use kset_sim::{FailurePattern, ProcessId, ProcessSet, Time};

use crate::history::History;
use crate::samples::{LeaderSample, QuorumSample};

/// A way a quorum history fails Σk (Definition 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigmaViolation {
    /// `k + 1` pairwise disjoint quorums were output to `k + 1` distinct
    /// processes — refuting the intersection property.
    DisjointQuorums {
        /// The witnessing `(process, query time)` pairs.
        witnesses: Vec<(ProcessId, Time)>,
    },
    /// A correct process's final recorded sample still trusts a faulty
    /// process — the finite-horizon refutation of the liveness property.
    LivenessTail {
        /// The querier whose tail sample is dirty.
        pid: ProcessId,
        /// The faulty process still trusted.
        trusts: ProcessId,
    },
}

/// A way a leader history fails Ωk (Definition 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmegaViolation {
    /// A sample does not contain exactly `k` ids (Validity).
    WrongSize {
        /// The querier.
        pid: ProcessId,
        /// Query time.
        time: Time,
        /// Observed size.
        size: usize,
    },
    /// The final samples of two processes disagree — no common `LD` at the
    /// horizon (Eventual Leadership refuted on the prefix).
    NotStabilized {
        /// First process and its final sample.
        a: ProcessId,
        /// Second process with a different final sample.
        b: ProcessId,
    },
    /// The stabilized leader set contains no correct process.
    LeadersAllFaulty {
        /// The stabilized set.
        ld: LeaderSample,
    },
}

/// Checks a quorum history against Σk (Definition 4).
///
/// * **Intersection** is checked exactly: the property fails iff there exist
///   `k + 1` samples at `k + 1` *distinct* processes that are pairwise
///   disjoint; we search for such a witness by backtracking.
/// * **Liveness** (`∃t ∀t′>t ∀ correct p: H(p,t′) ∩ F = ∅`) is projected to
///   the horizon: with `t` = the last dirty sample time, all later samples
///   are clean by construction, so on a finite prefix the property can only
///   be refuted by a correct process whose *final* sample still trusts a
///   faulty process — which is what we flag. (A run extended long enough
///   would turn such a tail into a genuine violation for detectors that
///   never clean up.)
pub fn check_sigma_k(
    history: &History<QuorumSample>,
    k: usize,
    fp: &FailurePattern,
) -> Result<(), SigmaViolation> {
    // --- Intersection ---
    if let Some(witnesses) = find_disjoint_family(history, k + 1) {
        return Err(SigmaViolation::DisjointQuorums { witnesses });
    }
    // --- Liveness (finite-horizon projection) ---
    let faulty = fp.faulty();
    for p in fp.correct() {
        if let Some((_, last)) = history.of_process(p).last() {
            if let Some(bad) = last.intersection(faulty).first() {
                return Err(SigmaViolation::LivenessTail {
                    pid: p,
                    trusts: bad,
                });
            }
        }
    }
    Ok(())
}

/// Searches for `family` pairwise-disjoint samples at distinct processes.
/// Returns the witnessing `(process, time)` pairs if found.
fn find_disjoint_family(
    history: &History<QuorumSample>,
    family: usize,
) -> Option<Vec<(ProcessId, Time)>> {
    // Distinct samples per process (dedup keeps the first time of each).
    let queriers = history.queriers();
    let mut per_proc: Vec<(ProcessId, Vec<(Time, &QuorumSample)>)> = Vec::new();
    for p in queriers {
        let mut distinct: Vec<(Time, &QuorumSample)> = Vec::new();
        for (t, s) in history.of_process(p) {
            if !distinct.iter().any(|(_, d)| *d == s) {
                distinct.push((t, s));
            }
        }
        if !distinct.is_empty() {
            per_proc.push((p, distinct));
        }
    }
    if per_proc.len() < family {
        return None;
    }
    // Backtracking: a family is pairwise disjoint iff each member is
    // disjoint from the union of the previously chosen ones — with bitset
    // quorums both the disjointness test and the union are a handful of
    // branch-free word operations.
    fn rec(
        per_proc: &[(ProcessId, Vec<(Time, &QuorumSample)>)],
        idx: usize,
        need: usize,
        union: ProcessSet,
        chosen: &mut Vec<(ProcessId, Time)>,
    ) -> bool {
        if need == 0 {
            return true;
        }
        if per_proc.len() - idx < need {
            return false;
        }
        // Option 1: skip this process.
        if rec(per_proc, idx + 1, need, union, chosen) {
            return true;
        }
        // Option 2: pick one of its samples disjoint from the union.
        let (p, samples) = &per_proc[idx];
        for (t, s) in samples {
            if s.is_disjoint(union) {
                chosen.push((*p, *t));
                if rec(per_proc, idx + 1, need - 1, union.union(**s), chosen) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
    let mut chosen = Vec::new();
    if rec(&per_proc, 0, family, ProcessSet::new(), &mut chosen) {
        Some(chosen)
    } else {
        None
    }
}

/// Checks a leader history against Ωk (Definition 5).
///
/// * **Validity** is exact: every sample must contain exactly `k` ids.
/// * **Eventual Leadership** is projected to the horizon: the final samples
///   of all queriers must agree on a common `LD` with
///   `LD ∩ (Π \ F) ≠ ∅`. The implied `t_GST` (last time any sample differed
///   from `LD`) is returned on success.
pub fn check_omega_k(
    history: &History<LeaderSample>,
    k: usize,
    fp: &FailurePattern,
) -> Result<Time, OmegaViolation> {
    // --- Validity ---
    for (p, t, s) in history.iter() {
        if s.len() != k {
            return Err(OmegaViolation::WrongSize {
                pid: p,
                time: t,
                size: s.len(),
            });
        }
    }
    // --- Eventual leadership (finite-horizon projection) ---
    // Only *correct* queriers are constrained: a process that crashes
    // before t_GST may hold any pre-stabilization sample forever.
    let correct = fp.correct();
    let mut final_samples: Vec<(ProcessId, &LeaderSample)> = Vec::new();
    for p in history.queriers() {
        if !correct.contains(p) {
            continue;
        }
        if let Some((_, s)) = history.of_process(p).last() {
            final_samples.push((p, s));
        }
    }
    let Some((first_p, ld)) = final_samples.first().copied() else {
        return Ok(Time::ZERO); // no correct querier: vacuously fine
    };
    for (p, s) in &final_samples[1..] {
        if *s != ld {
            return Err(OmegaViolation::NotStabilized { a: first_p, b: *p });
        }
    }
    if ld.is_disjoint(correct) {
        return Err(OmegaViolation::LeadersAllFaulty { ld: *ld });
    }
    // t_GST = last time any sample differed from LD.
    let tgst = history
        .iter()
        .filter(|(_, _, s)| *s != ld)
        .map(|(_, t, _)| t)
        .max()
        .unwrap_or(Time::ZERO);
    Ok(tgst)
}

/// Checks part 1 of Definition 7: for each partition block `Di`, the quorum
/// history at the (alive) processes of `Di` is a valid Σ (= Σ1) history for
/// the restricted model `⟨Di⟩` in which only members of `Di` are ever
/// output.
pub fn check_partition_sigma(
    history: &History<QuorumSample>,
    blocks: &[ProcessSet],
    fp: &FailurePattern,
) -> Result<(), String> {
    for (i, block) in blocks.iter().enumerate() {
        let sub = history.restricted_to(*block);
        // Outputs must stay within the block (pre-crash queries only; a
        // crashed process never queries, so every recorded sample counts).
        for (p, t, s) in sub.iter() {
            if !s.is_subset(*block) {
                return Err(format!(
                    "block {i}: sample of {p} at {t} leaves the block: {s:?}"
                ));
            }
        }
        // Σ1 within the block, w.r.t. the failure pattern projected to it.
        let fp_block = fp.projected_to(*block);
        check_sigma_k(&sub, 1, &fp_block).map_err(|v| format!("block {i}: Σ violated: {v:?}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn q(ids: &[usize]) -> QuorumSample {
        ids.iter().map(|i| pid(*i)).collect()
    }

    #[test]
    fn sigma1_accepts_intersecting_quorums() {
        let mut h = History::new();
        h.record(pid(0), Time::new(1), q(&[0, 1]));
        h.record(pid(1), Time::new(2), q(&[1, 2]));
        let fp = FailurePattern::all_correct(3);
        assert!(check_sigma_k(&h, 1, &fp).is_ok());
    }

    #[test]
    fn sigma1_rejects_two_disjoint_quorums() {
        let mut h = History::new();
        h.record(pid(0), Time::new(1), q(&[0]));
        h.record(pid(1), Time::new(2), q(&[1]));
        let fp = FailurePattern::all_correct(2);
        let err = check_sigma_k(&h, 1, &fp).unwrap_err();
        assert!(
            matches!(err, SigmaViolation::DisjointQuorums { ref witnesses } if witnesses.len() == 2)
        );
    }

    #[test]
    fn sigma2_tolerates_two_disjoint_but_not_three() {
        let mut h = History::new();
        h.record(pid(0), Time::new(1), q(&[0, 1]));
        h.record(pid(2), Time::new(2), q(&[2, 3]));
        let fp = FailurePattern::all_correct(6);
        assert!(
            check_sigma_k(&h, 2, &fp).is_ok(),
            "only 2 disjoint: fine for Σ2"
        );
        h.record(pid(4), Time::new(3), q(&[4, 5]));
        assert!(
            check_sigma_k(&h, 2, &fp).is_err(),
            "3 pairwise disjoint refute Σ2"
        );
    }

    #[test]
    fn disjointness_must_span_distinct_processes() {
        // The same process outputting two disjoint quorums at different
        // times does NOT refute Σ1 (the definition quantifies over k+1
        // distinct processes).
        let mut h = History::new();
        h.record(pid(0), Time::new(1), q(&[1]));
        h.record(pid(0), Time::new(2), q(&[2]));
        let fp = FailurePattern::all_correct(3);
        assert!(check_sigma_k(&h, 1, &fp).is_ok());
    }

    #[test]
    fn sigma_liveness_tail_detected() {
        let mut fp = FailurePattern::all_correct(2);
        fp.record_crash(pid(1), Time::new(1));
        let mut h = History::new();
        // p0 (correct) ends still trusting crashed p1.
        h.record(pid(0), Time::new(5), q(&[0, 1]));
        let err = check_sigma_k(&h, 1, &fp).unwrap_err();
        assert_eq!(
            err,
            SigmaViolation::LivenessTail {
                pid: pid(0),
                trusts: pid(1)
            }
        );
    }

    #[test]
    fn sigma_liveness_clean_tail_ok() {
        let mut fp = FailurePattern::all_correct(2);
        fp.record_crash(pid(1), Time::new(1));
        let mut h = History::new();
        h.record(pid(0), Time::new(2), q(&[0, 1])); // dirty, but not final
        h.record(pid(0), Time::new(5), q(&[0]));
        assert!(check_sigma_k(&h, 1, &fp).is_ok());
    }

    #[test]
    fn omega_validity_checks_size() {
        let mut h = History::new();
        h.record(pid(0), Time::new(1), q(&[0, 1]));
        let fp = FailurePattern::all_correct(2);
        assert!(check_omega_k(&h, 2, &fp).is_ok());
        let err = check_omega_k(&h, 1, &fp).unwrap_err();
        assert!(matches!(err, OmegaViolation::WrongSize { size: 2, .. }));
    }

    #[test]
    fn omega_stabilization_and_tgst() {
        let mut h = History::new();
        h.record(pid(0), Time::new(1), q(&[0]));
        h.record(pid(1), Time::new(2), q(&[1])); // differs: pre-GST noise
        h.record(pid(0), Time::new(3), q(&[1]));
        h.record(pid(1), Time::new(4), q(&[1]));
        let fp = FailurePattern::all_correct(2);
        let tgst = check_omega_k(&h, 1, &fp).unwrap();
        assert_eq!(tgst, Time::new(1), "last divergent sample is at t1");
    }

    #[test]
    fn omega_unstabilized_rejected() {
        let mut h = History::new();
        h.record(pid(0), Time::new(1), q(&[0]));
        h.record(pid(1), Time::new(2), q(&[1]));
        let fp = FailurePattern::all_correct(2);
        assert!(matches!(
            check_omega_k(&h, 1, &fp),
            Err(OmegaViolation::NotStabilized { .. })
        ));
    }

    #[test]
    fn omega_all_faulty_leaders_rejected() {
        let mut fp = FailurePattern::all_correct(2);
        fp.record_crash(pid(0), Time::new(1));
        let mut h = History::new();
        h.record(pid(1), Time::new(2), q(&[0]));
        assert!(matches!(
            check_omega_k(&h, 1, &fp),
            Err(OmegaViolation::LeadersAllFaulty { .. })
        ));
    }

    #[test]
    fn partition_sigma_enforces_block_containment() {
        let blocks: Vec<ProcessSet> = vec![q(&[0, 1]), q(&[2, 3])];
        let fp = FailurePattern::all_correct(4);
        let mut h = History::new();
        h.record(pid(0), Time::new(1), q(&[0, 1]));
        h.record(pid(2), Time::new(2), q(&[2, 3]));
        assert!(check_partition_sigma(&h, &blocks, &fp).is_ok());
        // A sample leaking outside its block is rejected.
        h.record(pid(0), Time::new(3), q(&[0, 2]));
        assert!(check_partition_sigma(&h, &blocks, &fp)
            .unwrap_err()
            .contains("leaves the block"));
    }

    #[test]
    fn partition_sigma_blocks_are_independent() {
        // Disjoint quorums ACROSS blocks are fine for the partition
        // detector (that is its whole point) even though they would refute
        // plain Σ1 system-wide.
        let blocks: Vec<ProcessSet> = vec![q(&[0]), q(&[1])];
        let fp = FailurePattern::all_correct(2);
        let mut h = History::new();
        h.record(pid(0), Time::new(1), q(&[0]));
        h.record(pid(1), Time::new(2), q(&[1]));
        assert!(check_partition_sigma(&h, &blocks, &fp).is_ok());
        assert!(check_sigma_k(&h, 1, &fp).is_err());
    }

    #[test]
    fn empty_history_is_valid_everything() {
        let h: History<QuorumSample> = History::new();
        let fp = FailurePattern::all_correct(3);
        assert!(check_sigma_k(&h, 1, &fp).is_ok());
        assert!(check_omega_k(&h, 1, &fp).is_ok());
    }
}
