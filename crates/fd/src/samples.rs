//! Sample types produced by the failure-detector classes.
//!
//! All process-set-valued samples are [`ProcessSet`] bitsets, so sampling,
//! copying and validating them is constant-time word arithmetic.

use kset_sim::ProcessSet;

/// Output of a quorum detector of class Σk: a set of *trusted* process ids
/// (Definition 4 of the paper).
pub type QuorumSample = ProcessSet;

/// Output of a leader detector of class Ωk: a set of exactly `k` *leader
/// candidates* (Definition 5 of the paper).
pub type LeaderSample = ProcessSet;

/// Combined sample of the pair (Σk, Ωk) — the detector family
/// `(Σk, Ωk)_{1 ≤ k ≤ n−1}` of Bonnet and Raynal whose k-set-agreement power
/// Theorem 10 delimits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SigmaOmegaSample {
    /// The Σk component: trusted quorum.
    pub sigma: QuorumSample,
    /// The Ωk component: leader candidates (|omega| = k).
    pub omega: LeaderSample,
}

impl SigmaOmegaSample {
    /// Creates a combined sample.
    pub fn new(sigma: QuorumSample, omega: LeaderSample) -> Self {
        SigmaOmegaSample { sigma, omega }
    }
}

/// Output of the loneliness detector L: `true` means "you may be the only
/// correct process" (see Biely–Robinson–Schmid OPODIS'09 and
/// Delporte-Gallet et al., DISC'08).
///
/// Specification:
/// * **Safety (PL)**: there is at least one process at which the output is
///   `false` forever;
/// * **Liveness (AL)**: if exactly one process is correct, its output is
///   eventually `true` forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LonelinessSample(pub bool);

#[cfg(test)]
mod tests {
    use super::*;
    use kset_sim::ProcessId;

    #[test]
    fn combined_sample_roundtrip() {
        let sigma: QuorumSample = [ProcessId::new(0), ProcessId::new(1)].into();
        let omega: LeaderSample = [ProcessId::new(1)].into();
        let s = SigmaOmegaSample::new(sigma, omega);
        assert_eq!(s.sigma, sigma);
        assert_eq!(s.omega, omega);
    }

    #[test]
    fn loneliness_is_a_bool_wrapper() {
        assert_ne!(LonelinessSample(true), LonelinessSample(false));
    }
}
