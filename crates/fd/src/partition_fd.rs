//! The partition failure detector (Σ′k, Ω′k) of Definition 7, and the
//! realistic combined (Σk, Ωk) oracle.
//!
//! Definition 7 fixes a partitioning `{D1, …, D(k−1), Dk}` of Π (with
//! `D̄ = Dk`) and strengthens (Σk, Ωk) just enough to keep the proofs of
//! Lemmas 11/12 simple while still *allowing up to k partitions*:
//!
//! 1. the Σ′k output at every process of `Di` is a valid Σ (= Σ1) history
//!    **of the restricted model ⟨Di⟩** — only members of `Di` are ever
//!    output;
//! 2. Ω′k = Ωk: a common leader set `LD` (of size k, intersecting the
//!    correct processes) from some stabilization time `t_GST` on.
//!
//! Lemma 9 — every (Σ′k,Ω′k) history is a (Σk,Ωk) history — is checked
//! executably in this crate's tests by feeding [`PartitionSigmaOmega`]
//! histories to the Σk/Ωk oracles of [`crate::checkers`].

use kset_sim::{FailurePattern, Oracle, ProcessId, ProcessSet, Time};

use crate::omega::k_window;
use crate::samples::{LeaderSample, QuorumSample, SigmaOmegaSample};

/// The partition detector (Σ′k, Ω′k).
///
/// * Σ′ samples for `p ∈ Di`: the not-yet-crashed members of `Di` — nested
///   and nonempty while `p` is alive, hence a valid Σ1 history of `⟨Di⟩`.
/// * Ω′ samples: before `t_GST`, the k-window of the querier's own block
///   (each block sees leaders from inside itself — exactly what lets every
///   block decide in splendid isolation in Lemma 12); after `t_GST`, the
///   fixed set `LD`.
#[derive(Debug, Clone)]
pub struct PartitionSigmaOmega {
    n: usize,
    k: usize,
    blocks: Vec<ProcessSet>,
    tgst: Time,
    ld: LeaderSample,
}

impl PartitionSigmaOmega {
    /// Creates the detector for a partitioning of `Π` into `blocks`
    /// (`D1, …, Dk` in the paper's notation — the last block plays `D̄`),
    /// stabilizing on `ld` strictly after `tgst`.
    ///
    /// # Panics
    ///
    /// Panics if the blocks do not partition `0..n`, if `|ld| != k` where
    /// `k = blocks.len()`, or if `ld` contains out-of-range ids.
    pub fn new(n: usize, blocks: Vec<ProcessSet>, tgst: Time, ld: LeaderSample) -> Self {
        let k = blocks.len();
        assert!(k >= 1, "at least one block");
        let mut seen = ProcessSet::new();
        for b in &blocks {
            assert!(!b.is_empty(), "blocks must be nonempty");
            for p in b {
                assert!(p.index() < n, "block member out of range");
                assert!(seen.insert(p), "blocks must be disjoint");
            }
        }
        assert_eq!(seen.len(), n, "blocks must cover Π");
        assert_eq!(ld.len(), k, "LD must contain exactly k = #blocks ids");
        assert!(ld.iter().all(|p| p.index() < n), "LD id out of range");
        PartitionSigmaOmega {
            n,
            k,
            blocks,
            tgst,
            ld,
        }
    }

    /// The number of blocks `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The partition blocks.
    pub fn blocks(&self) -> &[ProcessSet] {
        &self.blocks
    }

    /// The stabilization time.
    pub fn tgst(&self) -> Time {
        self.tgst
    }

    /// Replaces the stabilized leader set (used when pasting runs per
    /// Lemma 11 step 5: choose a fresh `t_GST` and `LD` for the combined
    /// run).
    ///
    /// # Panics
    ///
    /// Panics if `|ld| != k`.
    pub fn restabilize(&mut self, tgst: Time, ld: LeaderSample) {
        assert_eq!(ld.len(), self.k, "LD must contain exactly k ids");
        self.tgst = tgst;
        self.ld = ld;
    }

    /// The block containing `p`.
    pub fn block_of(&self, p: ProcessId) -> ProcessSet {
        self.blocks
            .iter()
            .copied()
            .find(|b| b.contains(p))
            // kset-lint: allow(panic-in-library): invariant — the constructor takes a PartitionSpec, whose blocks partition (and hence cover) Π
            .expect("blocks cover Π")
    }

    fn sigma_sample(&self, p: ProcessId, t: Time, observed: &FailurePattern) -> QuorumSample {
        let alive = self.block_of(p).difference(observed.crashed_at(t));
        if alive.is_empty() {
            // p itself is the last member standing (it is querying, so it
            // has not crashed *before* t; the observed pattern may list its
            // crash at exactly t when this is its final step).
            // kset-lint: allow(unchecked-capacity): p is a live process id of a capacity-validated system, so the singleton cannot overflow
            ProcessSet::singleton(p)
        } else {
            alive
        }
    }

    fn omega_sample(&self, p: ProcessId, t: Time) -> LeaderSample {
        if t > self.tgst {
            self.ld
        } else {
            k_window(self.block_of(p), self.k, self.n)
        }
    }
}

impl Oracle for PartitionSigmaOmega {
    type Sample = SigmaOmegaSample;

    fn sample(&mut self, p: ProcessId, t: Time, observed: &FailurePattern) -> SigmaOmegaSample {
        SigmaOmegaSample::new(self.sigma_sample(p, t, observed), self.omega_sample(p, t))
    }
}

/// The realistic combined (Σk, Ωk) oracle for the *possibility* side: Σ
/// trusts the not-yet-crashed processes system-wide (a valid Σ1 ⊆ Σk
/// history), Ωk stabilizes on a configured leader set.
#[derive(Debug, Clone)]
pub struct RealisticSigmaOmega {
    n: usize,
    k: usize,
    tgst: Time,
    ld: LeaderSample,
}

impl RealisticSigmaOmega {
    /// Creates the oracle; `ld` must contain exactly `k` ids.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatches, as for
    /// [`crate::omega::EventualLeaderOmega`].
    pub fn new(n: usize, k: usize, tgst: Time, ld: LeaderSample) -> Self {
        assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
        assert_eq!(ld.len(), k, "LD must contain exactly k ids");
        RealisticSigmaOmega { n, k, tgst, ld }
    }

    /// The (Σ, Ω) instance (k = 1) stabilizing on `leader` — the weakest
    /// failure detector for consensus, used on the k = 1 endpoint of
    /// Corollary 13.
    pub fn consensus(n: usize, tgst: Time, leader: ProcessId) -> Self {
        Self::new(n, 1, tgst, [leader].into())
    }
}

impl Oracle for RealisticSigmaOmega {
    type Sample = SigmaOmegaSample;

    fn sample(&mut self, p: ProcessId, t: Time, observed: &FailurePattern) -> SigmaOmegaSample {
        let sigma = observed.crashed_at(t).complement(self.n);
        let omega = if t > self.tgst {
            self.ld
        } else {
            // kset-lint: allow(unchecked-capacity): p is a live process id of a capacity-validated system, so the singleton cannot overflow
            k_window(ProcessSet::singleton(p), self.k, self.n)
        };
        SigmaOmegaSample::new(sigma, omega)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::{check_omega_k, check_partition_sigma, check_sigma_k};
    use crate::history::History;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Theorem 10 layout for n = 6, k = 3: D1 = {p1}, D2 = {p2},
    /// D̄ = {p3..p6}.
    fn theorem10_blocks() -> Vec<ProcessSet> {
        vec![
            [pid(0)].into(),
            [pid(1)].into(),
            [pid(2), pid(3), pid(4), pid(5)].into(),
        ]
    }

    fn sample_everything(
        oracle: &mut PartitionSigmaOmega,
        fp: &FailurePattern,
        horizon: u64,
    ) -> (History<QuorumSample>, History<LeaderSample>) {
        let mut hs = History::new();
        let mut ho = History::new();
        for t in 1..=horizon {
            let p = pid((t % 6) as usize);
            if fp.is_crashed(p, Time::new(t)) {
                continue;
            }
            let s = oracle.sample(p, Time::new(t), fp);
            hs.record(p, Time::new(t), s.sigma);
            ho.record(p, Time::new(t), s.omega);
        }
        (hs, ho)
    }

    #[test]
    fn sigma_prime_stays_in_block() {
        let mut oracle = PartitionSigmaOmega::new(
            6,
            theorem10_blocks(),
            Time::new(10),
            [pid(0), pid(1), pid(2)].into(),
        );
        let fp = FailurePattern::all_correct(6);
        let s = oracle.sample(pid(3), Time::new(1), &fp);
        assert_eq!(s.sigma, [pid(2), pid(3), pid(4), pid(5)].into());
        let s1 = oracle.sample(pid(0), Time::new(2), &fp);
        assert_eq!(s1.sigma, [pid(0)].into());
    }

    #[test]
    fn partition_histories_satisfy_definition7_part1() {
        let blocks = theorem10_blocks();
        let mut oracle = PartitionSigmaOmega::new(
            6,
            blocks.clone(),
            Time::new(20),
            [pid(0), pid(1), pid(2)].into(),
        );
        let mut fp = FailurePattern::all_correct(6);
        fp.record_crash(pid(4), Time::new(9));
        let (hs, _) = sample_everything(&mut oracle, &fp, 40);
        check_partition_sigma(&hs, &blocks, &fp).unwrap();
    }

    #[test]
    fn lemma9_histories_also_satisfy_sigma_k_and_omega_k() {
        // Lemma 9: (Σk,Ωk) is weaker than (Σ′k,Ω′k) — every partition
        // history passes the plain Σk and Ωk checkers.
        let blocks = theorem10_blocks();
        let k = blocks.len();
        let mut oracle =
            PartitionSigmaOmega::new(6, blocks, Time::new(15), [pid(0), pid(1), pid(2)].into());
        let fp = FailurePattern::all_correct(6);
        let (hs, ho) = sample_everything(&mut oracle, &fp, 40);
        check_sigma_k(&hs, k, &fp).unwrap();
        check_omega_k(&ho, k, &fp).unwrap();
    }

    #[test]
    fn sigma_k_minus_one_would_be_violated() {
        // The same histories REFUTE Σ_{k−1}: the k blocks provide k pairwise
        // disjoint quorums — that is exactly the partitioning power.
        let blocks = theorem10_blocks();
        let mut oracle =
            PartitionSigmaOmega::new(6, blocks, Time::new(15), [pid(0), pid(1), pid(2)].into());
        let fp = FailurePattern::all_correct(6);
        let (hs, _) = sample_everything(&mut oracle, &fp, 40);
        assert!(
            check_sigma_k(&hs, 2, &fp).is_err(),
            "3 disjoint quorums refute Σ2"
        );
    }

    #[test]
    fn omega_prime_pre_gst_points_into_own_block() {
        let mut oracle = PartitionSigmaOmega::new(
            6,
            theorem10_blocks(),
            Time::new(50),
            [pid(0), pid(1), pid(2)].into(),
        );
        let fp = FailurePattern::all_correct(6);
        let s = oracle.sample(pid(4), Time::new(1), &fp);
        // D̄ = {p3..p6}: window = 3 smallest members {2,3,4}.
        assert_eq!(s.omega, [pid(2), pid(3), pid(4)].into());
        assert!(!s.omega.is_disjoint(oracle.block_of(pid(4))));
    }

    #[test]
    fn restabilize_changes_ld() {
        let mut oracle = PartitionSigmaOmega::new(
            6,
            theorem10_blocks(),
            Time::new(5),
            [pid(0), pid(1), pid(2)].into(),
        );
        oracle.restabilize(Time::new(100), [pid(3), pid(4), pid(5)].into());
        let fp = FailurePattern::all_correct(6);
        let pre = oracle.sample(pid(0), Time::new(50), &fp);
        assert_eq!(
            pre.omega,
            [pid(0), pid(1), pid(2)].into(),
            "back to noise until new GST"
        );
        let post = oracle.sample(pid(0), Time::new(101), &fp);
        assert_eq!(post.omega, [pid(3), pid(4), pid(5)].into());
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn non_covering_blocks_rejected() {
        let _ = PartitionSigmaOmega::new(
            3,
            vec![[pid(0)].into(), [pid(1)].into()],
            Time::ZERO,
            [pid(0), pid(1)].into(),
        );
    }

    #[test]
    fn realistic_oracle_histories_validate() {
        let mut oracle = RealisticSigmaOmega::consensus(4, Time::new(8), pid(1));
        let mut fp = FailurePattern::all_correct(4);
        fp.record_crash(pid(3), Time::new(3));
        let mut hs = History::new();
        let mut ho = History::new();
        for t in 1..30u64 {
            let p = pid((t % 3) as usize); // p4 crashed; only p1..p3 query
            let s = oracle.sample(p, Time::new(t), &fp);
            hs.record(p, Time::new(t), s.sigma);
            ho.record(p, Time::new(t), s.omega);
        }
        check_sigma_k(&hs, 1, &fp).unwrap();
        check_omega_k(&ho, 1, &fp).unwrap();
    }
}
