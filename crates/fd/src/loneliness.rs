//! The loneliness detector L.
//!
//! Introduced (in generalized form L(k)) by the paper's authors in their
//! OPODIS'09 companion paper [2] and by Delporte-Gallet et al. (DISC'08) as
//! the weakest failure detector for message-passing (n−1)-set agreement. We
//! use it on the k = n−1 endpoint of Corollary 13 (the paper cites Σ(n−1)
//! from [3] for that endpoint; L is the equivalent classical device and
//! keeps the algorithm elementary — see DESIGN.md for the substitution
//! note).
//!
//! Specification (boolean output per process):
//!
//! * **Safety (PL)**: at least one process outputs `false` forever;
//! * **Liveness (AL)**: if exactly one process is correct, its output is
//!   eventually `true` forever.

use kset_sim::{FailurePattern, Oracle, ProcessId, Time};

use crate::samples::LonelinessSample;

/// A realistic L oracle driven by the observed failure pattern: a process
/// is told "lonely" once every other process has (observably) crashed.
///
/// *Safety*: at most one process can ever see every other process crashed,
/// so at least `n − 1` processes output `false` forever. *Liveness*: if
/// exactly one process is correct, the others eventually crash and from
/// then on its output is `true`.
#[derive(Debug, Clone)]
pub struct LonelinessOracle {
    n: usize,
}

impl LonelinessOracle {
    /// Creates the oracle for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        LonelinessOracle { n }
    }
}

impl Oracle for LonelinessOracle {
    type Sample = LonelinessSample;

    fn sample(&mut self, p: ProcessId, t: Time, observed: &FailurePattern) -> LonelinessSample {
        let everyone_else_crashed = ProcessId::all(self.n)
            .filter(|q| *q != p)
            .all(|q| observed.is_crashed(q, t));
        LonelinessSample(everyone_else_crashed)
    }
}

/// Checks a recorded loneliness history against the L specification,
/// projected to the finite horizon:
///
/// * safety: at least one process never output `true`;
/// * liveness: if exactly one process is correct and it queried after every
///   crash, its final sample is `true`.
pub fn check_loneliness(
    history: &crate::history::History<LonelinessSample>,
    fp: &FailurePattern,
) -> Result<(), String> {
    let n = fp.n();
    let mut ever_true = vec![false; n];
    for (p, _, s) in history.iter() {
        if s.0 {
            ever_true[p.index()] = true;
        }
    }
    // Safety is only meaningful for n ≥ 2: in a one-process system the
    // lone process IS alone, and the liveness clause forces `true` there.
    if ever_true.iter().all(|b| *b) && n > 1 {
        return Err("safety violated: every process output true at some point".into());
    }
    let correct = fp.correct();
    if let (1, Some(p)) = (correct.len(), correct.first()) {
        let last_crash = fp
            .faulty()
            .iter()
            .filter_map(|q| fp.crash_time(q))
            .max()
            .unwrap_or(Time::ZERO);
        let queried_late = history
            .of_process(p)
            .filter(|(t, _)| *t > last_crash)
            .last();
        if let Some((_, s)) = queried_late {
            if !s.0 {
                return Err(format!(
                    "liveness violated: lone correct {p} still sees false after all crashes"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn not_lonely_while_others_alive() {
        let mut l = LonelinessOracle::new(3);
        let fp = FailurePattern::all_correct(3);
        assert_eq!(l.sample(pid(0), Time::new(1), &fp), LonelinessSample(false));
    }

    #[test]
    fn lonely_once_everyone_else_crashed() {
        let mut l = LonelinessOracle::new(3);
        let mut fp = FailurePattern::all_correct(3);
        fp.record_crash(pid(1), Time::new(1));
        fp.record_crash(pid(2), Time::new(2));
        assert_eq!(l.sample(pid(0), Time::new(3), &fp), LonelinessSample(true));
        assert_eq!(l.sample(pid(0), Time::new(1), &fp), LonelinessSample(false));
    }

    #[test]
    fn generated_history_passes_checker() {
        let mut l = LonelinessOracle::new(3);
        let mut fp = FailurePattern::all_correct(3);
        let mut h = History::new();
        for t in 1..10u64 {
            if t == 3 {
                fp.record_crash(pid(1), Time::new(3));
            }
            if t == 5 {
                fp.record_crash(pid(2), Time::new(5));
            }
            let s = l.sample(pid(0), Time::new(t), &fp);
            h.record(pid(0), Time::new(t), s);
        }
        check_loneliness(&h, &fp).unwrap();
    }

    #[test]
    fn checker_rejects_all_true_history() {
        let fp = FailurePattern::all_correct(2);
        let mut h = History::new();
        h.record(pid(0), Time::new(1), LonelinessSample(true));
        h.record(pid(1), Time::new(2), LonelinessSample(true));
        assert!(check_loneliness(&h, &fp).unwrap_err().contains("safety"));
    }

    #[test]
    fn checker_rejects_liveness_failure() {
        let mut fp = FailurePattern::all_correct(2);
        fp.record_crash(pid(1), Time::new(1));
        let mut h = History::new();
        h.record(pid(0), Time::new(5), LonelinessSample(false));
        assert!(check_loneliness(&h, &fp).unwrap_err().contains("liveness"));
    }
}
