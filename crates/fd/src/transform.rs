//! Failure-detector transformations and the comparison relation.
//!
//! Section II-C of the paper: an algorithm `A_{D→D′}` *transforms* `D`
//! into `D′` if processes maintain output variables that emulate histories
//! of `D′` admissible for the same failure pattern. `D′` is *weaker* than
//! `D` when such a transformation exists; the hierarchy (weaker / strictly
//! weaker / equivalent / incomparable) is built on this.
//!
//! Our transformations are *history-level* (sample-to-sample, stateful per
//! process), which covers every transformation the paper actually uses:
//!
//! * [`PartitionToPlain`] — the **identity** transformation behind
//!   Lemma 9: every (Σ′k, Ω′k) sample *is* a (Σk, Ωk) sample; validity of
//!   the emulated history is what the lemma proves (and what the checkers
//!   verify on the wire).
//! * [`GammaToOmega2`] — the extraction in Theorem 10's condition (C):
//!   from the constrained leader oracle Γ (an Ωk whose stabilized set
//!   intersects `D̄` in exactly two processes `ps`, `pt`), emulate Ω2 for
//!   the subsystem `D̄` by projecting the sample onto `D̄` and padding to
//!   two ids. Since (Σ, Ω2) is strictly weaker than (Σ, Ω) (Neiger), this
//!   is why the restricted detector cannot solve consensus in `⟨D̄⟩`.
//! * [`SuspectsToTrusted`] — P's complement view: a perfect suspect list
//!   emulates a Σ history (trust the unsuspected), showing `Σ ⪯ P`.
//!
//! [`emulate`] runs a transformation over a recorded history, producing
//! the emulated history for the class checkers to validate — the
//! executable form of "the emulated outputs are admissible for `F(·)`".

use kset_sim::{ProcessId, ProcessSet, Time};

use crate::history::History;
use crate::omega::k_window;
use crate::samples::{LeaderSample, QuorumSample, SigmaOmegaSample};

/// A stateful, per-query transformation from samples of `In` to samples of
/// `Out` (the algorithm `A_{D→D′}` restricted to its oracle interface).
pub trait FdTransform {
    /// Input sample type (class `D`).
    type In;
    /// Output sample type (class `D′`).
    type Out;

    /// Emulates one output sample from one input sample.
    fn transform(&mut self, p: ProcessId, t: Time, sample: &Self::In) -> Self::Out;
}

/// Runs a transformation over an entire history, producing the emulated
/// history (queries at the same `(p, t)` points).
pub fn emulate<T: FdTransform>(transform: &mut T, history: &History<T::In>) -> History<T::Out> {
    let mut out = History::new();
    for (p, t, s) in history.iter() {
        out.record(p, t, transform.transform(p, t, s));
    }
    out
}

/// Lemma 9's transformation: (Σ′k, Ω′k) samples pass through unchanged and
/// are read as (Σk, Ωk) samples. The *content* of the lemma is that the
/// emulated history always validates — see the tests and
/// `props_fd.rs::lemma9_on_random_partitions`.
#[derive(Debug, Clone, Default)]
pub struct PartitionToPlain;

impl FdTransform for PartitionToPlain {
    type In = SigmaOmegaSample;
    type Out = SigmaOmegaSample;

    fn transform(
        &mut self,
        _p: ProcessId,
        _t: Time,
        sample: &SigmaOmegaSample,
    ) -> SigmaOmegaSample {
        sample.clone()
    }
}

/// Theorem 10(C)'s extraction: emulate Ω2 for the subsystem `D̄` from the
/// constrained leader oracle Γ. Projects each Ωk sample onto `D̄`; once the
/// input stabilizes on `LD` with `|LD ∩ D̄| = 2`, the output stabilizes on
/// those two processes. Pre-stabilization samples are padded/truncated to
/// exactly two ids from `D̄`.
#[derive(Debug, Clone)]
pub struct GammaToOmega2 {
    dbar: ProcessSet,
}

impl GammaToOmega2 {
    /// Creates the extraction for the subsystem `dbar`.
    ///
    /// # Panics
    ///
    /// Panics if `|dbar| < 2` (Ω2 needs two candidates to point at).
    pub fn new(dbar: ProcessSet) -> Self {
        assert!(dbar.len() >= 2, "Ω2 extraction needs |D̄| ≥ 2");
        GammaToOmega2 { dbar }
    }
}

impl FdTransform for GammaToOmega2 {
    type In = LeaderSample;
    type Out = LeaderSample;

    fn transform(&mut self, _p: ProcessId, _t: Time, sample: &LeaderSample) -> LeaderSample {
        let in_dbar = sample.intersection(self.dbar);
        if in_dbar.len() == 2 {
            return in_dbar;
        }
        // Pad (or trim) deterministically from D̄'s smallest ids; the
        // emulation only needs to be *eventually* exactly the stabilized
        // pair, which the |LD ∩ D̄| = 2 property of Γ guarantees.
        let mut out: LeaderSample = in_dbar.iter().take(2).collect();
        for q in self.dbar {
            if out.len() == 2 {
                break;
            }
            out.insert(q);
        }
        out
    }
}

/// `Σ ⪯ P`: trust everyone not suspected by a perfect detector. The
/// emulated quorums are supersets of the correct set at all times, hence
/// intersect pairwise, and they shed crashed processes as P reports them —
/// a valid Σ history.
#[derive(Debug, Clone)]
pub struct SuspectsToTrusted {
    n: usize,
}

impl SuspectsToTrusted {
    /// Creates the complementation for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        SuspectsToTrusted { n }
    }
}

impl FdTransform for SuspectsToTrusted {
    type In = ProcessSet; // suspect set
    type Out = QuorumSample;

    fn transform(&mut self, _p: ProcessId, _t: Time, suspects: &ProcessSet) -> QuorumSample {
        suspects.complement(self.n)
    }
}

/// Convenience: the Ωk-side of a combined (Σk, Ωk) history.
pub fn omega_component(history: &History<SigmaOmegaSample>) -> History<LeaderSample> {
    let mut out = History::new();
    for (p, t, s) in history.iter() {
        out.record(p, t, s.omega);
    }
    out
}

/// Convenience: the Σk-side of a combined (Σk, Ωk) history.
pub fn sigma_component(history: &History<SigmaOmegaSample>) -> History<QuorumSample> {
    let mut out = History::new();
    for (p, t, s) in history.iter() {
        out.record(p, t, s.sigma);
    }
    out
}

/// The `k_window` helper re-exported for transformation authors.
pub fn window(pool: ProcessSet, k: usize, n: usize) -> LeaderSample {
    k_window(pool, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::{check_omega_k, check_sigma_k};
    use crate::partition_fd::PartitionSigmaOmega;
    use crate::perfect::PerfectOracle;
    use kset_sim::{FailurePattern, Oracle};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Lemma 9 through the transformation API: emulated (Σk, Ωk) histories
    /// from the partition detector validate.
    #[test]
    fn lemma9_via_emulation() {
        let n = 5;
        let blocks: Vec<ProcessSet> = vec![
            [pid(0)].into(),
            [pid(1)].into(),
            [pid(2), pid(3), pid(4)].into(),
        ];
        let k = blocks.len();
        let tgst = Time::new(10);
        let mut oracle = PartitionSigmaOmega::new(n, blocks, tgst, [pid(0), pid(1), pid(2)].into());
        let fp = FailurePattern::all_correct(n);
        let mut raw: History<SigmaOmegaSample> = History::new();
        for t in 1..30u64 {
            let p = pid((t % 5) as usize);
            raw.record(p, Time::new(t), oracle.sample(p, Time::new(t), &fp));
        }
        let mut id = PartitionToPlain;
        let emulated = emulate(&mut id, &raw);
        check_sigma_k(&sigma_component(&emulated), k, &fp).unwrap();
        check_omega_k(&omega_component(&emulated), k, &fp).unwrap();
    }

    /// The Γ → Ω2 extraction stabilizes on the two D̄ members of LD and
    /// validates as an Ω2 history of the subsystem.
    #[test]
    fn gamma_to_omega2_extraction() {
        let dbar: ProcessSet = [pid(0), pid(1), pid(2), pid(3)].into();
        let mut t10 = GammaToOmega2::new(dbar);
        // Γ's stabilized LD intersects D̄ in {p1, p2} and holds one
        // outsider (p5).
        let ld: LeaderSample = [pid(0), pid(1), pid(4)].into();
        let mut raw: History<LeaderSample> = History::new();
        // Pre-stabilization noise, then LD.
        raw.record(pid(0), Time::new(1), [pid(2), pid(3), pid(4)].into());
        for t in 5..12u64 {
            let p = pid((t % 4) as usize);
            raw.record(p, Time::new(t), ld);
        }
        let emulated = emulate(&mut t10, &raw);
        // Every output is 2 ids from D̄.
        for (_, _, s) in emulated.iter() {
            assert_eq!(s.len(), 2);
            assert!(s.is_subset(dbar));
        }
        // The stabilized output is exactly LD ∩ D̄ = {p1, p2}.
        let fp_sub = FailurePattern::all_correct(4);
        let tgst = check_omega_k(&emulated, 2, &fp_sub).unwrap();
        assert!(tgst >= Time::new(1));
        let (_, last) = emulated.of_process(pid(0)).last().unwrap();
        assert_eq!(last, &[pid(0), pid(1)].into());
    }

    #[test]
    #[should_panic(expected = "≥ 2")]
    fn omega2_extraction_needs_two_candidates() {
        let _ = GammaToOmega2::new([pid(0)].into());
    }

    /// Σ ⪯ P: the complemented perfect-detector history validates as Σ1.
    #[test]
    fn sigma_from_perfect() {
        let n = 4;
        let mut p_oracle = PerfectOracle::new();
        let mut fp = FailurePattern::all_correct(n);
        let mut raw: History<ProcessSet> = History::new();
        for t in 1..20u64 {
            if t == 6 {
                fp.record_crash(pid(3), Time::new(6));
            }
            let p = pid((t % 3) as usize);
            raw.record(p, Time::new(t), p_oracle.sample(p, Time::new(t), &fp));
        }
        let mut compl = SuspectsToTrusted::new(n);
        let emulated = emulate(&mut compl, &raw);
        check_sigma_k(&emulated, 1, &fp).unwrap();
    }

    #[test]
    fn component_projections_split_pairs() {
        let mut h: History<SigmaOmegaSample> = History::new();
        h.record(
            pid(0),
            Time::new(1),
            SigmaOmegaSample::new([pid(0)].into(), [pid(1)].into()),
        );
        let sigma = sigma_component(&h);
        let omega = omega_component(&h);
        assert_eq!(sigma.get(pid(0), Time::new(1)), Some(&[pid(0)].into()));
        assert_eq!(omega.get(pid(0), Time::new(1)), Some(&[pid(1)].into()));
    }
}
