//! The perfect failure detector P.
//!
//! The strongest class of Chandra–Toueg's hierarchy: *strong accuracy* (no
//! process is suspected before it crashes) and *strong completeness*
//! (eventually every crashed process is suspected by every correct
//! process). With P, consensus is solvable for any number of crash
//! failures — the workspace uses it as the dimension-6 contrast point: the
//! same asynchronous system where Theorem 2 rules out 1-resilient
//! consensus becomes (n−1)-resilient once dimension 6 turns favourable
//! with a strong enough detector.

use kset_sim::{FailurePattern, Oracle, ProcessId, ProcessSet, Time};

/// Output of P: the set of currently *suspected* processes.
pub type SuspectSample = ProcessSet;

/// A perfect failure detector driven by the observed failure pattern: it
/// suspects exactly the processes that have already crashed.
///
/// * Strong accuracy: `H(p, t) ⊆ F(t)` by construction.
/// * Strong completeness: once `q` crashes, every later sample contains
///   `q`.
#[derive(Debug, Clone, Default)]
pub struct PerfectOracle;

impl PerfectOracle {
    /// Creates the oracle.
    pub fn new() -> Self {
        PerfectOracle
    }
}

impl Oracle for PerfectOracle {
    type Sample = SuspectSample;

    fn sample(&mut self, _p: ProcessId, t: Time, observed: &FailurePattern) -> SuspectSample {
        observed.crashed_at(t)
    }
}

/// Checks a suspect history against the P specification on the finite
/// horizon: accuracy exactly (no sample may suspect a process before its
/// crash time), completeness projected (the final sample of every correct
/// process contains every process that crashed before it).
pub fn check_perfect(
    history: &crate::history::History<SuspectSample>,
    fp: &FailurePattern,
) -> Result<(), String> {
    for (p, t, s) in history.iter() {
        for q in s {
            if !fp.is_crashed(q, t) {
                return Err(format!("accuracy violated: {p} suspects alive {q} at {t}"));
            }
        }
    }
    for p in fp.correct() {
        if let Some((t, last)) = history.of_process(p).last() {
            for q in fp.crashed_at(t) {
                // Allow the crash at exactly t (the sample may predate the
                // crash within the same instant).
                if fp.crash_time(q).map(|c| c < t).unwrap_or(false) && !last.contains(q) {
                    return Err(format!(
                        "completeness violated: {p}'s final sample at {t} misses crashed {q}"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn suspects_exactly_the_crashed() {
        let mut oracle = PerfectOracle::new();
        let mut fp = FailurePattern::all_correct(3);
        assert!(oracle.sample(pid(0), Time::new(1), &fp).is_empty());
        fp.record_crash(pid(2), Time::new(2));
        assert_eq!(oracle.sample(pid(0), Time::new(3), &fp), [pid(2)].into());
        assert!(
            oracle.sample(pid(0), Time::new(1), &fp).is_empty(),
            "not before the crash"
        );
    }

    #[test]
    fn generated_history_is_valid() {
        let mut oracle = PerfectOracle::new();
        let mut fp = FailurePattern::all_correct(3);
        let mut h = History::new();
        for t in 1..10u64 {
            if t == 4 {
                fp.record_crash(pid(1), Time::new(4));
            }
            let s = oracle.sample(pid(0), Time::new(t), &fp);
            h.record(pid(0), Time::new(t), s);
        }
        check_perfect(&h, &fp).unwrap();
    }

    #[test]
    fn checker_rejects_false_suspicion() {
        let fp = FailurePattern::all_correct(2);
        let mut h = History::new();
        h.record(pid(0), Time::new(1), SuspectSample::from([pid(1)]));
        assert!(check_perfect(&h, &fp).unwrap_err().contains("accuracy"));
    }

    #[test]
    fn checker_rejects_missing_suspicion() {
        let mut fp = FailurePattern::all_correct(2);
        fp.record_crash(pid(1), Time::new(1));
        let mut h = History::new();
        h.record(pid(0), Time::new(9), SuspectSample::new());
        assert!(check_perfect(&h, &fp).unwrap_err().contains("completeness"));
    }
}
