//! # kset-fd — failure-detector framework
//!
//! Failure-detector classes, history recording, and validity checkers for
//! the `kset` workspace, implementing Section II-C and Definitions 4, 5 and
//! 7 of Biely–Robinson–Schmid (OPODIS 2011).
//!
//! ## Contents
//!
//! * **Samples** — [`QuorumSample`] (Σk), [`LeaderSample`] (Ωk),
//!   [`SigmaOmegaSample`] (the pair), [`LonelinessSample`] (L).
//! * **Oracles** (implementations of [`kset_sim::Oracle`]):
//!   [`TrustAliveSigma`], [`EventualLeaderOmega`],
//!   [`PartitionSigmaOmega`] — the (Σ′k,Ω′k) of Definition 7 —,
//!   [`RealisticSigmaOmega`], [`LonelinessOracle`].
//! * **Histories** — [`History`], [`Recorder`]: capture `H(p, t)` for
//!   post-hoc validation; [`HistoryObserver`] records the same query
//!   history (at fingerprint level) through the engine-agnostic
//!   [`kset_sim::observe::Observer`] API.
//! * **Checkers** — [`check_sigma_k`], [`check_omega_k`],
//!   [`check_partition_sigma`], [`check_loneliness`]: executable forms of
//!   the class definitions; Lemma 9 is verified by running partition
//!   histories through the plain Σk/Ωk checkers.
//!
//! ```
//! use kset_fd::{check_sigma_k, History, TrustAliveSigma};
//! use kset_sim::{FailurePattern, Oracle, ProcessId, Time};
//!
//! let mut sigma = TrustAliveSigma::new(3);
//! let fp = FailurePattern::all_correct(3);
//! let mut h = History::new();
//! for t in 1..5u64 {
//!     let p = ProcessId::new((t % 3) as usize);
//!     let s = sigma.sample(p, Time::new(t), &fp);
//!     h.record(p, Time::new(t), s);
//! }
//! assert!(check_sigma_k(&h, 1, &fp).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod checkers;
mod history;
mod loneliness;
mod omega;
mod partition_fd;
mod perfect;
mod samples;
pub mod select;
mod sigma;
pub mod transform;

pub use checkers::{
    check_omega_k, check_partition_sigma, check_sigma_k, OmegaViolation, SigmaViolation,
};
pub use history::{History, HistoryObserver, Recorder};
pub use loneliness::{check_loneliness, LonelinessOracle};
pub use omega::EventualLeaderOmega;
pub use partition_fd::{PartitionSigmaOmega, RealisticSigmaOmega};
pub use perfect::{check_perfect, PerfectOracle, SuspectSample};
pub use samples::{LeaderSample, LonelinessSample, QuorumSample, SigmaOmegaSample};
pub use select::{loneliness_for, perfect_for, scenario_leaders, sigma_omega_for};
pub use sigma::TrustAliveSigma;
pub use transform::{
    emulate, omega_component, sigma_component, FdTransform, GammaToOmega2, PartitionToPlain,
    SuspectsToTrusted,
};
