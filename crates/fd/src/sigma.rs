//! Realistic Σ oracles.
//!
//! [`TrustAliveSigma`] outputs the set of processes that have not crashed
//! yet. Its samples are nested (shrinking over time), and any two nonempty
//! nested sets intersect, so the intersection property of Σ1 — and a
//! fortiori Σk for every k — holds; once all faulty processes have crashed
//! the output equals the correct set, giving liveness. This is the
//! "perfect-information" quorum detector used on the possibility side
//! (experiment E5).

use kset_sim::{FailurePattern, Oracle, ProcessId, Time};

use crate::samples::QuorumSample;

/// Σ oracle trusting exactly the not-yet-crashed processes.
///
/// # Examples
///
/// ```
/// use kset_fd::TrustAliveSigma;
/// use kset_sim::{FailurePattern, Oracle, ProcessId, Time};
///
/// let mut sigma = TrustAliveSigma::new(3);
/// let mut fp = FailurePattern::all_correct(3);
/// fp.record_crash(ProcessId::new(2), Time::new(1));
/// let s = sigma.sample(ProcessId::new(0), Time::new(2), &fp);
/// assert_eq!(s, [ProcessId::new(0), ProcessId::new(1)].into());
/// ```
#[derive(Debug, Clone)]
pub struct TrustAliveSigma {
    n: usize,
}

impl TrustAliveSigma {
    /// Creates the oracle for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        TrustAliveSigma { n }
    }
}

impl Oracle for TrustAliveSigma {
    type Sample = QuorumSample;

    fn sample(&mut self, _p: ProcessId, t: Time, observed: &FailurePattern) -> QuorumSample {
        ProcessId::all(self.n)
            .filter(|q| !observed.is_crashed(*q, t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::check_sigma_k;
    use crate::history::History;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn samples_shrink_with_crashes() {
        let mut sigma = TrustAliveSigma::new(3);
        let mut fp = FailurePattern::all_correct(3);
        let s1 = sigma.sample(pid(0), Time::new(1), &fp);
        assert_eq!(s1.len(), 3);
        fp.record_crash(pid(1), Time::new(2));
        let s2 = sigma.sample(pid(0), Time::new(3), &fp);
        assert_eq!(s2, [pid(0), pid(2)].into());
        assert!(s2.is_subset(s1), "samples are nested");
    }

    #[test]
    fn histories_validate_as_sigma1() {
        let mut sigma = TrustAliveSigma::new(4);
        let mut fp = FailurePattern::all_correct(4);
        let mut h = History::new();
        for t in 1..10u64 {
            if t == 4 {
                fp.record_crash(pid(3), Time::new(4));
            }
            let p = pid((t % 3) as usize);
            let s = sigma.sample(p, Time::new(t), &fp);
            h.record(p, Time::new(t), s);
        }
        assert!(check_sigma_k(&h, 1, &fp).is_ok());
    }
}
