//! Ωk oracles: generalized leader detectors (Definition 5 of the paper).
//!
//! [`EventualLeaderOmega`] is the canonical *planned-stabilization*
//! generator: before a configured `t_GST` it emits per-querier "noise" (a
//! deterministic window of k ids around the querier — different processes
//! see different leaders, as real Ω implementations do during chaos); from
//! `t_GST` on, every query returns the same fixed set `LD`. The caller
//! chooses `LD`; Definition 5 requires `LD ∩ (Π \ F) ≠ ∅`, which the
//! history checker [`crate::checkers::check_omega_k`] verifies against the
//! actual failure pattern.

use kset_sim::{FailurePattern, Oracle, ProcessId, ProcessSet, Time};

use crate::samples::LeaderSample;

/// Ωk oracle with planned stabilization.
#[derive(Debug, Clone)]
pub struct EventualLeaderOmega {
    n: usize,
    k: usize,
    tgst: Time,
    ld: LeaderSample,
}

impl EventualLeaderOmega {
    /// Creates an Ωk oracle that stabilizes on `ld` strictly after `tgst`.
    ///
    /// # Panics
    ///
    /// Panics if `|ld| != k`, `k` is zero or exceeds `n`, or `ld` contains
    /// out-of-range ids.
    pub fn new(n: usize, k: usize, tgst: Time, ld: LeaderSample) -> Self {
        assert!(k >= 1 && k <= n, "Ωk needs 1 ≤ k ≤ n");
        assert_eq!(ld.len(), k, "LD must contain exactly k ids");
        assert!(ld.iter().all(|p| p.index() < n), "LD id out of range");
        EventualLeaderOmega { n, k, tgst, ld }
    }

    /// An Ω1 oracle stabilizing on a single `leader`.
    pub fn single(n: usize, tgst: Time, leader: ProcessId) -> Self {
        Self::new(n, 1, tgst, [leader].into())
    }

    /// The stabilization time.
    pub fn tgst(&self) -> Time {
        self.tgst
    }

    /// The final leader set `LD`.
    pub fn ld(&self) -> &LeaderSample {
        &self.ld
    }

    /// The deterministic pre-GST noise for querier `p`: the window of `k`
    /// ids `{p, p+1, …, p+k−1}` (mod n). Distinct queriers see distinct
    /// sets (for k < n), modelling pre-stabilization disagreement.
    fn noise(&self, p: ProcessId) -> LeaderSample {
        (0..self.k)
            .map(|i| ProcessId::new((p.index() + i) % self.n))
            .collect()
    }
}

impl Oracle for EventualLeaderOmega {
    type Sample = LeaderSample;

    fn sample(&mut self, p: ProcessId, t: Time, _observed: &FailurePattern) -> LeaderSample {
        if t > self.tgst {
            self.ld
        } else {
            self.noise(p)
        }
    }
}

/// A window-of-ids helper used by several oracles: the `k` smallest ids of
/// `pool`, padded (if the pool is too small) with the smallest ids of
/// `0..n` not already chosen.
pub(crate) fn k_window(pool: ProcessSet, k: usize, n: usize) -> LeaderSample {
    let mut out: LeaderSample = pool.iter().take(k).collect();
    let mut filler = ProcessId::all(n);
    while out.len() < k {
        // kset-lint: allow(panic-in-library): invariant — every oracle constructor asserts k ≤ n, so 0..n always holds k filler ids
        let next = filler.next().expect("k ≤ n guarantees enough filler ids");
        out.insert(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::check_omega_k;
    use crate::history::History;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn stabilizes_after_tgst() {
        let mut omega = EventualLeaderOmega::single(4, Time::new(5), pid(2));
        let fp = FailurePattern::all_correct(4);
        let pre = omega.sample(pid(0), Time::new(3), &fp);
        assert_eq!(pre, [pid(0)].into(), "pre-GST noise is the querier window");
        let post = omega.sample(pid(0), Time::new(6), &fp);
        assert_eq!(post, [pid(2)].into());
        let post_b = omega.sample(pid(3), Time::new(9), &fp);
        assert_eq!(post_b, [pid(2)].into(), "all queriers agree after GST");
    }

    #[test]
    fn noise_windows_have_size_k() {
        let mut omega =
            EventualLeaderOmega::new(5, 3, Time::new(10), [pid(0), pid(1), pid(2)].into());
        let fp = FailurePattern::all_correct(5);
        for i in 0..5 {
            let s = omega.sample(pid(i), Time::new(1), &fp);
            assert_eq!(s.len(), 3);
        }
        // Wrap-around window of p4: {4, 0, 1}.
        let s = omega.sample(pid(4), Time::new(1), &fp);
        assert_eq!(s, [pid(4), pid(0), pid(1)].into());
    }

    #[test]
    fn generated_history_passes_omega_checker() {
        let mut omega = EventualLeaderOmega::new(4, 2, Time::new(4), [pid(1), pid(3)].into());
        let fp = FailurePattern::all_correct(4);
        let mut h = History::new();
        for t in 1..12u64 {
            let p = pid((t % 4) as usize);
            let s = omega.sample(p, Time::new(t), &fp);
            h.record(p, Time::new(t), s);
        }
        let tgst = check_omega_k(&h, 2, &fp).unwrap();
        assert!(tgst <= Time::new(4));
    }

    #[test]
    #[should_panic(expected = "exactly k ids")]
    fn wrong_ld_size_rejected() {
        let _ = EventualLeaderOmega::new(4, 2, Time::ZERO, [pid(0)].into());
    }

    #[test]
    fn k_window_pads_from_universe() {
        let pool: ProcessSet = [pid(3)].into();
        let w = k_window(pool, 3, 5);
        assert_eq!(w, [pid(3), pid(0), pid(1)].into());
        assert_eq!(k_window(ProcessSet::new(), 2, 4), [pid(0), pid(1)].into());
    }
}
