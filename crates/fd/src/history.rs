//! Failure-detector histories: recorded `H(p, t)` maps.
//!
//! Section II-C of the paper defines the behaviour of a detector in a run by
//! its *history function* `H(p, t)`. The simulator queries oracles live; a
//! [`Recorder`] wrapper captures every query so the resulting [`History`]
//! can be validated post-hoc against the class definitions (Definitions 4,
//! 5 and 7) by the checkers in [`crate::checkers`] — this is how Lemma 9
//! ("(Σk,Ωk) is weaker than (Σ′k,Ω′k)") is verified executably.
//!
//! History recording also rides the workspace's uniform observation API:
//! [`HistoryObserver`] is a [`kset_sim::observe::Observer`] that rebuilds
//! the query history — at the fingerprint level the engine reports — from
//! the [`FdSampleEvent`] stream of any observed drive, with no oracle
//! wrapping at all. [`History::fingerprints`] projects a sample-level
//! history onto the same representation, so the two recording paths can
//! be compared entry for entry (and are, in this module's tests).

use std::collections::BTreeMap;

use kset_sim::observe::{FdSampleEvent, Observer};
use kset_sim::{fingerprint, FailurePattern, Oracle, ProcessId, ProcessSet, Time};

/// A finite recorded history: every `(p, t)` that was actually queried,
/// with its sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History<S> {
    samples: BTreeMap<(ProcessId, Time), S>,
}

impl<S> Default for History<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> History<S> {
    /// An empty history.
    pub fn new() -> Self {
        History {
            samples: BTreeMap::new(),
        }
    }

    /// Records `H(p, t) = sample`.
    pub fn record(&mut self, p: ProcessId, t: Time, sample: S) {
        self.samples.insert((p, t), sample);
    }

    /// Looks up `H(p, t)` if `(p, t)` was queried.
    pub fn get(&self, p: ProcessId, t: Time) -> Option<&S> {
        self.samples.get(&(p, t))
    }

    /// All recorded queries in `(p, t)` order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Time, &S)> {
        self.samples.iter().map(|((p, t), s)| (*p, *t, s))
    }

    /// All queries of one process in time order.
    pub fn of_process(&self, p: ProcessId) -> impl Iterator<Item = (Time, &S)> {
        self.samples
            .iter()
            .filter(move |((q, _), _)| *q == p)
            .map(|((_, t), s)| (*t, s))
    }

    /// The distinct processes that queried.
    pub fn queriers(&self) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self.samples.keys().map(|(p, _)| *p).collect();
        out.dedup();
        out
    }

    /// The latest query time, if any.
    pub fn horizon(&self) -> Option<Time> {
        self.samples.keys().map(|(_, t)| *t).max()
    }

    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The sub-history containing only queries by processes in `keep`.
    pub fn restricted_to(&self, keep: ProcessSet) -> History<S>
    where
        S: Clone,
    {
        History {
            samples: self
                .samples
                .iter()
                .filter(|((p, _), _)| keep.contains(*p))
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
        }
    }

    /// Whether no query was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The fingerprint-level projection of this history: every sample
    /// replaced by its 64-bit fingerprint — the representation the engine
    /// reports through [`FdSampleEvent`]s, so a sample-level history
    /// captured by a [`Recorder`] can be compared entry for entry with the
    /// history a [`HistoryObserver`] rebuilt from the event stream.
    pub fn fingerprints(&self) -> History<u64>
    where
        S: std::hash::Hash,
    {
        History {
            samples: self
                .samples
                .iter()
                .map(|(key, s)| (*key, fingerprint(s)))
                .collect(),
        }
    }
}

/// Oracle wrapper that records every sample it hands out.
///
/// # Examples
///
/// ```
/// use kset_fd::Recorder;
/// use kset_sim::{FnOracle, Oracle, ProcessId, Time, FailurePattern};
///
/// let inner = FnOracle::new(|p: ProcessId, _t, _fp: &FailurePattern| p.index());
/// let mut rec = Recorder::new(inner);
/// let fp = FailurePattern::all_correct(2);
/// rec.sample(ProcessId::new(1), Time::new(3), &fp);
/// assert_eq!(rec.history().get(ProcessId::new(1), Time::new(3)), Some(&1));
/// ```
#[derive(Debug)]
pub struct Recorder<O: Oracle> {
    inner: O,
    history: History<O::Sample>,
}

impl<O: Oracle> Recorder<O> {
    /// Wraps `inner`, recording its samples.
    pub fn new(inner: O) -> Self {
        Recorder {
            inner,
            history: History::new(),
        }
    }

    /// The history recorded so far.
    pub fn history(&self) -> &History<O::Sample> {
        &self.history
    }

    /// Consumes the recorder, returning the history.
    pub fn into_history(self) -> History<O::Sample> {
        self.history
    }
}

impl<O: Oracle> Oracle for Recorder<O> {
    type Sample = O::Sample;

    fn sample(&mut self, p: ProcessId, t: Time, observed: &FailurePattern) -> Self::Sample {
        let s = self.inner.sample(p, t, observed);
        self.history.record(p, t, s.clone());
        s
    }
}

/// Detector-history recording on the uniform observation API: rebuilds the
/// query history `H(p, t)` — at the fingerprint level — from the
/// [`FdSampleEvent`] stream of any
/// [`drive_observed`](kset_sim::Engine::drive_observed), with no oracle
/// wrapping.
///
/// Where [`Recorder`] captures the actual *samples* (which the class
/// checkers like [`check_sigma_k`](crate::check_sigma_k) need), this
/// observer captures what the engine itself certifies about the run:
/// which `(p, t)` pairs queried, and the fingerprint of each answer. For
/// the same run the two agree via [`History::fingerprints`].
#[derive(Debug, Clone, Default)]
pub struct HistoryObserver {
    history: History<u64>,
}

impl HistoryObserver {
    /// An observer with an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fingerprint history recorded so far.
    pub fn history(&self) -> &History<u64> {
        &self.history
    }

    /// Consumes the observer, returning the history.
    pub fn into_history(self) -> History<u64> {
        self.history
    }
}

impl<V> Observer<V> for HistoryObserver {
    fn on_fd_sample(&mut self, event: &FdSampleEvent) {
        if let Some(fp) = event.fd_fp {
            self.history.record(event.pid, event.time, fp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kset_sim::FnOracle;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn record_and_query() {
        let mut h = History::new();
        h.record(pid(0), Time::new(1), "a");
        h.record(pid(0), Time::new(2), "b");
        h.record(pid(1), Time::new(3), "c");
        assert_eq!(h.get(pid(0), Time::new(2)), Some(&"b"));
        assert_eq!(h.get(pid(1), Time::new(1)), None);
        assert_eq!(h.len(), 3);
        assert_eq!(h.horizon(), Some(Time::new(3)));
    }

    #[test]
    fn of_process_is_time_ordered() {
        let mut h = History::new();
        h.record(pid(0), Time::new(5), 50);
        h.record(pid(0), Time::new(2), 20);
        h.record(pid(1), Time::new(3), 30);
        let times: Vec<u64> = h.of_process(pid(0)).map(|(t, _)| t.raw()).collect();
        assert_eq!(times, vec![2, 5]);
    }

    #[test]
    fn empty_history() {
        let h: History<u8> = History::new();
        assert!(h.is_empty());
        assert_eq!(h.horizon(), None);
        assert!(h.queriers().is_empty());
    }

    #[test]
    fn history_observer_matches_oracle_recorder() {
        // The two recording paths — the oracle-wrapping Recorder and the
        // engine-event HistoryObserver — must agree entry for entry on the
        // same run, at the fingerprint level.
        use kset_sim::sched::round_robin::RoundRobin;
        use kset_sim::{
            CrashPlan, Effects, Engine, Envelope, Process, ProcessInfo, SimEngine, Simulation,
        };

        #[derive(Debug, Clone, Hash)]
        struct Probe {
            ticks: u64,
        }
        impl Process for Probe {
            type Msg = ();
            type Input = ();
            type Output = u64;
            type Fd = u64;
            fn init(_info: ProcessInfo, _input: ()) -> Self {
                Probe { ticks: 0 }
            }
            fn step(
                &mut self,
                _delivered: &[Envelope<()>],
                fd: Option<&u64>,
                effects: &mut Effects<(), u64>,
            ) {
                self.ticks += 1;
                if self.ticks >= 3 {
                    effects.decide(*fd.expect("oracle-backed run"));
                }
            }
        }

        let oracle = FnOracle::new(|p: ProcessId, t: Time, _fp: &FailurePattern| {
            p.index() as u64 * 1000 + t.raw()
        });
        let mut rec = Recorder::new(oracle);
        let sim: Simulation<Probe, _> =
            Simulation::with_oracle(vec![(), ()], &mut rec, CrashPlan::none());
        let mut engine = SimEngine::new(sim, RoundRobin::new());
        let mut observer = HistoryObserver::new();
        engine.drive_observed(100, &mut observer);
        drop(engine);
        assert!(!rec.history().is_empty());
        assert_eq!(rec.history().len(), observer.history().len());
        assert_eq!(rec.history().fingerprints(), *observer.history());
    }

    #[test]
    fn recorder_captures_all_samples() {
        let inner = FnOracle::new(|p: ProcessId, t: Time, _fp: &FailurePattern| {
            p.index() as u64 * 100 + t.raw()
        });
        let mut rec = Recorder::new(inner);
        let fp = FailurePattern::all_correct(2);
        rec.sample(pid(0), Time::new(1), &fp);
        rec.sample(pid(1), Time::new(2), &fp);
        let h = rec.into_history();
        assert_eq!(h.get(pid(0), Time::new(1)), Some(&1));
        assert_eq!(h.get(pid(1), Time::new(2)), Some(&102));
    }
}
