//! Offline stand-in for the `proptest` crate.
//!
//! The build environment of this workspace has no crates.io access, so this
//! crate implements the API subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, …) { body }`),
//!   including `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * integer-range strategies (half-open, inclusive, and from), tuples,
//!   [`collection::vec`], and [`option::of`].
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! reports its panic message directly. Generation is deterministic per test
//! (seeded from the test's module path and name), so failures reproduce.

#![warn(rust_2018_idioms)]

use std::fmt;

/// Why a generated test case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generation machinery.
pub mod test_runner {
    /// SplitMix64-based generator used for all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test's name).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// The strategy abstraction: something that can generate values.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A value generator.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u128) - (lo as u128) + 1;
                    (lo as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start;
                    let span = (<$t>::MAX as u128) - (lo as u128) + 1;
                    (lo as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// The accepted length specifications of [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<T>`: `None` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

#[doc(hidden)]
pub fn __format_failure(args: fmt::Arguments<'_>) -> TestCaseError {
    TestCaseError::Fail(args.to_string())
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::__format_failure(format_args!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(l == r) {
                    return ::std::result::Result::Err($crate::__format_failure(
                        format_args!($($fmt)*),
                    ));
                }
            }
        }
    };
}

/// Rejects the current case (inputs outside the property's domain).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines property tests (see the crate docs for the supported subset).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(32).max(32);
            while accepted < cfg.cases && attempts < max_attempts {
                attempts += 1;
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        // kset-lint: allow(panic-in-library): upstream proptest contract — a failing property panics the generated #[test]; this macro body only ever expands inside test code
                        panic!("property {} failed: {}", stringify!($name), msg)
                    }
                }
            }
            assert!(
                accepted > 0,
                "property {}: every generated case was rejected",
                stringify!($name)
            );
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges generate in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 0u8..=4, z in 10u64..) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(z >= 10);
        }

        /// Tuples, vecs and options compose.
        #[test]
        fn composite_strategies(
            pairs in collection::vec((0usize..5, 0u64..10), 0..7),
            opts in collection::vec(option::of(0u32..3), 4),
        ) {
            prop_assert!(pairs.len() < 7);
            prop_assert_eq!(opts.len(), 4);
            for (a, b) in &pairs {
                prop_assert!(*a < 5 && *b < 10, "pair ({a}, {b}) out of bounds");
            }
        }

        /// Assumptions reject without failing.
        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        let s = 0u64..1000;
        let va: Vec<u64> = (0..20).map(|_| s.generate(&mut a)).collect();
        let vb: Vec<u64> = (0..20).map(|_| s.generate(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
