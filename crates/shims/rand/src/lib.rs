//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this workspace has no access to crates.io, so
//! this tiny crate provides the exact API subset the workspace consumes:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is `xoshiro256**` seeded through SplitMix64 — statistically
//! solid for simulation schedules and property tests, and fully
//! deterministic per seed (which is the only property the workspace actually
//! relies on). It intentionally does **not** reproduce the upstream crate's
//! value streams.

#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core sampling interface: uniform ranges and Bernoulli draws.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // Compare against a 53-bit uniform draw in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can be sampled uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as u128 + draw) as $t
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: `xoshiro256**`, SplitMix64-seeded.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u64..=4);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
