//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment of this workspace cannot reach crates.io, so this
//! crate implements the small API subset the `kset-bench` benches use:
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Timing is a plain wall-clock mean over `sample_size` iterations after one
//! warm-up run — enough to track the perf trajectory between commits, with
//! none of upstream criterion's statistics.
//!
//! Two environment hooks drive the CI bench-smoke job (both additive on
//! top of the upstream-compatible API, so swapping in real criterion later
//! only loses them):
//!
//! * `KSET_BENCH_SAMPLES=N` overrides every group's configured sample
//!   size — the smoke job runs the full bench surface at `N = 3` to catch
//!   rot cheaply.
//! * `KSET_BENCH_SUMMARY=PATH` appends one machine-readable,
//!   tab-separated line per benchmark to `PATH`:
//!   `group⇥id⇥mean_ns⇥samples`. The smoke job uploads the file as the
//!   perf-trajectory artifact.

#![warn(rust_2018_idioms)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared throughput of a benchmark, printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-benchmark timing driver handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time measured by the last `iter` call.
    mean: Duration,
}

impl Bencher {
    /// Times `f`, recording the mean over the configured sample count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// The sample count actually used: the `KSET_BENCH_SAMPLES`
    /// environment override when set and positive, the configured size
    /// otherwise.
    fn effective_samples(&self) -> usize {
        std::env::var("KSET_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(self.sample_size)
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.mean, bencher.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.mean, bencher.samples);
        self
    }

    fn report(&self, id: &str, mean: Duration, samples: usize) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{id}: {mean:?}/iter{rate}", self.name);
        if let Ok(path) = std::env::var("KSET_BENCH_SUMMARY") {
            use std::io::Write as _;
            let line = format!("{}\t{id}\t{}\t{samples}\n", self.name, mean.as_nanos());
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(e) = written {
                eprintln!("warning: cannot append bench summary to {path}: {e}");
            }
        }
        let _ = &self.criterion;
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions under one group name (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes every test that runs benchmarks: the env hooks are
    /// process-global, so a test mutating them must not overlap a test
    /// reading them (tests run on multiple threads by default).
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn group_times_and_reports() {
        let _env = ENV_LOCK.lock().unwrap();
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 5), &5u64, |b, x| {
                b.iter(|| black_box(*x * 2))
            });
            g.finish();
        }
        assert!(ran >= 3, "warm-up + samples executed");
    }

    #[test]
    fn summary_env_hooks_write_tsv() {
        // Drive the CI bench-smoke contract: a sample-count override plus
        // one machine-readable TSV line per benchmark, appended to the
        // summary file. ENV_LOCK keeps the env mutation from racing the
        // other bench-running test's env reads.
        let _env = ENV_LOCK.lock().unwrap();
        let path =
            std::env::temp_dir().join(format!("kset-bench-summary-{}.tsv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("KSET_BENCH_SAMPLES", "4");
        std::env::set_var("KSET_BENCH_SUMMARY", &path);
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(1000); // overridden down to 4 by the env hook
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        std::env::remove_var("KSET_BENCH_SAMPLES");
        std::env::remove_var("KSET_BENCH_SUMMARY");
        assert_eq!(ran, 5, "warm-up + 4 overridden samples");
        let summary = std::fs::read_to_string(&path).expect("summary file written");
        let _ = std::fs::remove_file(&path);
        let fields: Vec<&str> = summary.trim_end().split('\t').collect();
        assert_eq!(fields[0], "smoke");
        assert_eq!(fields[1], "count");
        assert!(fields[2].parse::<u128>().is_ok(), "mean_ns is numeric");
        assert_eq!(fields[3], "4");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
