//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment of this workspace cannot reach crates.io, so this
//! crate implements the small API subset the `kset-bench` benches use:
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Timing is a plain wall-clock mean over `sample_size` iterations after one
//! warm-up run — enough to track the perf trajectory between commits, with
//! none of upstream criterion's statistics.

#![warn(rust_2018_idioms)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared throughput of a benchmark, printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-benchmark timing driver handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time measured by the last `iter` call.
    mean: Duration,
}

impl Bencher {
    /// Times `f`, recording the mean over the configured sample count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.mean);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.mean);
        self
    }

    fn report(&self, id: &str, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{id}: {mean:?}/iter{rate}", self.name);
        let _ = &self.criterion;
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions under one group name (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 5), &5u64, |b, x| {
                b.iter(|| black_box(*x * 2))
            });
            g.finish();
        }
        assert!(ran >= 3, "warm-up + samples executed");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
