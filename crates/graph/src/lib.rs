//! # kset-graph — directed-graph substrate for the two-stage protocol
//!
//! Graph machinery behind Section VI of Biely–Robinson–Schmid (OPODIS 2011):
//! the first-stage graph `G` of the generalized FLP protocol, its strongly
//! connected components, the condensation DAG, **source components**
//! (Lemmas 6/7) and **initial cliques**.
//!
//! ## Lemmas as code
//!
//! * Lemma 6 — [`source::check_lemma6`]: min in-degree δ > 0 ⟹ some source
//!   component has ≥ δ + 1 vertices.
//! * Lemma 7 — [`source::check_lemma7`]: the same per weakly connected
//!   component.
//! * Count bound — [`source::check_source_count_bound`]: at most
//!   `⌊n/(δ+1)⌋` source components; unique when `2δ ≥ n`.
//!
//! ```
//! use kset_graph::{stage_one_graph, source_components, check_lemma6};
//!
//! let g = stage_one_graph(9, 2, 1);
//! check_lemma6(&g, 2).expect("Lemma 6 holds");
//! assert!(source_components(&g).len() <= 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod clique;
mod condensation;
mod digraph;
mod generate;
pub mod scc;
pub mod source;
mod weakly;

pub use clique::{has_no_incoming, initial_cliques, is_clique};
pub use condensation::Condensation;
pub use digraph::Digraph;
pub use generate::{camps, gnp_digraph, stage_one_graph};
pub use scc::{tarjan_scc, SccDecomposition};
pub use source::{
    check_lemma6, check_lemma7, check_source_count_bound, chosen_source_component,
    max_source_components, source_components, source_components_reaching,
};
pub use weakly::weakly_connected_components;
