//! A simple directed graph over vertices `0..n`.
//!
//! Section VI of the paper analyses the *first-stage graph* `G` of the
//! FLP-style two-stage protocol: one node per process, with an edge `u → w`
//! iff `w` received a message from `u` in the first stage. All the graph
//! theory the paper needs (Lemmas 6 and 7) is about finite directed simple
//! graphs with an in-degree lower bound, so that is exactly what this type
//! models.

use std::collections::BTreeSet;
use std::fmt;

/// A finite directed simple graph with vertices `0..n`.
///
/// Self-loops and parallel edges are rejected on construction — the paper's
/// lemmas are stated for *simple* digraphs. (A process does "hear from
/// itself" in the protocol, but the graph of Section VI counts only remote
/// first-stage messages, so self-loops never arise.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digraph {
    n: usize,
    /// Out-adjacency: `succs[u]` = sorted targets of edges `u → w`.
    succs: Vec<BTreeSet<usize>>,
    /// In-adjacency: `preds[w]` = sorted sources of edges `u → w`.
    preds: Vec<BTreeSet<usize>>,
}

impl Digraph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Digraph {
            n,
            succs: vec![BTreeSet::new(); n],
            preds: vec![BTreeSet::new(); n],
        }
    }

    /// Creates a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Digraph::new(n);
        for (u, w) in edges {
            g.add_edge(u, w);
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(BTreeSet::len).sum()
    }

    /// Adds the edge `u → w` (idempotent).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or `u == w`.
    pub fn add_edge(&mut self, u: usize, w: usize) {
        assert!(u < self.n && w < self.n, "edge endpoint out of range");
        assert_ne!(u, w, "self-loops are not allowed in a simple digraph");
        self.succs[u].insert(w);
        self.preds[w].insert(u);
    }

    /// Whether the edge `u → w` exists.
    pub fn has_edge(&self, u: usize, w: usize) -> bool {
        u < self.n && self.succs[u].contains(&w)
    }

    /// Out-neighbours of `u`.
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.succs[u].iter().copied()
    }

    /// In-neighbours of `w`.
    pub fn predecessors(&self, w: usize) -> impl Iterator<Item = usize> + '_ {
        self.preds[w].iter().copied()
    }

    /// In-degree of `w`.
    pub fn in_degree(&self, w: usize) -> usize {
        self.preds[w].len()
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.succs[u].len()
    }

    /// The minimum in-degree δ over all vertices (`None` for the empty
    /// graph). This is the δ of Lemmas 6 and 7.
    pub fn min_in_degree(&self) -> Option<usize> {
        (0..self.n).map(|w| self.in_degree(w)).min()
    }

    /// All edges as `(u, w)` pairs, sorted.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, ws)| ws.iter().map(move |w| (u, *w)))
    }

    /// Vertices reachable from `start` by directed paths (including
    /// `start`).
    pub fn reachable_from(&self, start: usize) -> BTreeSet<usize> {
        assert!(start < self.n, "start vertex out of range");
        let mut seen: BTreeSet<usize> = [start].into();
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for w in self.successors(u) {
                if seen.insert(w) {
                    stack.push(w);
                }
            }
        }
        seen
    }

    /// Vertices from which `target` is reachable (including `target`):
    /// reachability in the reversed graph.
    pub fn reaching(&self, target: usize) -> BTreeSet<usize> {
        assert!(target < self.n, "target vertex out of range");
        let mut seen: BTreeSet<usize> = [target].into();
        let mut stack = vec![target];
        while let Some(w) = stack.pop() {
            for u in self.predecessors(w) {
                if seen.insert(u) {
                    stack.push(u);
                }
            }
        }
        seen
    }

    /// The reversed graph (every edge flipped).
    #[must_use]
    pub fn reversed(&self) -> Digraph {
        Digraph {
            n: self.n,
            succs: self.preds.clone(),
            preds: self.succs.clone(),
        }
    }

    /// The subgraph induced by `keep`, with vertices *renumbered* to
    /// `0..keep.len()` in ascending original order. Returns the subgraph and
    /// the mapping `new index → old index`.
    pub fn induced(&self, keep: &BTreeSet<usize>) -> (Digraph, Vec<usize>) {
        let old_of_new: Vec<usize> = keep.iter().copied().collect();
        let new_of_old: std::collections::BTreeMap<usize, usize> = old_of_new
            .iter()
            .enumerate()
            .map(|(new, old)| (*old, new))
            .collect();
        let mut g = Digraph::new(old_of_new.len());
        for (u, w) in self.edges() {
            if let (Some(&nu), Some(&nw)) = (new_of_old.get(&u), new_of_old.get(&w)) {
                g.add_edge(nu, nw);
            }
        }
        (g, old_of_new)
    }
}

impl fmt::Display for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digraph(n={}, edges=[", self.n)?;
        let mut first = true;
        for (u, w) in self.edges() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{u}→{w}")?;
            first = false;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_edges() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.in_degree(2), 1);
        assert_eq!(g.out_degree(1), 1);
    }

    #[test]
    fn add_edge_is_idempotent() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let mut g = Digraph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn min_in_degree() {
        let g = Digraph::from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.min_in_degree(), Some(0), "vertex 0 has no in-edges");
        assert!(Digraph::new(0).min_in_degree().is_none());
    }

    #[test]
    fn reachability_forwards_and_backwards() {
        // 0 → 1 → 2,  3 isolated
        let g = Digraph::from_edges(4, [(0, 1), (1, 2)]);
        assert_eq!(g.reachable_from(0), [0, 1, 2].into());
        assert_eq!(g.reachable_from(2), [2].into());
        assert_eq!(g.reaching(2), [0, 1, 2].into());
        assert_eq!(g.reaching(3), [3].into());
    }

    #[test]
    fn reversal_flips_edges() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let r = g.reversed();
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(2, 1));
        assert_eq!(r.edge_count(), 2);
        assert_eq!(r.reversed(), g);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Digraph::from_edges(4, [(0, 2), (2, 3), (1, 3)]);
        let (sub, map) = g.induced(&[0, 2, 3].into());
        assert_eq!(map, vec![0, 2, 3]);
        assert_eq!(sub.n(), 3);
        assert!(sub.has_edge(0, 1), "0→2 becomes 0→1");
        assert!(sub.has_edge(1, 2), "2→3 becomes 1→2");
        assert_eq!(sub.edge_count(), 2, "edge from removed vertex 1 dropped");
    }

    #[test]
    fn display_lists_edges() {
        let g = Digraph::from_edges(2, [(0, 1)]);
        assert_eq!(g.to_string(), "Digraph(n=2, edges=[0→1])");
    }
}
