//! Source components and the graph lemmas of Section VI.
//!
//! A strongly connected component `C` of `G` is a **source component** if
//! its vertex in the condensation DAG has in-degree 0. The paper proves:
//!
//! * **Lemma 6.** Every finite directed simple graph where each vertex has
//!   in-degree ≥ δ > 0 has a source component of size ≥ δ + 1.
//! * **Lemma 7.** In each weakly connected component of such a graph there
//!   is a source component of size ≥ δ + 1.
//! * Consequently there are at most `⌊n/(δ+1)⌋` source components, and every
//!   vertex has an incoming path from *all* vertices of at least one source
//!   component — the fact powering the decision rule of the generalized
//!   two-stage protocol.
//!
//! This module computes source components, the deterministic
//! "source component of a vertex" selection used by the protocol, and
//! checker functions that the property-based tests and experiment E6 use as
//! oracles.

use std::collections::BTreeSet;

use crate::condensation::Condensation;
use crate::digraph::Digraph;
use crate::weakly::weakly_connected_components;

/// The source components of `g`, each sorted, ordered by smallest member.
pub fn source_components(g: &Digraph) -> Vec<Vec<usize>> {
    let mut comps = Condensation::of(g).source_components();
    comps.sort_by_key(|c| c.first().copied());
    comps
}

/// The source components whose members reach `v` (there is a directed path
/// from each member to `v`), ordered by smallest member.
///
/// Lemmas 6/7 guarantee this is nonempty for every `v`.
pub fn source_components_reaching(g: &Digraph, v: usize) -> Vec<Vec<usize>> {
    let ancestors: BTreeSet<usize> = g.reaching(v);
    source_components(g)
        .into_iter()
        .filter(|c| c.iter().all(|u| ancestors.contains(u)))
        .collect()
}

/// The deterministic source-component selection of the two-stage protocol:
/// among the source components reaching `v`, the one with the smallest
/// minimum vertex. Every process applies this same rule locally, so the
/// number of distinct selections system-wide is at most the number of source
/// components.
///
/// # Panics
///
/// Panics if no source component reaches `v` — impossible for a well-formed
/// graph, so a panic indicates a caller bug.
pub fn chosen_source_component(g: &Digraph, v: usize) -> Vec<usize> {
    source_components_reaching(g, v)
        .into_iter()
        .next()
        // kset-lint: allow(panic-in-library): invariant — the condensation of any finite digraph has a source SCC reaching every vertex; documented as a caller-bug panic
        .expect("every vertex is reached by at least one source component")
}

/// Upper bound on the number of source components from the in-degree lower
/// bound δ: `⌊n/(δ+1)⌋` (each source component has ≥ δ+1 vertices and
/// distinct source components are disjoint).
pub fn max_source_components(n: usize, delta: usize) -> usize {
    n / (delta + 1)
}

/// Checks Lemma 6 on a concrete graph: if every vertex of `g` has in-degree
/// ≥ δ > 0 then some source component has ≥ δ + 1 vertices. Returns `Err`
/// with a description when the lemma's conclusion fails (which would falsify
/// the paper — used as a property-test oracle).
pub fn check_lemma6(g: &Digraph, delta: usize) -> Result<(), String> {
    if delta == 0 {
        return Err("lemma 6 requires δ > 0".into());
    }
    if let Some(min) = g.min_in_degree() {
        if min < delta {
            return Err(format!(
                "premise violated: min in-degree {min} < δ = {delta}"
            ));
        }
    }
    let comps = source_components(g);
    if g.n() == 0 {
        return Ok(());
    }
    match comps.iter().map(Vec::len).max() {
        Some(largest) if largest > delta => Ok(()),
        Some(largest) => Err(format!(
            "no source component of size ≥ {} (largest is {largest})",
            delta + 1
        )),
        None => Err("graph with vertices but no source component".into()),
    }
}

/// Checks Lemma 7: in *each* weakly connected component of `g` (with
/// in-degree ≥ δ > 0 everywhere) there is a source component of size
/// ≥ δ + 1.
pub fn check_lemma7(g: &Digraph, delta: usize) -> Result<(), String> {
    if delta == 0 {
        return Err("lemma 7 requires δ > 0".into());
    }
    if let Some(min) = g.min_in_degree() {
        if min < delta {
            return Err(format!(
                "premise violated: min in-degree {min} < δ = {delta}"
            ));
        }
    }
    let sources = source_components(g);
    for wcc in weakly_connected_components(g) {
        let wcc_set: BTreeSet<usize> = wcc.iter().copied().collect();
        let ok = sources
            .iter()
            .any(|s| s.len() > delta && s.iter().all(|v| wcc_set.contains(v)));
        if !ok {
            return Err(format!(
                "weakly connected component {wcc:?} lacks a source component of size ≥ {}",
                delta + 1
            ));
        }
    }
    Ok(())
}

/// Checks the count bound: at most `⌊n/(δ+1)⌋` source components when the
/// in-degree is ≥ δ everywhere, and uniqueness when `2δ ≥ n` (the paper:
/// "when 2δ > n, then there can be only one source component"; with
/// δ = L − 1 and majority L the protocol gets consensus).
pub fn check_source_count_bound(g: &Digraph, delta: usize) -> Result<(), String> {
    let count = source_components(g).len();
    let bound = max_source_components(g.n(), delta);
    if g.n() > 0 && count > bound {
        return Err(format!("{count} source components exceed bound {bound}"));
    }
    if delta > 0 && 2 * delta >= g.n() && g.n() > 0 && count > 1 {
        return Err(format!("2δ ≥ n but {count} source components"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The "two camps" graph: two disjoint (δ+1)-cliques (bidirectional),
    /// everyone else hears from one camp. δ = 2, n = 6.
    fn two_camps() -> Digraph {
        let mut g = Digraph::new(6);
        for camp in [[0, 1, 2], [3, 4, 5]] {
            for &u in &camp {
                for &w in &camp {
                    if u != w {
                        g.add_edge(u, w);
                    }
                }
            }
        }
        g
    }

    #[test]
    fn two_camps_have_two_sources() {
        let g = two_camps();
        let comps = source_components(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert!(check_lemma6(&g, 2).is_ok());
        assert!(check_lemma7(&g, 2).is_ok());
        assert!(check_source_count_bound(&g, 2).is_ok());
    }

    #[test]
    fn reaching_selection_is_deterministic() {
        let mut g = two_camps();
        // 0-camp also feeds vertex 3's camp... add edge 0 → 3: camp {3,4,5}
        // is no longer a source; everyone selects camp {0,1,2}.
        g.add_edge(0, 3);
        for v in 0..6 {
            assert_eq!(chosen_source_component(&g, v), vec![0, 1, 2]);
        }
    }

    #[test]
    fn vertex_reached_by_multiple_sources_picks_smallest() {
        // Sources {0} and {1} both reach 2.
        let g = Digraph::from_edges(3, [(0, 2), (1, 2)]);
        assert_eq!(chosen_source_component(&g, 2), vec![0]);
        assert_eq!(chosen_source_component(&g, 1), vec![1]);
    }

    #[test]
    fn lemma6_premise_violation_detected() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]); // vertex 0 has in-degree 0
        assert!(check_lemma6(&g, 1).unwrap_err().contains("premise"));
    }

    #[test]
    fn lemma6_holds_on_cycle() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(check_lemma6(&g, 1).is_ok());
        // One source component of size 4 ≥ δ+1 = 2.
        assert_eq!(source_components(&g).len(), 1);
    }

    #[test]
    fn count_bound_uniqueness_with_majority() {
        // n = 4, δ = 2: 2δ ≥ n forces a unique source component. A 3-cycle
        // plus vertex 3 hearing from everyone, everyone hearing from ≥ 2.
        let g = Digraph::from_edges(
            4,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (0, 3),
                (1, 3),
                (2, 3),
                (3, 0),
                (3, 1),
                (3, 2),
                (1, 0),
                (2, 1),
                (0, 2),
            ],
        );
        assert!(g.min_in_degree().unwrap() >= 2);
        assert_eq!(source_components(&g).len(), 1);
        assert!(check_source_count_bound(&g, 2).is_ok());
    }

    #[test]
    fn max_source_components_formula() {
        assert_eq!(max_source_components(10, 1), 5);
        assert_eq!(max_source_components(10, 4), 2);
        assert_eq!(max_source_components(10, 9), 1);
        assert_eq!(max_source_components(7, 2), 2);
    }

    #[test]
    fn empty_graph_checks_pass_vacuously() {
        let g = Digraph::new(0);
        assert!(check_lemma6(&g, 1).is_ok());
        assert!(check_lemma7(&g, 1).is_ok());
        assert!(check_source_count_bound(&g, 1).is_ok());
    }
}
