//! Weakly connected components.
//!
//! Lemma 7 of the paper refines Lemma 6 per *weakly connected component*:
//! in each one there is a source component of size ≥ δ + 1.

use crate::digraph::Digraph;

/// Partition of the vertices into weakly connected components (connectivity
/// ignoring edge direction). Components are sorted internally and listed in
/// order of their smallest vertex.
pub fn weakly_connected_components(g: &Digraph) -> Vec<Vec<usize>> {
    let n = g.n();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0usize;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let c = count;
        count += 1;
        let mut stack = vec![start];
        comp[start] = c;
        while let Some(v) = stack.pop() {
            for w in g.successors(v).chain(g.predecessors(v)) {
                if comp[w] == usize::MAX {
                    comp[w] = c;
                    stack.push(w);
                }
            }
        }
    }
    let mut out = vec![Vec::new(); count];
    for (v, c) in comp.iter().enumerate() {
        out[*c].push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_is_ignored() {
        // 0 → 1 ← 2 is weakly connected despite no directed path 0 ↔ 2.
        let g = Digraph::from_edges(3, [(0, 1), (2, 1)]);
        assert_eq!(weakly_connected_components(&g), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn disconnected_pieces_are_separate() {
        let g = Digraph::from_edges(5, [(0, 1), (3, 4)]);
        assert_eq!(
            weakly_connected_components(&g),
            vec![vec![0, 1], vec![2], vec![3, 4]]
        );
    }

    #[test]
    fn empty_and_isolated() {
        assert!(weakly_connected_components(&Digraph::new(0)).is_empty());
        assert_eq!(
            weakly_connected_components(&Digraph::new(2)),
            vec![vec![0], vec![1]]
        );
    }

    #[test]
    fn cycle_is_one_component() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(weakly_connected_components(&g).len(), 1);
    }
}
