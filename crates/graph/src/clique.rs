//! Initial cliques: the decision anchor of the FLP two-stage protocol.
//!
//! Section VI (after FLP): "every process can … consistently determine an
//! initial clique `C` in `G`, i.e., a fully connected maximal subgraph with
//! no incoming edges. Since `n > 2f`, exactly one such `C` must exist." The
//! paper then observes that detecting the initial clique is equivalent to
//! detecting the source component a process is connected to.
//!
//! In a digraph, *fully connected* means every ordered pair of distinct
//! members is an edge; *no incoming edges* means no edge from outside the
//! set into it. An initial clique is therefore exactly a source component
//! that happens to be a bidirectional clique.

use std::collections::BTreeSet;

use crate::digraph::Digraph;
use crate::source::source_components;

/// Whether `set` is fully connected in `g` (every ordered pair an edge).
pub fn is_clique(g: &Digraph, set: &BTreeSet<usize>) -> bool {
    set.iter()
        .all(|&u| set.iter().all(|&w| u == w || g.has_edge(u, w)))
}

/// Whether `set` has no incoming edge from outside.
pub fn has_no_incoming(g: &Digraph, set: &BTreeSet<usize>) -> bool {
    set.iter()
        .all(|&w| g.predecessors(w).all(|u| set.contains(&u)))
}

/// All initial cliques of `g`: source components that are cliques, ordered
/// by smallest member.
///
/// For the first-stage graph of the two-stage protocol with waiting
/// threshold `L > n/2` (the consensus case) there is exactly one; with
/// general `L = n − f` there are at most `⌊n/L⌋`.
pub fn initial_cliques(g: &Digraph) -> Vec<Vec<usize>> {
    source_components(g)
        .into_iter()
        .filter(|c| {
            let set: BTreeSet<usize> = c.iter().copied().collect();
            is_clique(g, &set) && has_no_incoming(g, &set)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bidirectional_clique(g: &mut Digraph, members: &[usize]) {
        for &u in members {
            for &w in members {
                if u != w {
                    g.add_edge(u, w);
                }
            }
        }
    }

    #[test]
    fn clique_predicate() {
        let mut g = Digraph::new(4);
        bidirectional_clique(&mut g, &[0, 1, 2]);
        assert!(is_clique(&g, &[0, 1, 2].into()));
        assert!(!is_clique(&g, &[0, 1, 3].into()));
        assert!(is_clique(&g, &[3].into()), "singletons are cliques");
        assert!(is_clique(&g, &BTreeSet::new()), "empty set is a clique");
    }

    #[test]
    fn no_incoming_predicate() {
        let mut g = Digraph::new(4);
        bidirectional_clique(&mut g, &[0, 1]);
        g.add_edge(3, 2);
        assert!(has_no_incoming(&g, &[0, 1].into()));
        assert!(!has_no_incoming(&g, &[2].into()));
    }

    #[test]
    fn unique_initial_clique_with_majority_structure() {
        // Clique {0,1,2} feeding 3; exactly one initial clique.
        let mut g = Digraph::new(4);
        bidirectional_clique(&mut g, &[0, 1, 2]);
        for u in [0, 1, 2] {
            g.add_edge(u, 3);
        }
        assert_eq!(initial_cliques(&g), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn two_initial_cliques_without_majority() {
        let mut g = Digraph::new(6);
        bidirectional_clique(&mut g, &[0, 1, 2]);
        bidirectional_clique(&mut g, &[3, 4, 5]);
        assert_eq!(initial_cliques(&g), vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn source_cycle_that_is_not_a_clique_is_excluded() {
        // A 3-cycle is a source component but not fully connected.
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(initial_cliques(&g).is_empty());
    }
}
