//! The condensation DAG of a digraph.
//!
//! Contracting every strongly connected component of `G` to a single vertex
//! yields a directed acyclic graph `G′` — the paper uses it to define
//! *source components*: an SCC whose condensation vertex has in-degree 0
//! (Section VI).

use crate::digraph::Digraph;
use crate::scc::{tarjan_scc, SccDecomposition};

/// A digraph together with its SCC decomposition and condensation DAG.
#[derive(Debug, Clone)]
pub struct Condensation {
    scc: SccDecomposition,
    /// DAG over component indices.
    dag: Digraph,
}

impl Condensation {
    /// Computes the condensation of `g`.
    pub fn of(g: &Digraph) -> Self {
        let scc = tarjan_scc(g);
        let mut dag = Digraph::new(scc.count());
        for (u, w) in g.edges() {
            let cu = scc.component_of(u);
            let cw = scc.component_of(w);
            if cu != cw {
                dag.add_edge(cu, cw);
            }
        }
        Condensation { scc, dag }
    }

    /// The SCC decomposition.
    pub fn scc(&self) -> &SccDecomposition {
        &self.scc
    }

    /// The condensation DAG (vertices = component indices).
    pub fn dag(&self) -> &Digraph {
        &self.dag
    }

    /// Indices of the source components: condensation vertices with
    /// in-degree 0.
    pub fn source_component_indices(&self) -> Vec<usize> {
        (0..self.dag.n())
            .filter(|c| self.dag.in_degree(*c) == 0)
            .collect()
    }

    /// The member sets of the source components, each sorted.
    pub fn source_components(&self) -> Vec<Vec<usize>> {
        self.source_component_indices()
            .into_iter()
            .map(|c| self.scc.members(c).to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condensation_of_dag_is_itself() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let c = Condensation::of(&g);
        assert_eq!(c.dag().n(), 3);
        assert_eq!(c.dag().edge_count(), 2);
        assert_eq!(c.source_components(), vec![vec![0]]);
    }

    #[test]
    fn condensation_is_acyclic() {
        // Two 2-cycles bridged: {0,1} → {2,3}.
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let c = Condensation::of(&g);
        assert_eq!(c.dag().n(), 2);
        assert_eq!(c.dag().edge_count(), 1);
        // The only source component is {0,1}.
        assert_eq!(c.source_components(), vec![vec![0, 1]]);
    }

    #[test]
    fn parallel_scc_edges_collapse() {
        // Two edges between the same pair of SCCs must appear once.
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (0, 2), (1, 3), (2, 3), (3, 2)]);
        let c = Condensation::of(&g);
        assert_eq!(c.dag().edge_count(), 1);
    }

    #[test]
    fn multiple_sources() {
        // 0 → 2 ← 1: two singleton sources {0} and {1}.
        let g = Digraph::from_edges(3, [(0, 2), (1, 2)]);
        let c = Condensation::of(&g);
        let mut sources = c.source_components();
        sources.sort();
        assert_eq!(sources, vec![vec![0], vec![1]]);
    }

    #[test]
    fn single_cycle_is_single_source() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let c = Condensation::of(&g);
        assert_eq!(c.source_components(), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn isolated_vertices_are_sources() {
        let g = Digraph::new(2);
        let c = Condensation::of(&g);
        let mut sources = c.source_components();
        sources.sort();
        assert_eq!(sources, vec![vec![0], vec![1]]);
    }
}
