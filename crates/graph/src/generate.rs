//! Graph generators for tests, property tests, and experiment E6.
//!
//! The key generator is [`stage_one_graph`]: the random first-stage graph of
//! the two-stage protocol, where every vertex receives messages from exactly
//! δ distinct others (in-degree exactly δ) — the premise of Lemmas 6/7.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::digraph::Digraph;

/// Random digraph where every vertex has in-degree exactly `delta`
/// (each vertex independently picks `delta` distinct in-neighbours).
///
/// This is the shape of the first-stage graph `G` of Section VI: vertex `w`
/// has an edge `u → w` for each of the `L − 1 = δ` processes `u` it heard
/// from in stage one.
///
/// # Panics
///
/// Panics if `delta >= n` (a vertex cannot have `n` distinct in-neighbours
/// other than itself).
pub fn stage_one_graph(n: usize, delta: usize, seed: u64) -> Digraph {
    assert!(delta < n, "in-degree δ must be < n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Digraph::new(n);
    for w in 0..n {
        let mut candidates: Vec<usize> = (0..n).filter(|u| *u != w).collect();
        candidates.shuffle(&mut rng);
        for &u in candidates.iter().take(delta) {
            g.add_edge(u, w);
        }
    }
    g
}

/// Random digraph with each possible edge present independently with
/// probability `p_percent/100`.
pub fn gnp_digraph(n: usize, p_percent: u8, seed: u64) -> Digraph {
    assert!(p_percent <= 100, "probability out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Digraph::new(n);
    for u in 0..n {
        for w in 0..n {
            if u != w && rng.gen_range(0..100u8) < p_percent {
                g.add_edge(u, w);
            }
        }
    }
    g
}

/// `count` disjoint bidirectional cliques of size `size` (plus isolated
/// leftover vertices if `n > count * size`): the worst-case multi-camp
/// stage-one graph exhibiting the maximal number of source components.
///
/// # Panics
///
/// Panics if `count * size > n`.
pub fn camps(n: usize, count: usize, size: usize) -> Digraph {
    assert!(count * size <= n, "camps do not fit");
    let mut g = Digraph::new(n);
    for c in 0..count {
        let base = c * size;
        for i in 0..size {
            for j in 0..size {
                if i != j {
                    g.add_edge(base + i, base + j);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{check_lemma6, check_lemma7, check_source_count_bound};

    #[test]
    fn stage_one_has_exact_in_degree() {
        let g = stage_one_graph(10, 3, 42);
        for w in 0..10 {
            assert_eq!(g.in_degree(w), 3);
        }
    }

    #[test]
    fn stage_one_is_deterministic_per_seed() {
        assert_eq!(stage_one_graph(8, 2, 7), stage_one_graph(8, 2, 7));
        assert_ne!(stage_one_graph(8, 2, 7), stage_one_graph(8, 2, 8));
    }

    #[test]
    #[should_panic(expected = "must be < n")]
    fn stage_one_rejects_excess_degree() {
        let _ = stage_one_graph(3, 3, 0);
    }

    #[test]
    fn stage_one_satisfies_lemmas() {
        for seed in 0..20 {
            let g = stage_one_graph(12, 3, seed);
            check_lemma6(&g, 3).unwrap();
            check_lemma7(&g, 3).unwrap();
            check_source_count_bound(&g, 3).unwrap();
        }
    }

    #[test]
    fn gnp_respects_probability_extremes() {
        let empty = gnp_digraph(5, 0, 1);
        assert_eq!(empty.edge_count(), 0);
        let full = gnp_digraph(5, 100, 1);
        assert_eq!(full.edge_count(), 5 * 4);
    }

    #[test]
    fn camps_build_expected_sources() {
        let g = camps(7, 2, 3);
        let sources = crate::source::source_components(&g);
        // Two camps plus the isolated vertex 6.
        assert_eq!(sources, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn camps_overflow_rejected() {
        let _ = camps(5, 2, 3);
    }
}
