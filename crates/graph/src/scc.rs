//! Strongly connected components via Tarjan's algorithm (iterative).
//!
//! The decision rule of the generalized two-stage protocol (Section VI of
//! the paper) hinges on *source components* of the first-stage graph; source
//! components are defined on the condensation of the SCC decomposition, so
//! SCCs are the workhorse.

use crate::digraph::Digraph;

/// The strongly-connected-component decomposition of a digraph.
///
/// Components are numbered `0..count` in **reverse topological order of the
/// condensation** (Tarjan emits sinks first): if there is an edge from
/// component `a` to component `b` in the condensation, then `a > b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    /// `component_of[v]` = component index of vertex `v`.
    component_of: Vec<usize>,
    /// `members[c]` = sorted vertices of component `c`.
    members: Vec<Vec<usize>>,
}

impl SccDecomposition {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Component index of `v`.
    pub fn component_of(&self, v: usize) -> usize {
        self.component_of[v]
    }

    /// Sorted members of component `c`.
    pub fn members(&self, c: usize) -> &[usize] {
        &self.members[c]
    }

    /// Iterates over all components as member slices.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.members.iter().map(Vec::as_slice)
    }

    /// The raw `vertex → component` map.
    pub fn component_map(&self) -> &[usize] {
        &self.component_of
    }
}

/// Computes the SCC decomposition of `g` with an iterative Tarjan.
///
/// # Examples
///
/// ```
/// use kset_graph::{Digraph, tarjan_scc};
///
/// // 0 ⇄ 1 → 2
/// let g = Digraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
/// let scc = tarjan_scc(&g);
/// assert_eq!(scc.count(), 2);
/// assert_eq!(scc.component_of(0), scc.component_of(1));
/// assert_ne!(scc.component_of(0), scc.component_of(2));
/// ```
pub fn tarjan_scc(g: &Digraph) -> SccDecomposition {
    let n = g.n();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut component_of = vec![UNVISITED; n];
    let mut members: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (vertex, iterator position over successors).
    enum Frame {
        Enter(usize),
        Resume(usize, usize), // (v, index into succ list)
    }

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        let mut dfs: Vec<Frame> = vec![Frame::Enter(start)];
        while let Some(frame) = dfs.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    dfs.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, succ_pos) => {
                    let succs: Vec<usize> = g.successors(v).collect();
                    let mut pos = succ_pos;
                    let mut descended = false;
                    while pos < succs.len() {
                        let w = succs[pos];
                        pos += 1;
                        if index[w] == UNVISITED {
                            dfs.push(Frame::Resume(v, pos));
                            dfs.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors handled: close v.
                    if lowlink[v] == index[v] {
                        let c = members.len();
                        let mut comp = Vec::new();
                        loop {
                            // kset-lint: allow(panic-in-library): invariant — Tarjan's algorithm guarantees v sits on the stack when lowlink[v] == index[v], so the pop cannot run dry before reaching v
                            let w = stack.pop().expect("tarjan stack invariant");
                            on_stack[w] = false;
                            component_of[w] = c;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        members.push(comp);
                    }
                    // Propagate lowlink to parent, if any.
                    if let Some(Frame::Resume(parent, _)) = dfs.last() {
                        let parent = *parent;
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
    }

    SccDecomposition {
        component_of,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_components_in_dag() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 3);
        // Reverse topological: sink (2) first.
        assert!(scc.component_of(2) < scc.component_of(1));
        assert!(scc.component_of(1) < scc.component_of(0));
    }

    #[test]
    fn cycle_is_one_component() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.members(0), &[0, 1, 2]);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // {0,1} → {2,3}
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 2);
        let c01 = scc.component_of(0);
        let c23 = scc.component_of(2);
        assert_eq!(scc.component_of(1), c01);
        assert_eq!(scc.component_of(3), c23);
        assert!(
            c01 > c23,
            "edge c01→c23 means c01 comes later in Tarjan order"
        );
    }

    #[test]
    fn isolated_vertices() {
        let g = Digraph::new(4);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 4);
        for v in 0..4 {
            assert_eq!(scc.members(scc.component_of(v)), &[v]);
        }
    }

    #[test]
    fn empty_graph() {
        let scc = tarjan_scc(&Digraph::new(0));
        assert_eq!(scc.count(), 0);
    }

    #[test]
    fn members_are_sorted_and_partition_vertices() {
        let g = Digraph::from_edges(6, [(0, 1), (1, 0), (2, 3), (4, 5), (5, 4), (1, 2), (3, 4)]);
        let scc = tarjan_scc(&g);
        let mut all: Vec<usize> = scc.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
        for c in scc.iter() {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 10_000-vertex path exercises the iterative DFS.
        let n = 10_000;
        let g = Digraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), n);
    }

    #[test]
    fn lowlink_propagates_through_nested_cycles() {
        // 0 → 1 → 2 → 0 and 2 → 3 → 4 → 2: all five strongly connected
        // except... actually 0,1,2,3,4 form one SCC via the two cycles.
        let g = Digraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.members(0), &[0, 1, 2, 3, 4]);
    }
}
