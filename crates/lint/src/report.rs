//! Diagnostic aggregation and rendering: human-readable `file:line` output
//! plus the machine-readable summary CI archives as an artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{Diagnostic, Status, META_RULES, RULES};

/// The result of a full workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Every diagnostic, in (file, line, rule) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts diagnostics into stable report order.
    pub fn finish(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Diagnostics that fail the pass.
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.status == Status::Violation)
    }

    /// Count of non-allowed diagnostics.
    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }

    /// Count of allowed (justified) hits.
    pub fn allowed_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.status == Status::Allowed)
            .count()
    }

    /// Human-readable diagnostic listing (one `file:line: rule: message`
    /// per line; allowed hits are annotated, not hidden, so the justified
    /// surface stays reviewable).
    pub fn render_human(&self, show_allowed: bool) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            match d.status {
                Status::Violation => {
                    let _ = writeln!(out, "{}:{}: {}: {}", d.file, d.line, d.rule, d.message);
                }
                Status::Allowed if show_allowed => {
                    let _ = writeln!(
                        out,
                        "{}:{}: {}: allowed: {}",
                        d.file,
                        d.line,
                        d.rule,
                        d.justification.as_deref().unwrap_or("")
                    );
                }
                Status::Allowed => {}
            }
        }
        let _ = writeln!(
            out,
            "kset-lint: {} files, {} violations, {} allowed",
            self.files_scanned,
            self.violation_count(),
            self.allowed_count()
        );
        out
    }

    /// Machine-readable TSV summary:
    ///
    /// ```text
    /// kset-lint-summary\tv1
    /// files\t<N>
    /// rule\t<name>\t<violations>\t<allowed>
    /// …
    /// total\t<violations>\t<allowed>
    /// diag\t<rule>\t<file>\t<line>\t<violation|allowed>\t<message or justification>
    /// …
    /// ```
    pub fn render_summary(&self) -> String {
        let mut per_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for rule in RULES.iter().chain(META_RULES) {
            per_rule.insert(rule, (0, 0));
        }
        for d in &self.diagnostics {
            let slot = per_rule.entry(d.rule).or_insert((0, 0));
            match d.status {
                Status::Violation => slot.0 += 1,
                Status::Allowed => slot.1 += 1,
            }
        }
        let mut out = String::from("kset-lint-summary\tv1\n");
        let _ = writeln!(out, "files\t{}", self.files_scanned);
        for (rule, (viol, allowed)) in &per_rule {
            let _ = writeln!(out, "rule\t{rule}\t{viol}\t{allowed}");
        }
        let _ = writeln!(
            out,
            "total\t{}\t{}",
            self.violation_count(),
            self.allowed_count()
        );
        for d in &self.diagnostics {
            let (status, detail) = match d.status {
                Status::Violation => ("violation", d.message.as_str()),
                Status::Allowed => ("allowed", d.justification.as_deref().unwrap_or("")),
            };
            let _ = writeln!(
                out,
                "diag\t{}\t{}\t{}\t{}\t{}",
                d.rule,
                d.file,
                d.line,
                status,
                detail.replace(['\t', '\n'], " ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: usize, status: Status) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message: "m".to_string(),
            status,
            justification: (status == Status::Allowed).then(|| "j".to_string()),
        }
    }

    #[test]
    fn summary_counts_per_rule() {
        let mut r = Report {
            diagnostics: vec![
                diag("panic-in-library", "a.rs", 3, Status::Violation),
                diag("panic-in-library", "a.rs", 9, Status::Allowed),
                diag("observer-bypass", "b.rs", 1, Status::Violation),
            ],
            files_scanned: 2,
        };
        r.finish();
        let s = r.render_summary();
        assert!(s.contains("rule\tpanic-in-library\t1\t1"), "{s}");
        assert!(s.contains("rule\tobserver-bypass\t1\t0"), "{s}");
        assert!(s.contains("total\t2\t1"), "{s}");
        assert!(s.starts_with("kset-lint-summary\tv1\n"));
    }

    #[test]
    fn human_rendering_sorted_and_totalled() {
        let mut r = Report {
            diagnostics: vec![
                diag("panic-in-library", "b.rs", 2, Status::Violation),
                diag("panic-in-library", "a.rs", 5, Status::Violation),
            ],
            files_scanned: 2,
        };
        r.finish();
        let h = r.render_human(false);
        let a = h.find("a.rs:5").expect("a.rs line present");
        let b = h.find("b.rs:2").expect("b.rs line present");
        assert!(a < b, "sorted by file: {h}");
        assert!(h.contains("2 violations"));
    }
}
