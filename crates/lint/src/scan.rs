//! Per-file scan model: lexes a source file, extracts
//! `// kset-lint: allow(<rule>): <justification>` suppression comments, and
//! computes the byte ranges occupied by `#[cfg(test)]` / `#[test]` items so
//! rules can restrict themselves to non-test code.

use crate::lexer::{self, ByteClass, Lexed};

/// One parsed `kset-lint: allow(...)` suppression comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Justification text after the second colon (trimmed).
    pub justification: String,
    /// 1-based line the comment itself sits on.
    pub comment_line: usize,
    /// 1-based line the suppression applies to: the comment's own line for a
    /// trailing comment, otherwise the next line containing code.
    pub target_line: usize,
    /// Set by the rule engine when a diagnostic was actually suppressed;
    /// stale allows are themselves reported.
    pub used: bool,
}

/// A lexed source file plus the derived suppression / test-code structure.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Raw source text.
    pub source: String,
    /// Lexer output over `source`.
    pub lexed: Lexed,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// Parsed allow comments, in file order.
    pub allows: Vec<Allow>,
    /// Malformed `kset-lint:` comments: `(line, problem)`.
    pub malformed_allows: Vec<(usize, String)>,
    /// Sorted, disjoint byte ranges covered by `#[cfg(test)]` / `#[test]`
    /// items (the attribute through the item's closing brace or semicolon).
    pub test_ranges: Vec<(usize, usize)>,
}

impl ScannedFile {
    /// Lexes and scans one file.
    pub fn scan(rel_path: &str, source: String) -> ScannedFile {
        let lexed = lexer::lex(&source);
        let line_starts = line_starts(&source);
        let (allows, malformed_allows) = parse_allows(&source, &lexed, &line_starts);
        let test_ranges = find_test_ranges(&lexed.masked);
        ScannedFile {
            rel_path: rel_path.to_string(),
            source,
            lexed,
            line_starts,
            allows,
            malformed_allows,
            test_ranges,
        }
    }

    /// 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether byte `offset` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| offset >= a && offset < b)
    }

    /// Whether a (non-stale) allow for `rule` covers `line`; marks it used.
    pub fn consume_allow(&mut self, rule: &str, line: usize) -> Option<&Allow> {
        let idx = self
            .allows
            .iter()
            .position(|a| a.rule == rule && a.target_line == line)?;
        self.allows[idx].used = true;
        Some(&self.allows[idx])
    }
}

/// Byte offsets of line starts (line 1 starts at 0).
pub fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

const ALLOW_MARKER: &str = "kset-lint:";

/// Extracts `// kset-lint: allow(rule): justification` comments.
///
/// Grammar (anything else mentioning `kset-lint:` in a comment is reported
/// as malformed so typos cannot silently fail to suppress):
///
/// ```text
/// // kset-lint: allow(<rule-name>): <non-empty justification>
/// ```
///
/// A comment with code earlier on the same line suppresses that line; a
/// standalone comment line suppresses the next line containing code.
fn parse_allows(
    src: &str,
    lexed: &Lexed,
    line_starts: &[usize],
) -> (Vec<Allow>, Vec<(usize, String)>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    let bytes = src.as_bytes();

    for (li, &start) in line_starts.iter().enumerate() {
        let end = line_starts
            .get(li + 1)
            .map_or(src.len(), |&next| next.saturating_sub(1));
        if start >= end {
            continue;
        }
        let line_no = li + 1;
        let line = &src[start..end];
        let Some(pos) = line.find(ALLOW_MARKER) else {
            continue;
        };
        // Only honor the marker inside an actual comment; the same text in a
        // string literal is somebody's data, not a suppression.
        if lexed.classes[start + pos] != ByteClass::Comment {
            continue;
        }
        // Doc comments are documentation *about* the grammar, not
        // suppressions: a real allow must be a plain `//` or `/*` comment.
        if in_doc_comment(src, &lexed.classes, start + pos) {
            continue;
        }
        let rest = line[pos + ALLOW_MARKER.len()..].trim_start();
        let Some(paren_open) = rest.strip_prefix("allow(") else {
            malformed.push((line_no, "expected `allow(<rule>): <justification>`".into()));
            continue;
        };
        let Some(close) = paren_open.find(')') else {
            malformed.push((line_no, "unclosed `allow(` rule name".into()));
            continue;
        };
        let rule = paren_open[..close].trim().to_string();
        if rule.is_empty() {
            malformed.push((line_no, "empty rule name in `allow()`".into()));
            continue;
        }
        let after = paren_open[close + 1..].trim_start();
        let Some(justification) = after.strip_prefix(':') else {
            malformed.push((line_no, "missing `:` before justification".into()));
            continue;
        };
        let justification = justification.trim();
        if justification.is_empty() {
            malformed.push((line_no, "empty justification".into()));
            continue;
        }

        // Trailing comment (code earlier on this line) targets its own line;
        // a standalone comment targets the next line that contains code.
        let has_code_before = (start..start + pos)
            .any(|i| lexed.classes[i] == ByteClass::Code && !bytes[i].is_ascii_whitespace());
        let target_line = if has_code_before {
            line_no
        } else {
            next_code_line(lexed, line_starts, li + 1).unwrap_or(line_no)
        };
        allows.push(Allow {
            rule,
            justification: justification.to_string(),
            comment_line: line_no,
            target_line,
            used: false,
        });
    }
    (allows, malformed)
}

/// Whether the comment containing byte `at` is a doc comment (`///`, `//!`,
/// `/**`, `/*!`). Walks back to the comment's opening delimiter.
fn in_doc_comment(src: &str, classes: &[crate::lexer::ByteClass], at: usize) -> bool {
    let mut start = at;
    while start > 0 && classes[start - 1] == crate::lexer::ByteClass::Comment {
        start -= 1;
    }
    let head = &src[start..src.len().min(start + 4)];
    // `/**/` and `/***/`-style separators are not docs; `/**x` is.
    head.starts_with("///")
        || head.starts_with("//!")
        || head.starts_with("/*!")
        || (head.starts_with("/**") && !head.starts_with("/**/"))
}

/// First 1-based line at index ≥ `from` (0-based) containing code.
fn next_code_line(lexed: &Lexed, line_starts: &[usize], from: usize) -> Option<usize> {
    let masked = lexed.masked.as_bytes();
    for li in from..line_starts.len() {
        let start = line_starts[li];
        let end = line_starts
            .get(li + 1)
            .copied()
            .unwrap_or(masked.len())
            .min(masked.len());
        if masked[start..end].iter().any(|&b| !b.is_ascii_whitespace()) {
            return Some(li + 1);
        }
    }
    None
}

/// Finds byte ranges of `#[cfg(test)]`-gated and `#[test]`-attributed items
/// in the masked text.
///
/// The range runs from the `#` of the attribute to the matching `}` of the
/// first brace block that opens after it (or the first `;` at attribute
/// depth for brace-less items). Nested attributes between the gate and the
/// item body (`#[test] #[should_panic] fn …`) are covered because the scan
/// looks for the first *top-level* `{` after the attribute.
fn find_test_ranges(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Skip ranges we already attributed (outermost gate wins).
        if let Some(&(_, e)) = ranges.last() {
            if i < e {
                i = e;
                continue;
            }
        }
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let rest = &masked[i..];
        let is_gate = rest.starts_with("#[cfg(test)]")
            || rest.starts_with("#[cfg(all(test")
            || rest.starts_with("#[cfg(any(test")
            || rest.starts_with("#[test]")
            || rest.starts_with("#[bench]");
        if !is_gate {
            i += 1;
            continue;
        }
        let start = i;
        // Advance past the attribute's closing bracket.
        let mut j = i;
        let mut bracket_depth = 0i32;
        while j < bytes.len() {
            match bytes[j] {
                b'[' => bracket_depth += 1,
                b']' => {
                    bracket_depth -= 1;
                    if bracket_depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // Find the item's body: first `{` (then match braces) or a `;`
        // before any `{` (e.g. a gated `use` or macro invocation).
        let mut brace_depth = 0i32;
        let mut opened = false;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    brace_depth += 1;
                    opened = true;
                }
                b'}' => {
                    brace_depth -= 1;
                    if opened && brace_depth == 0 {
                        j += 1;
                        break;
                    }
                }
                b';' if !opened => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        ranges.push((start, j));
        i = j;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::scan("test.rs", src.to_string())
    }

    #[test]
    fn trailing_allow_targets_own_line() {
        let f = scan("let x = v.unwrap(); // kset-lint: allow(panic-in-library): seeded above\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "panic-in-library");
        assert_eq!(f.allows[0].target_line, 1);
        assert_eq!(f.allows[0].justification, "seeded above");
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "\n// kset-lint: allow(observer-bypass): explorer drives raw steps\n\nsim.step(p, d);\n";
        let f = scan(src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].comment_line, 2);
        assert_eq!(f.allows[0].target_line, 4);
    }

    #[test]
    fn malformed_allow_reported() {
        let f = scan("// kset-lint: allow(panic-in-library)\nlet x = 1;\n");
        assert!(f.allows.is_empty());
        assert_eq!(f.malformed_allows.len(), 1);
        assert_eq!(f.malformed_allows[0].0, 1);
    }

    #[test]
    fn empty_justification_is_malformed() {
        let f = scan("// kset-lint: allow(shim-drift):   \nlet x = 1;\n");
        assert!(f.allows.is_empty());
        assert_eq!(f.malformed_allows.len(), 1);
    }

    #[test]
    fn marker_inside_string_ignored() {
        let f = scan("let s = \"kset-lint: allow(x): y\";\n");
        assert!(f.allows.is_empty());
        assert!(f.malformed_allows.is_empty());
    }

    #[test]
    fn cfg_test_mod_range_covers_body() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let f = scan(src);
        assert_eq!(f.test_ranges.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(f.in_test_code(unwrap_at));
        assert!(!f.in_test_code(src.find("fn lib").unwrap()));
        assert!(!f.in_test_code(src.find("fn tail").unwrap()));
    }

    #[test]
    fn test_attr_fn_range() {
        let src = "#[test]\nfn t() { let v = x.unwrap(); }\nfn lib() {}\n";
        let f = scan(src);
        assert!(f.in_test_code(src.find("unwrap").unwrap()));
        assert!(!f.in_test_code(src.find("fn lib").unwrap()));
    }

    #[test]
    fn braces_in_strings_do_not_confuse_ranges() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n    fn t() {}\n}\nfn lib() { after(); }\n";
        let f = scan(src);
        // The stray `}` lives in a string: masked text hides it, so the range
        // must extend to the real closing brace.
        assert!(f.in_test_code(src.find("fn t").unwrap()));
        assert!(!f.in_test_code(src.find("after").unwrap()));
    }

    #[test]
    fn line_of_maps_offsets() {
        let f = scan("a\nbb\nccc\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(5), 3);
    }
}
