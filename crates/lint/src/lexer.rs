//! A byte-class lexer for Rust source: partitions a file into *code*,
//! *comment*, and *literal* bytes without parsing — the whole static-analysis
//! layer rests on this classification being right.
//!
//! The scanner deliberately does **not** build a syntax tree (no `syn`; the
//! workspace builds offline with zero external dependencies). Instead it
//! answers one question exactly: *is byte `i` part of executable code, or is
//! it inside a comment / string / char literal?* Rule matchers then search
//! for tokens in a [`masked`](Lexed::masked) copy of the source where every
//! non-code byte is blanked, so `"HashMap"` in a string, `// HashMap` in a
//! comment, and `r#"unwrap()"#` in a raw string can never fire a rule.
//!
//! Handled forms, each pinned by unit and property tests:
//!
//! - line comments `//…` (incl. doc `///`, `//!`) to end of line;
//! - block comments `/* … */` with **nesting**, incl. doc `/** … */`;
//! - string literals `"…"` with escapes (`\"`, `\\`, `\n`, …);
//! - raw strings `r"…"`, `r#"…"#`, … with any hash depth, and the byte /
//!   C-string forms `b"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`;
//! - char literals `'a'`, `'\''`, `'\u{1F600}'`;
//! - lifetimes `'a`, `'static`, and the label form `'outer:` — an apostrophe
//!   followed by an identifier is **code**, not an unterminated char literal.

/// Classification of one byte of source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteClass {
    /// Executable code (identifiers, punctuation, whitespace between tokens).
    Code,
    /// Inside a `//…` or `/*…*/` comment, including the delimiters.
    Comment,
    /// Inside a string / raw-string / byte-string literal, including quotes.
    Str,
    /// Inside a char literal, including the quotes.
    Char,
}

/// The result of lexing one source file.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// Per-byte classification; same length as the input.
    pub classes: Vec<ByteClass>,
    /// The source with every non-[`Code`](ByteClass::Code) byte replaced by a
    /// space (newlines are preserved everywhere, so line/column arithmetic on
    /// `masked` matches the original source exactly).
    pub masked: String,
}

/// Whether `b` can appear in a Rust identifier (ASCII approximation — the
/// workspace is ASCII-only and the conformance tests would catch drift).
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `b` can *start* a Rust identifier.
pub fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

/// Lexes `src` into per-byte classes plus the code-only masked text.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut classes = vec![ByteClass::Code; n];
    let mut i = 0;

    // Mark `bytes[from..to]` with `class`.
    let mark = |classes: &mut [ByteClass], from: usize, to: usize, class: ByteClass| {
        for c in &mut classes[from..to] {
            *c = class;
        }
    };

    while i < n {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let start = i;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                mark(&mut classes, start, i, ByteClass::Comment);
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && bytes[i] == b'/' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                mark(&mut classes, start, i, ByteClass::Comment);
            }
            b'"' => {
                let start = i;
                i = skip_plain_string(bytes, i);
                mark(&mut classes, start, i, ByteClass::Str);
            }
            b'r' | b'b' | b'c' if starts_prefixed_literal(bytes, i) => {
                let start = i;
                // Skip the prefix letters (`r`, `br`, `cr`, `b`, `c`).
                while i < n && (bytes[i] == b'r' || bytes[i] == b'b' || bytes[i] == b'c') {
                    i += 1;
                }
                if i < n && (bytes[i] == b'#' || bytes[i] == b'"') {
                    // Raw form (possibly zero hashes): r"…", r#"…"#, br"…", …
                    let mut hashes = 0usize;
                    while i < n && bytes[i] == b'#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && bytes[i] == b'"' {
                        let raw = start < i && bytes[start..i].contains(&b'r');
                        if raw {
                            i += 1;
                            i = skip_raw_string_body(bytes, i, hashes);
                        } else {
                            // b"…" / c"…": plain escape rules.
                            i = skip_plain_string(bytes, i);
                        }
                        mark(&mut classes, start, i, ByteClass::Str);
                    }
                    // `r#ident` (raw identifier): fell through with no quote —
                    // everything stays Code and the scan resumes where we are.
                } else {
                    // `b'x'` byte-char literal.
                    debug_assert!(i < n && bytes[i] == b'\'');
                    let end = skip_char_literal(bytes, i);
                    if end > i {
                        mark(&mut classes, start, end, ByteClass::Char);
                        i = end;
                    }
                }
            }
            b'\'' => {
                // Lifetime vs char literal. `'ident` with no closing quote
                // after one character is a lifetime/label: code.
                let end = skip_char_literal(bytes, i);
                if end > i {
                    mark(&mut classes, i, end, ByteClass::Char);
                    i = end;
                } else {
                    i += 1; // lifetime apostrophe: code
                }
            }
            _ => i += 1,
        }
        // Anything not handled above advanced `i` already; identifiers and
        // other code bytes fall through one at a time.
        if i < n && !matches!(bytes[i], b'/' | b'"' | b'\'' | b'r' | b'b' | b'c') {
            // Fast-forward through runs of plainly uninteresting bytes, but
            // never across a byte that could *end* an identifier directly
            // before a literal prefix (e.g. `bar"x"` must not treat `"x"` as
            // part of an identifier).
            while i < n && !matches!(bytes[i], b'/' | b'"' | b'\'' | b'r' | b'b' | b'c') {
                i += 1;
            }
        }
    }

    // Literal prefixes glued to a preceding identifier are not prefixes:
    // in `foo_r"x"` the `r` belongs to the identifier. The main loop above
    // already handles this because identifier bytes are consumed one at a
    // time only when they are `r`/`b`/`c`; fix up by re-checking: a Str/Char
    // span whose first byte is preceded by an identifier byte classified as
    // Code is only legitimate for bare `"` openers. `starts_prefixed_literal`
    // performs that check, so nothing to do here.

    let mut masked = String::with_capacity(n);
    for (idx, &b) in bytes.iter().enumerate() {
        if classes[idx] == ByteClass::Code || b == b'\n' {
            // Keep newlines even inside literals/comments so line numbers in
            // `masked` line up with the original source.
            masked.push(if classes[idx] == ByteClass::Code {
                b as char
            } else {
                '\n'
            });
        } else {
            masked.push(' ');
        }
    }
    // `masked` was built byte-by-byte from ASCII-or-replaced bytes; multi-byte
    // UTF-8 sequences only occur inside comments/strings in this workspace,
    // where each byte becomes a space, so the String stays valid UTF-8.

    Lexed { classes, masked }
}

/// Whether position `i` (at an `r`/`b`/`c` byte) starts a prefixed string or
/// byte-char literal rather than an ordinary identifier.
fn starts_prefixed_literal(bytes: &[u8], i: usize) -> bool {
    // A prefix only counts if not glued to a preceding identifier byte.
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let n = bytes.len();
    let mut j = i;
    // Accept the prefixes: r, b, c, br, cr (at most two letters).
    let mut letters = 0;
    while j < n && matches!(bytes[j], b'r' | b'b' | b'c') && letters < 2 {
        j += 1;
        letters += 1;
    }
    if j >= n {
        return false;
    }
    match bytes[j] {
        b'"' => true,
        b'#' => {
            // Raw string: hashes then a quote. `r#ident` is a raw identifier,
            // not a literal — require the quote.
            let mut k = j;
            while k < n && bytes[k] == b'#' {
                k += 1;
            }
            k < n && bytes[k] == b'"' && bytes[i..j].contains(&b'r')
        }
        // b'x' byte-char literal.
        b'\'' => letters == 1 && bytes[i] == b'b' && skip_char_literal(bytes, j) > j,
        _ => false,
    }
}

/// Skips a plain (escaped) string literal starting at the opening quote;
/// returns the index one past the closing quote (or end of input).
fn skip_plain_string(bytes: &[u8], open: usize) -> usize {
    let n = bytes.len();
    debug_assert!(bytes[open] == b'"');
    let mut i = open + 1;
    while i < n {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Skips a raw-string body (cursor just past the opening quote); returns the
/// index one past the closing `"###…` run of `hashes` hashes.
fn skip_raw_string_body(bytes: &[u8], mut i: usize, hashes: usize) -> usize {
    let n = bytes.len();
    while i < n {
        if bytes[i] == b'"' {
            let mut k = i + 1;
            let mut seen = 0usize;
            while k < n && seen < hashes && bytes[k] == b'#' {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        i += 1;
    }
    n
}

/// If a valid char literal starts at `open` (an apostrophe), returns the index
/// one past its closing quote; otherwise returns `open` (it is a lifetime).
fn skip_char_literal(bytes: &[u8], open: usize) -> usize {
    let n = bytes.len();
    debug_assert!(open < n && bytes[open] == b'\'');
    let mut i = open + 1;
    if i >= n {
        return open;
    }
    if bytes[i] == b'\\' {
        // Escaped char: consume the backslash + escape body up to the quote.
        i += 2; // backslash and the escape head (n, ', u, x, …)
        while i < n && bytes[i] != b'\'' && bytes[i] != b'\n' {
            i += 1;
        }
        if i < n && bytes[i] == b'\'' {
            return i + 1;
        }
        return open;
    }
    // Unescaped: exactly one character then a quote ⇒ char literal; an
    // identifier character NOT followed by a quote ⇒ lifetime.
    let first = bytes[i];
    if first == b'\'' {
        return open; // `''` is not a char literal
    }
    // Multi-byte UTF-8 scalar: consume continuation bytes.
    let mut j = i + 1;
    while j < n && bytes[j] & 0b1100_0000 == 0b1000_0000 {
        j += 1;
    }
    if j < n && bytes[j] == b'\'' {
        // `'a'` — but `'a''` after a lifetime cannot occur in valid Rust;
        // prefer the char-literal reading, matching rustc.
        return j + 1;
    }
    open
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(src: &str) -> String {
        lex(src).masked
    }

    #[test]
    fn line_comment_blanked() {
        let m = mask("let x = 1; // HashMap here\nlet y = 2;");
        assert!(!m.contains("HashMap"));
        assert!(m.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comment() {
        let m = mask("a /* outer /* inner */ still comment */ b");
        assert!(m.contains('a'));
        assert!(m.contains('b'));
        assert!(!m.contains("inner"));
        assert!(!m.contains("still"));
    }

    #[test]
    fn string_with_escaped_quote() {
        let m = mask(r#"let s = "he said \"unwrap()\""; step();"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("step();"));
    }

    #[test]
    fn raw_string_with_hashes() {
        let m = mask(r###"let s = r#"contains "quotes" and unwrap()"#; done();"###);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("done();"));
    }

    #[test]
    fn byte_and_cstr_literals() {
        let m = mask(r##"let a = b"panic!("; let b = br#"expect("#; tail();"##);
        assert!(!m.contains("panic"));
        assert!(m.contains("tail();"));
    }

    #[test]
    fn lifetime_is_code_char_literal_is_not() {
        let m = mask("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(m.contains("<'a>"));
        assert!(m.contains("&'a str"));
        assert!(!m.contains("'x'"));
    }

    #[test]
    fn label_loop_is_code() {
        let m = mask("'outer: loop { break 'outer; }");
        assert!(m.contains("'outer: loop"));
        assert!(m.contains("break 'outer;"));
    }

    #[test]
    fn raw_identifier_stays_code() {
        let m = mask("let r#type = 1; use r#fn;");
        assert!(m.contains("r#type"));
        assert!(m.contains("r#fn"));
    }

    #[test]
    fn ident_glued_prefix_not_a_literal() {
        let m = mask(r#"let bar = car + r0; foo_r"not a raw string start"#);
        assert!(m.contains("bar"));
        assert!(m.contains("car"));
        // `foo_r` is an identifier; the `"` after it opens a normal string.
        assert!(!m.contains("not a raw"));
    }

    #[test]
    fn newlines_preserved_inside_literals() {
        let src = "let a = \"line1\nline2\"; // c\nlet b = 1;";
        let m = mask(src);
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
        assert!(m.lines().nth(2).unwrap().contains("let b = 1;"));
    }

    #[test]
    fn unterminated_string_swallows_tail() {
        let m = mask("let s = \"unterminated unwrap()");
        assert!(!m.contains("unwrap"));
    }

    #[test]
    fn char_escape_u_form() {
        let m = mask(r"let c = '\u{1F600}'; rest();");
        assert!(m.contains("rest();"));
        assert!(!m.contains("1F600"));
    }
}
