//! CLI for the workspace lint pass.
//!
//! ```text
//! kset-lint [--root DIR] [--summary FILE] [--show-allowed] [--list-rules]
//!           [--write-shim-manifest]
//! ```
//!
//! Exit status: 0 when the pass is clean (zero non-allowed diagnostics),
//! 1 on violations, 2 on usage or IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut summary: Option<PathBuf> = None;
    let mut show_allowed = false;
    let mut list_rules = false;
    let mut write_manifest = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--summary" => match args.next() {
                Some(v) => summary = Some(PathBuf::from(v)),
                None => return usage("--summary needs a file path"),
            },
            "--show-allowed" => show_allowed = true,
            "--list-rules" => list_rules = true,
            "--write-shim-manifest" => write_manifest = true,
            "--help" | "-h" => {
                println!(
                    "kset-lint: workspace static-analysis pass\n\n\
                     USAGE: kset-lint [--root DIR] [--summary FILE] [--show-allowed]\n\
                     \x20                [--list-rules] [--write-shim-manifest]\n\n\
                     Suppress a diagnostic at its site with a justified comment:\n\
                     \x20   // kset-lint: allow(<rule>): <justification>"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for rule in kset_lint::rules::RULES {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }

    if write_manifest {
        let text = match kset_lint::regenerate_shim_manifest(&root) {
            Ok(t) => t,
            Err(e) => return fail(&format!("kset-lint: {e}")),
        };
        let path = root.join(kset_lint::SHIM_MANIFEST_PATH);
        if let Err(e) = std::fs::write(&path, text) {
            return fail(&format!("kset-lint: writing {}: {e}", path.display()));
        }
        println!("kset-lint: wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let report = match kset_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => return fail(&format!("kset-lint: {e}")),
    };

    print!("{}", report.render_human(show_allowed));

    if let Some(path) = summary {
        if let Err(e) = std::fs::write(&path, report.render_summary()) {
            return fail(&format!("kset-lint: writing {}: {e}", path.display()));
        }
    }

    if report.violation_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("kset-lint: {msg} (see --help)");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::from(2)
}
