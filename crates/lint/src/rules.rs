//! The named rule set and the matching engine.
//!
//! Every rule is a *token-level* check over the [masked](crate::lexer::Lexed)
//! code text of a file — the scanner has no type information, so rules match
//! qualified names and method-call shapes and say so in their messages. The
//! known gaps (an aliased `type S = Simulation<…>; S::new(…)` escapes
//! `unchecked-capacity`; a `Process::step` delegation textually collides with
//! `observer-bypass`) are deliberate: the escape hatch is a justified
//! per-site `// kset-lint: allow(<rule>): <why>` comment, and the collision
//! cost is one justified allow rather than a missed bypass.

use crate::scan::ScannedFile;
use crate::workspace::{SourceFile, TargetKind};

/// Severity/status of one diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Status {
    /// The rule fired and no allow covers the site: the pass fails.
    Violation,
    /// The rule fired but a justified allow covers the site.
    Allowed,
}

/// One diagnostic produced by the pass.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule name (stable identifier, used in allow comments).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the hit.
    pub message: String,
    /// [`Status::Allowed`] carries the justification text.
    pub status: Status,
    /// Justification from the allow comment, when `status` is `Allowed`.
    pub justification: Option<String>,
}

/// Names of the shipped rules, in report order.
pub const RULES: &[&str] = &[
    NONDETERMINISM_IN_RECORD_PATH,
    OBSERVER_BYPASS,
    UNCHECKED_CAPACITY,
    PANIC_IN_LIBRARY,
    SHIM_DRIFT,
];

/// Pseudo-rules for the suppression machinery itself (not allowable).
pub const META_RULES: &[&str] = &[MALFORMED_ALLOW, UNUSED_ALLOW, UNKNOWN_RULE_ALLOW];

pub const NONDETERMINISM_IN_RECORD_PATH: &str = "nondeterminism-in-record-path";
pub const OBSERVER_BYPASS: &str = "observer-bypass";
pub const UNCHECKED_CAPACITY: &str = "unchecked-capacity";
pub const PANIC_IN_LIBRARY: &str = "panic-in-library";
pub const SHIM_DRIFT: &str = "shim-drift";
pub const MALFORMED_ALLOW: &str = "malformed-allow";
pub const UNUSED_ALLOW: &str = "unused-allow";
pub const UNKNOWN_RULE_ALLOW: &str = "unknown-rule-allow";

/// Modules that produce `kset-sweep` records, digests, and scenario lines:
/// the byte-identity contracts (shard merge ≡ sequential, resume ≡
/// uninterrupted) forbid any nondeterministic iteration order, ambient
/// clock, or ambient RNG here.
const RECORD_PATH_PREFIXES: &[&str] = &[
    "crates/sim/src/sweep/",
    "crates/sim/src/textfmt.rs",
    "crates/sim/src/scenario.rs",
    "crates/core/src/scenario.rs",
    "crates/bench/src/sweeps.rs",
    // The fleet's wire grammar and incremental merge feed bytes into shard
    // files; the scheduling layers around them (state.rs, coordinator.rs,
    // worker.rs) legitimately use clocks and sockets and stay out of scope.
    "crates/sim/src/fleet/proto.rs",
    "crates/sim/src/fleet/merge.rs",
];

/// Files where the engine-driving internals legitimately live: the homes of
/// the `_observed` unified event stream — the step engine, the lock-step
/// round executor, and the discrete-event dispatcher.
const OBSERVER_HOME_FILES: &[&str] = &[
    "crates/sim/src/engine.rs",
    "crates/core/src/sync.rs",
    "crates/sim/src/des/engine.rs",
];

/// The defining module of `WideSet`/`ProcessSet`: its panicking wrappers are
/// implemented (and documented) here in terms of the `try_*` forms.
const CAPACITY_HOME_FILES: &[&str] = &["crates/sim/src/ids.rs"];

/// Whether `file` is in scope for `rule` at all (before per-site matching).
pub fn rule_applies(rule: &str, file: &SourceFile) -> bool {
    match rule {
        NONDETERMINISM_IN_RECORD_PATH => RECORD_PATH_PREFIXES
            .iter()
            .any(|p| file.rel_path.starts_with(p)),
        OBSERVER_BYPASS => !OBSERVER_HOME_FILES.contains(&file.rel_path.as_str()),
        UNCHECKED_CAPACITY => !CAPACITY_HOME_FILES.contains(&file.rel_path.as_str()),
        // Binaries get a pass on `panic-in-library` only for their CLI entry
        // shell; library code (everything under `src/` except `src/bin/`)
        // must use typed errors or justify.
        PANIC_IN_LIBRARY => file.kind == TargetKind::Lib,
        // shim-drift runs as a separate workspace-level pass.
        _ => false,
    }
}

/// Runs all line-level rules over one scanned file, producing diagnostics
/// (violations and allowed hits) plus the allow-hygiene pseudo-diagnostics.
pub fn check_file(file: &SourceFile, scanned: &mut ScannedFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut hits: Vec<(usize, &'static str, String)> = Vec::new();

    if rule_applies(NONDETERMINISM_IN_RECORD_PATH, file) {
        nondeterminism_hits(scanned, &mut hits);
    }
    if rule_applies(OBSERVER_BYPASS, file) {
        observer_bypass_hits(scanned, &mut hits);
    }
    if rule_applies(UNCHECKED_CAPACITY, file) {
        unchecked_capacity_hits(scanned, &mut hits);
    }
    if rule_applies(PANIC_IN_LIBRARY, file) {
        panic_hits(scanned, &mut hits);
    }

    hits.sort_by_key(|&(off, rule, _)| (off, rule));
    for (offset, rule, message) in hits {
        if scanned.in_test_code(offset) {
            continue;
        }
        let line = scanned.line_of(offset);
        let (status, justification) = match scanned.consume_allow(rule, line) {
            Some(allow) => (Status::Allowed, Some(allow.justification.clone())),
            None => (Status::Violation, None),
        };
        diags.push(Diagnostic {
            rule,
            file: scanned.rel_path.clone(),
            line,
            message,
            status,
            justification,
        });
    }

    // Allow hygiene: malformed markers, allows that never fired, allows
    // naming a rule that does not exist. All are violations — a stale or
    // misspelled suppression is itself a bug in the contract record.
    for &(line, ref problem) in &scanned.malformed_allows {
        diags.push(Diagnostic {
            rule: MALFORMED_ALLOW,
            file: scanned.rel_path.clone(),
            line,
            message: format!("malformed kset-lint comment: {problem}"),
            status: Status::Violation,
            justification: None,
        });
    }
    for allow in &scanned.allows {
        if !RULES.contains(&allow.rule.as_str()) {
            diags.push(Diagnostic {
                rule: UNKNOWN_RULE_ALLOW,
                file: scanned.rel_path.clone(),
                line: allow.comment_line,
                message: format!("allow names unknown rule `{}`", allow.rule),
                status: Status::Violation,
                justification: None,
            });
        } else if !allow.used {
            diags.push(Diagnostic {
                rule: UNUSED_ALLOW,
                file: scanned.rel_path.clone(),
                line: allow.comment_line,
                message: format!(
                    "allow({}) suppresses nothing on line {}; remove it",
                    allow.rule, allow.target_line
                ),
                status: Status::Violation,
                justification: None,
            });
        }
    }

    diags
}

// ---------------------------------------------------------------------------
// Token matching helpers over masked text.
// ---------------------------------------------------------------------------

/// Byte offsets of word-bounded occurrences of `ident` in `masked`.
fn ident_occurrences(masked: &str, ident: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = masked[from..].find(ident) {
        let at = from + pos;
        let before_ok = at == 0 || !crate::lexer::is_ident_byte(bytes[at - 1]);
        let after = at + ident.len();
        let after_ok = after >= bytes.len() || !crate::lexer::is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + ident.len().max(1);
    }
    out
}

/// Whether the last non-whitespace byte before `at` is `want`.
fn preceded_by(masked: &str, at: usize, want: u8) -> bool {
    masked.as_bytes()[..at]
        .iter()
        .rev()
        .find(|b| !b.is_ascii_whitespace())
        .is_some_and(|&b| b == want)
}

/// Whether the first non-whitespace byte after the ident ending at `end` is
/// `want`.
fn followed_by(masked: &str, end: usize, want: u8) -> bool {
    masked.as_bytes()[end..]
        .iter()
        .find(|b| !b.is_ascii_whitespace())
        .is_some_and(|&b| b == want)
}

/// Whether `at` is directly preceded by the path `prefix` (e.g.
/// `Simulation::`), ignoring nothing — qualified-call matching is exact.
fn preceded_by_path(masked: &str, at: usize, prefix: &str) -> bool {
    at >= prefix.len() && {
        let start = at - prefix.len();
        let glued_ident = start > 0 && crate::lexer::is_ident_byte(masked.as_bytes()[start - 1]);
        &masked[start..at] == prefix && !glued_ident
    }
}

// ---------------------------------------------------------------------------
// Rule matchers.
// ---------------------------------------------------------------------------

fn nondeterminism_hits(scanned: &ScannedFile, hits: &mut Vec<(usize, &'static str, String)>) {
    const FORBIDDEN: &[(&str, &str)] = &[
        ("HashMap", "iteration order is nondeterministic across runs"),
        ("HashSet", "iteration order is nondeterministic across runs"),
        (
            "SystemTime",
            "ambient wall clock breaks record byte-identity",
        ),
        (
            "Instant",
            "ambient monotonic clock breaks record byte-identity",
        ),
        ("thread_rng", "ambient RNG breaks deterministic cell seeds"),
        (
            "from_entropy",
            "entropy-seeded RNG breaks deterministic cell seeds",
        ),
    ];
    for &(ident, why) in FORBIDDEN {
        for at in ident_occurrences(&scanned.lexed.masked, ident) {
            hits.push((
                at,
                NONDETERMINISM_IN_RECORD_PATH,
                format!("`{ident}` in a record/digest path: {why}"),
            ));
        }
    }
}

fn observer_bypass_hits(scanned: &ScannedFile, hits: &mut Vec<(usize, &'static str, String)>) {
    const DRIVERS: &[&str] = &[
        "step",
        "step_observed",
        "execute_round",
        "execute_round_observed",
        "tick",
        "dispatch",
        "dispatch_observed",
    ];
    for &ident in DRIVERS {
        for at in ident_occurrences(&scanned.lexed.masked, ident) {
            let is_method_call = preceded_by(&scanned.lexed.masked, at, b'.')
                && followed_by(&scanned.lexed.masked, at + ident.len(), b'(');
            if is_method_call {
                hits.push((
                    at,
                    OBSERVER_BYPASS,
                    format!(
                        "`.{ident}(…)` drives an engine outside the substrate homes \
                         (engine.rs/sync.rs/des/engine.rs), skipping the `_observed` unified \
                         event stream"
                    ),
                ));
            }
        }
    }
}

fn unchecked_capacity_hits(scanned: &ScannedFile, hits: &mut Vec<(usize, &'static str, String)>) {
    const QUALIFIED: &[(&str, &str, &str)] = &[
        ("Simulation::", "new", "Simulation::try_new"),
        ("Simulation::", "with_oracle", "Simulation::try_with_oracle"),
        ("LockStep::", "new", "LockStep::try_new"),
        ("ProcessSet::", "singleton", "ProcessSet::try_singleton"),
        ("ProcessSet::", "full", "ProcessSet::try_full"),
        ("WideSet::", "singleton", "WideSet::try_singleton"),
        ("WideSet::", "full", "WideSet::try_full"),
        ("Self::", "full", "Self::try_full"),
        ("Self::", "singleton", "Self::try_singleton"),
    ];
    for &(prefix, ident, fallible) in QUALIFIED {
        for at in ident_occurrences(&scanned.lexed.masked, ident) {
            if preceded_by_path(&scanned.lexed.masked, at, prefix)
                && followed_by(&scanned.lexed.masked, at + ident.len(), b'(')
            {
                hits.push((
                    at,
                    UNCHECKED_CAPACITY,
                    format!(
                        "`{prefix}{ident}(…)` panics on oversized systems; use `{fallible}` and \
                         surface the `CapacityError`"
                    ),
                ));
            }
        }
    }
}

fn panic_hits(scanned: &ScannedFile, hits: &mut Vec<(usize, &'static str, String)>) {
    // Method-shaped: `.unwrap()` / `.expect("…")`.
    for &(ident, needs_empty_args) in &[("unwrap", true), ("expect", false)] {
        for at in ident_occurrences(&scanned.lexed.masked, ident) {
            let end = at + ident.len();
            let masked = &scanned.lexed.masked;
            if !preceded_by(masked, at, b'.') || !followed_by(masked, end, b'(') {
                continue;
            }
            if needs_empty_args {
                // `.unwrap()` exactly — `unwrap` taking arguments is some
                // other API.
                let after_paren = masked[end..].find('(').map(|p| end + p + 1);
                let closes_immediately =
                    after_paren.is_some_and(|p| masked.as_bytes().get(p).copied() == Some(b')'));
                if !closes_immediately {
                    continue;
                }
            }
            hits.push((
                at,
                PANIC_IN_LIBRARY,
                format!("`.{ident}(…)` in library code panics on the error path; return a typed error or justify"),
            ));
        }
    }
    // Macro-shaped: panic!/unreachable!/todo!/unimplemented!.
    for &mac in &["panic", "unreachable", "todo", "unimplemented"] {
        for at in ident_occurrences(&scanned.lexed.masked, mac) {
            if followed_by(&scanned.lexed.masked, at + mac.len(), b'!') {
                hits.push((
                    at,
                    PANIC_IN_LIBRARY,
                    format!("`{mac}!` in library code; return a typed error or justify"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(rel: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            kind: TargetKind::Lib,
            crate_name: "kset-sim".to_string(),
        }
    }

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let file = lib_file(rel);
        let mut scanned = ScannedFile::scan(rel, src.to_string());
        check_file(&file, &mut scanned)
    }

    #[test]
    fn record_path_scope_is_exact() {
        let src = "use std::collections::HashMap;\n";
        assert!(run("crates/sim/src/sweep/record.rs", src)
            .iter()
            .any(|d| d.rule == NONDETERMINISM_IN_RECORD_PATH));
        assert!(!run("crates/sim/src/engine.rs", src)
            .iter()
            .any(|d| d.rule == NONDETERMINISM_IN_RECORD_PATH));
    }

    #[test]
    fn observer_home_files_exempt() {
        let src = "fn f(s: &mut S) { s.step(p, d); }\n";
        assert!(run("crates/sim/src/explore.rs", src)
            .iter()
            .any(|d| d.rule == OBSERVER_BYPASS));
        assert!(run("crates/sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn des_dispatch_entry_points_fire_outside_their_home() {
        // The discrete-event substrate's drivers are bypass vectors too…
        for src in [
            "fn f(e: &mut E) { e.tick(now, &mut acts); }\n",
            "fn f(e: &mut E) { e.dispatch(); }\n",
            "fn f(e: &mut E) { e.dispatch_observed(&mut obs); }\n",
        ] {
            assert!(
                run("crates/sim/src/explore.rs", src)
                    .iter()
                    .any(|d| d.rule == OBSERVER_BYPASS),
                "{src}"
            );
            // …and their home file is exempt like the other substrates'.
            assert!(run("crates/sim/src/des/engine.rs", src).is_empty(), "{src}");
        }
    }

    #[test]
    fn step_field_access_is_not_a_call() {
        // `x.step` without a call, and a bare fn `step(…)`, do not fire.
        let diags = run("crates/sim/src/explore.rs", "let a = x.step; step(1);\n");
        assert!(diags.is_empty());
    }

    #[test]
    fn unwrap_with_args_not_flagged() {
        let diags = run(
            "crates/sim/src/buffer.rs",
            "let x = v.unwrap_or(3); let y = w.unwrap( z );\n",
        );
        assert!(diags.iter().all(|d| d.rule != PANIC_IN_LIBRARY));
    }

    #[test]
    fn allow_suppresses_and_unused_allow_fires() {
        let src = "let x = v.unwrap(); // kset-lint: allow(panic-in-library): checked above\n";
        let diags = run("crates/sim/src/buffer.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].status, Status::Allowed);
        assert_eq!(diags[0].justification.as_deref(), Some("checked above"));

        let stale = "// kset-lint: allow(panic-in-library): nothing here\nlet x = 1;\n";
        let diags = run("crates/sim/src/buffer.rs", stale);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, UNUSED_ALLOW);
    }

    #[test]
    fn unknown_rule_allow_fires() {
        let src = "// kset-lint: allow(no-such-rule): because\nlet x = 1;\n";
        let diags = run("crates/sim/src/buffer.rs", src);
        assert!(diags.iter().any(|d| d.rule == UNKNOWN_RULE_ALLOW));
    }

    #[test]
    fn qualified_capacity_matching() {
        let src = "let s = ProcessSet::singleton(p); let t = NotProcessSet::singleton(p);\n";
        let diags = run("crates/sim/src/buffer.rs", src);
        let caps: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == UNCHECKED_CAPACITY)
            .collect();
        assert_eq!(caps.len(), 1, "{diags:?}");
    }

    #[test]
    fn try_forms_do_not_fire() {
        let src = "let s = ProcessSet::try_singleton(p)?; let f = Self::try_full(n)?;\n";
        assert!(run("crates/sim/src/buffer.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); panic!(\"x\"); }\n}\n";
        assert!(run("crates/sim/src/buffer.rs", src).is_empty());
    }
}
