//! `kset-lint` — the workspace's zero-dependency static-analysis pass.
//!
//! The reproduction's guarantees (shard merges byte-identical to sequential
//! sweeps, `--resume` byte-identical to uninterrupted runs, both substrates
//! agreeing across the Theorem 8 border grid) rest on source-level
//! invariants. This crate enforces them mechanically, with `file:line`
//! diagnostics and per-site justified suppressions:
//!
//! | rule | contract |
//! |------|----------|
//! | `nondeterminism-in-record-path` | no `HashMap`/`HashSet`, ambient clocks, or ambient RNG in the modules that produce `kset-sweep` records, digests, and scenario lines |
//! | `observer-bypass` | engine driving outside `engine.rs`/`sync.rs` must not call the `step`/`execute_round` internals that skip the `_observed` unified event stream |
//! | `unchecked-capacity` | panicking `ProcessSet`/`WideSet`/`Simulation`/`LockStep` constructors are flagged where `try_*` + `CapacityError` forms exist |
//! | `panic-in-library` | `unwrap()`/`expect()`/`panic!` in non-test library code needs a justification allow |
//! | `shim-drift` | `crates/shims` public items must stay within the checked-in upstream-API-subset manifest |
//!
//! Suppression grammar (see [`scan`]):
//!
//! ```text
//! // kset-lint: allow(<rule>): <non-empty justification>
//! ```
//!
//! The pass runs three ways: the `kset-lint` binary (CI job), the in-process
//! workspace scan in `tests/workspace_scan.rs` (so `cargo test` is the
//! gate), and fixture-driven self-tests over `tests/fixtures/`.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod shim_manifest;
pub mod workspace;

use std::fs;
use std::path::{Path, PathBuf};

use report::Report;
use rules::{Diagnostic, Status};
use scan::ScannedFile;
use workspace::WorkspaceError;

/// Location of the shim manifest, workspace-relative.
pub const SHIM_MANIFEST_PATH: &str = "crates/lint/shim-manifest.txt";

/// Errors from a full workspace pass.
#[derive(Debug)]
pub enum LintError {
    /// Workspace discovery or file IO failed.
    Workspace(WorkspaceError),
    /// A source file could not be read.
    Read(PathBuf, std::io::Error),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Workspace(e) => write!(f, "workspace discovery: {e}"),
            LintError::Read(p, e) => write!(f, "reading {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

impl From<WorkspaceError> for LintError {
    fn from(e: WorkspaceError) -> Self {
        LintError::Workspace(e)
    }
}

/// Runs the full pass over the workspace rooted at `root`.
pub fn run_workspace(root: &Path) -> Result<Report, LintError> {
    let members = workspace::discover_members(root)?;
    let sources = workspace::discover_sources(root, &members)?;

    let mut report = Report::default();
    for file in &sources {
        let abs = root.join(&file.rel_path);
        let text = fs::read_to_string(&abs).map_err(|e| LintError::Read(abs.clone(), e))?;
        let mut scanned = ScannedFile::scan(&file.rel_path, text);
        report
            .diagnostics
            .extend(rules::check_file(file, &mut scanned));
        report.files_scanned += 1;
    }

    // shim-drift: workspace-level manifest comparison.
    let surface = shim_manifest::extract_shim_surface(root, &members)?;
    let manifest_path = root.join(SHIM_MANIFEST_PATH);
    match fs::read_to_string(&manifest_path) {
        Ok(manifest) => report
            .diagnostics
            .extend(shim_manifest::check_drift(&manifest, &surface)),
        Err(_) => report.diagnostics.push(Diagnostic {
            rule: rules::SHIM_DRIFT,
            file: SHIM_MANIFEST_PATH.to_string(),
            line: 1,
            message: "shim manifest missing; generate it with `kset-lint --write-shim-manifest`"
                .to_string(),
            status: Status::Violation,
            justification: None,
        }),
    }

    report.finish();
    Ok(report)
}

/// Regenerates the shim manifest from the live shim surface; returns the
/// rendered text (the binary writes it to [`SHIM_MANIFEST_PATH`]).
pub fn regenerate_shim_manifest(root: &Path) -> Result<String, LintError> {
    let members = workspace::discover_members(root)?;
    let surface = shim_manifest::extract_shim_surface(root, &members)?;
    Ok(shim_manifest::render_manifest(&surface))
}
