//! Workspace discovery: reads the root `Cargo.toml` members list and walks
//! each member's `src/` tree, classifying files as library or binary targets.
//!
//! Test, bench, and example targets are *not* scanned: by workspace policy
//! the contracts the rules enforce (determinism in record paths, observed
//! engine driving, capacity-checked construction, no panics) apply to
//! shipping library/binary code; tests exercise panicking forms on purpose.
//! `#[cfg(test)]` items inside library files are excluded by the scanner.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which compilation target a source file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Part of the crate's library (`src/**`, excluding `src/bin/`).
    Lib,
    /// A binary entry point (`src/bin/**` or a `[[bin]]`-style `main.rs`).
    Bin,
}

/// One source file in scope for the pass.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path.
    pub rel_path: String,
    /// Target classification.
    pub kind: TargetKind,
    /// Package name of the owning member crate.
    pub crate_name: String,
}

/// A discovered workspace member.
#[derive(Debug, Clone)]
pub struct Member {
    /// Workspace-relative member directory (e.g. `crates/sim`).
    pub rel_dir: String,
    /// Package name from the member's `Cargo.toml`.
    pub name: String,
}

/// Errors from workspace discovery.
#[derive(Debug)]
pub enum WorkspaceError {
    /// Reading a file or directory failed.
    Io(PathBuf, io::Error),
    /// The root manifest has no parsable `members = [...]` list.
    NoMembers(PathBuf),
    /// A member manifest has no `name = "..."` entry.
    NoPackageName(PathBuf),
}

impl std::fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkspaceError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            WorkspaceError::NoMembers(p) => {
                write!(f, "{}: no `members = [...]` list found", p.display())
            }
            WorkspaceError::NoPackageName(p) => {
                write!(f, "{}: no `name = \"...\"` found", p.display())
            }
        }
    }
}

impl std::error::Error for WorkspaceError {}

/// Parses the `members = [...]` list out of the root manifest.
///
/// This is a deliberately small hand parser (no TOML dependency): it finds
/// the first `members` key, takes the bracketed list after `=`, and collects
/// the double-quoted entries. The workspace manifest is under our control,
/// and the conformance test (`tests/workspace_scan.rs`) fails loudly if the
/// shape ever drifts past what this reads.
pub fn parse_members(manifest: &str) -> Option<Vec<String>> {
    let key = manifest.find("members")?;
    let open = manifest[key..].find('[')? + key;
    let close = manifest[open..].find(']')? + open;
    let body = &manifest[open + 1..close];
    let mut members = Vec::new();
    let mut rest = body;
    while let Some(q1) = rest.find('"') {
        let after = &rest[q1 + 1..];
        let q2 = after.find('"')?;
        members.push(after[..q2].to_string());
        rest = &after[q2 + 1..];
    }
    Some(members)
}

/// Extracts the `[package] name` from a member manifest (first `name = "…"`
/// occurrence; `[package]` is the leading table in every member).
pub fn parse_package_name(manifest: &str) -> Option<String> {
    let key = manifest.find("name")?;
    let eq = manifest[key..].find('=')? + key;
    let q1 = manifest[eq..].find('"')? + eq;
    let q2 = manifest[q1 + 1..].find('"')? + q1 + 1;
    Some(manifest[q1 + 1..q2].to_string())
}

/// Discovers the members of the workspace rooted at `root`.
pub fn discover_members(root: &Path) -> Result<Vec<Member>, WorkspaceError> {
    let manifest_path = root.join("Cargo.toml");
    let manifest = fs::read_to_string(&manifest_path)
        .map_err(|e| WorkspaceError::Io(manifest_path.clone(), e))?;
    let member_dirs = parse_members(&manifest).ok_or(WorkspaceError::NoMembers(manifest_path))?;
    let mut members = Vec::new();
    for rel_dir in member_dirs {
        let mpath = root.join(&rel_dir).join("Cargo.toml");
        let mtext = fs::read_to_string(&mpath).map_err(|e| WorkspaceError::Io(mpath.clone(), e))?;
        let name = parse_package_name(&mtext).ok_or(WorkspaceError::NoPackageName(mpath))?;
        members.push(Member { rel_dir, name });
    }
    Ok(members)
}

/// Lists every `.rs` file under the members' `src/` trees, classified.
pub fn discover_sources(
    root: &Path,
    members: &[Member],
) -> Result<Vec<SourceFile>, WorkspaceError> {
    let mut files = Vec::new();
    for member in members {
        let src_dir = root.join(&member.rel_dir).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut found = Vec::new();
        walk_rs_files(&src_dir, &mut found)?;
        for path in found {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let kind = if rel.contains("/src/bin/") {
                TargetKind::Bin
            } else {
                TargetKind::Lib
            };
            files.push(SourceFile {
                rel_path: rel,
                kind,
                crate_name: member.name.clone(),
            });
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), WorkspaceError> {
    let entries = fs::read_dir(dir).map_err(|e| WorkspaceError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| WorkspaceError::Io(dir.to_path_buf(), e))?;
        paths.push(entry.path());
    }
    // Deterministic order: the report (and the machine-readable summary CI
    // archives) must not depend on readdir order.
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_members_reads_quoted_list() {
        let m = parse_members("[workspace]\nmembers = [\n  \"crates/a\",\n  \"crates/b\",\n]\n");
        assert_eq!(
            m,
            Some(vec!["crates/a".to_string(), "crates/b".to_string()])
        );
    }

    #[test]
    fn parse_package_name_reads_first_name() {
        let n = parse_package_name("[package]\nname = \"kset-sim\"\n[[bin]]\nname = \"other\"\n");
        assert_eq!(n, Some("kset-sim".to_string()));
    }
}
