//! The `shim-drift` rule: `crates/shims/*` are offline stand-ins for real
//! crates (rand, criterion, proptest), kept to an **upstream-API subset** so
//! a future swap to the real crates is a manifest-local change. This module
//! extracts each shim's public surface from source and compares it against
//! the checked-in manifest (`crates/lint/shim-manifest.txt`).
//!
//! Any new public item must be added to the manifest deliberately (via
//! `kset-lint --write-shim-manifest`), which makes "the shim grew API the
//! upstream crate does not have" a reviewable diff instead of silent drift.

use std::fs;
use std::path::Path;

use crate::lexer;
use crate::rules::{Diagnostic, Status, SHIM_DRIFT};
use crate::workspace::{Member, WorkspaceError};

/// One public item of a shim crate: `(crate, kind, path)` — e.g.
/// `("rand", "struct", "rngs::StdRng")`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShimItem {
    pub krate: String,
    pub kind: String,
    pub path: String,
    /// 1-based line of the declaration, for diagnostics.
    pub line: usize,
}

impl ShimItem {
    /// Manifest line rendering: `crate<TAB>kind<TAB>path`.
    pub fn render(&self) -> String {
        format!("{}\t{}\t{}", self.krate, self.kind, self.path)
    }
}

const ITEM_KINDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "use", "const", "static", "type",
];

/// Extracts the public items of one shim source file.
///
/// Walks the masked text tracking `mod` nesting by brace depth; records
/// every `pub <kind> <name>` at its module path, plus `#[macro_export]
/// macro_rules!` macros (exported at crate root by definition). `pub(crate)`
/// and friends are not part of the public surface and are skipped.
pub fn extract_pub_items(krate: &str, source: &str) -> Vec<ShimItem> {
    let lexed = lexer::lex(source);
    let masked = &lexed.masked;
    let bytes = masked.as_bytes();
    let line_starts = crate::scan::line_starts(source);
    let line_of = |off: usize| match line_starts.binary_search(&off) {
        Ok(i) => i + 1,
        Err(i) => i,
    };

    // (depth_at_open, module_name) stack; depth counts `{` nesting.
    let mut mod_stack: Vec<(i32, String)> = Vec::new();
    let mut depth: i32 = 0;
    let mut items = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth -= 1;
                while mod_stack.last().is_some_and(|&(d, _)| d > depth) {
                    mod_stack.pop();
                }
                i += 1;
            }
            b'p' if masked[i..].starts_with("pub")
                && (i == 0 || !lexer::is_ident_byte(bytes[i - 1]))
                && !lexer::is_ident_byte(*bytes.get(i + 3).unwrap_or(&b' ')) =>
            {
                let at = i;
                i += 3;
                // `pub(crate)` / `pub(super)` / `pub(in …)`: restricted, skip.
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'(') {
                    continue;
                }
                let (kind, name, consumed) = match parse_pub_item(masked, j) {
                    Some(t) => t,
                    None => continue,
                };
                let path = mod_stack
                    .iter()
                    .map(|(_, m)| m.as_str())
                    .chain(std::iter::once(name.as_str()))
                    .collect::<Vec<_>>()
                    .join("::");
                if kind == "mod" {
                    // An inline `pub mod x {` contributes a path segment; the
                    // brace is handled by the main loop when reached.
                    mod_stack.push((depth + 1, name.clone()));
                }
                items.push(ShimItem {
                    krate: krate.to_string(),
                    kind: kind.to_string(),
                    path,
                    line: line_of(at),
                });
                i = consumed;
            }
            b'm' if masked[i..].starts_with("macro_rules!")
                && (i == 0 || !lexer::is_ident_byte(bytes[i - 1])) =>
            {
                // Only exported macros are public API: `#[macro_export]`
                // must directly precede `macro_rules!` (whitespace only in
                // between, so an earlier macro's attribute cannot leak in).
                let window_start = i.saturating_sub(200);
                let exported = masked[window_start..i]
                    .rfind("#[macro_export]")
                    .is_some_and(|p| {
                        masked[window_start + p + "#[macro_export]".len()..i]
                            .chars()
                            .all(char::is_whitespace)
                    });
                let j = i + "macro_rules!".len();
                if let Some((name, consumed)) = parse_ident_after_ws(masked, j) {
                    if exported {
                        items.push(ShimItem {
                            krate: krate.to_string(),
                            kind: "macro".to_string(),
                            path: name,
                            line: line_of(i),
                        });
                    }
                    i = consumed;
                } else {
                    i = j;
                }
            }
            _ => i += 1,
        }
    }
    items
}

/// Parses `<kind> <name>` after a `pub` keyword at masked offset `j`.
/// Returns `(kind, name, next_offset)`.
fn parse_pub_item(masked: &str, j: usize) -> Option<(&'static str, String, usize)> {
    for &kind in ITEM_KINDS {
        if masked[j..].starts_with(kind)
            && !lexer::is_ident_byte(*masked.as_bytes().get(j + kind.len()).unwrap_or(&b' '))
        {
            let mut k = j + kind.len();
            // `pub use a::b::{c, d}` — record the whole use path compactly.
            if kind == "use" {
                let end = masked[k..].find(';').map(|p| k + p)?;
                let path: String = masked[k..end]
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join("");
                return Some(("use", path, end + 1));
            }
            // `pub unsafe fn` / `pub const fn`: `const`/`static` matched
            // first for actual consts; `pub const fn` parses as kind=const
            // name=fn — fix by retrying when the "name" is a keyword.
            let (name, next) = parse_ident_after_ws(masked, k)?;
            if kind == "const" && name == "fn" {
                let (real, next2) = parse_ident_after_ws(masked, next)?;
                return Some(("fn", real, next2));
            }
            if name == "r" {
                // raw identifier `r#name` was split by the lexer mask; rare
                // and not used by the shims — treat as opaque.
                return None;
            }
            k = next;
            return Some((kind, name, k));
        }
    }
    // `pub unsafe fn`, `pub async fn`, `pub extern …` — skip the qualifier
    // and retry once.
    for qual in ["unsafe", "async"] {
        if masked[j..].starts_with(qual) {
            let mut k = j + qual.len();
            while masked
                .as_bytes()
                .get(k)
                .is_some_and(u8::is_ascii_whitespace)
            {
                k += 1;
            }
            return parse_pub_item(masked, k);
        }
    }
    None
}

/// Parses an identifier after optional whitespace; returns `(ident, next)`.
fn parse_ident_after_ws(masked: &str, mut k: usize) -> Option<(String, usize)> {
    let bytes = masked.as_bytes();
    while k < bytes.len() && bytes[k].is_ascii_whitespace() {
        k += 1;
    }
    let start = k;
    while k < bytes.len() && lexer::is_ident_byte(bytes[k]) {
        k += 1;
    }
    (k > start).then(|| (masked[start..k].to_string(), k))
}

/// Extracts the public surface of every shim member (`crates/shims/*`).
pub fn extract_shim_surface(
    root: &Path,
    members: &[Member],
) -> Result<Vec<ShimItem>, WorkspaceError> {
    let mut items = Vec::new();
    for member in members {
        if !member.rel_dir.starts_with("crates/shims/") {
            continue;
        }
        let src_dir = root.join(&member.rel_dir).join("src");
        let mut files = Vec::new();
        collect_rs(&src_dir, &mut files)?;
        for path in files {
            let text =
                fs::read_to_string(&path).map_err(|e| WorkspaceError::Io(path.clone(), e))?;
            items.extend(extract_pub_items(&member.name, &text));
        }
    }
    items.sort();
    Ok(items)
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), WorkspaceError> {
    let entries = fs::read_dir(dir).map_err(|e| WorkspaceError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    for e in entries {
        paths.push(
            e.map_err(|e| WorkspaceError::Io(dir.to_path_buf(), e))?
                .path(),
        );
    }
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Renders the manifest text for a surface (stable order, trailing newline).
pub fn render_manifest(items: &[ShimItem]) -> String {
    let mut lines: Vec<String> = items.iter().map(ShimItem::render).collect();
    lines.sort();
    lines.dedup();
    let mut out = String::from(
        "# kset-lint shim manifest v1\n\
         # Upstream-API-subset ledger for crates/shims/*: every public item of a shim\n\
         # must appear here. Regenerate with `kset-lint --write-shim-manifest` and\n\
         # review the diff against the real crate's API before committing.\n",
    );
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Compares the live surface against the checked-in manifest.
pub fn check_drift(manifest_text: &str, surface: &[ShimItem]) -> Vec<Diagnostic> {
    let manifest: std::collections::BTreeSet<&str> = manifest_text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let live: std::collections::BTreeSet<String> = surface.iter().map(ShimItem::render).collect();

    let mut diags = Vec::new();
    for item in surface {
        if !manifest.contains(item.render().as_str()) {
            diags.push(Diagnostic {
                rule: SHIM_DRIFT,
                file: format!("crates/shims/{}", item.krate),
                line: item.line,
                message: format!(
                    "public item `{} {}` is not in shim-manifest.txt; if the upstream crate has \
                     it, regenerate the manifest (`kset-lint --write-shim-manifest`), otherwise \
                     the shim is growing API a real-crate swap would break",
                    item.kind, item.path
                ),
                status: Status::Violation,
                justification: None,
            });
        }
    }
    for entry in &manifest {
        if !live.contains(*entry) {
            diags.push(Diagnostic {
                rule: SHIM_DRIFT,
                file: "crates/lint/shim-manifest.txt".to_string(),
                line: 1,
                message: format!(
                    "stale manifest entry `{entry}`: no such public item in the shims anymore; \
                     regenerate the manifest"
                ),
                status: Status::Violation,
                justification: None,
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_nested_mod_items() {
        let src = "pub mod rngs {\n    pub struct StdRng { seed: u64 }\n}\npub fn top() {}\n";
        let items = extract_pub_items("rand", src);
        let paths: Vec<String> = items.iter().map(|i| i.render()).collect();
        assert!(paths.contains(&"rand\tmod\trngs".to_string()), "{paths:?}");
        assert!(
            paths.contains(&"rand\tstruct\trngs::StdRng".to_string()),
            "{paths:?}"
        );
        assert!(paths.contains(&"rand\tfn\ttop".to_string()), "{paths:?}");
    }

    #[test]
    fn pub_crate_is_not_public_surface() {
        let items = extract_pub_items("rand", "pub(crate) fn hidden() {}\npub fn shown() {}\n");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].path, "shown");
    }

    #[test]
    fn exported_macro_recorded_unexported_skipped() {
        let src = "#[macro_export]\nmacro_rules! visible { () => {}; }\nmacro_rules! internal { () => {}; }\n";
        let items = extract_pub_items("proptest", src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].kind, "macro");
        assert_eq!(items[0].path, "visible");
    }

    #[test]
    fn drift_and_stale_are_both_reported() {
        let surface = extract_pub_items("rand", "pub fn a() {}\npub fn b() {}\n");
        let manifest = "# header\nrand\tfn\ta\nrand\tfn\tgone\n";
        let diags = check_drift(manifest, &surface);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("`fn b`")));
        assert!(diags.iter().any(|d| d.message.contains("stale")));
    }

    #[test]
    fn round_trip_is_clean() {
        let surface = extract_pub_items(
            "rand",
            "pub fn a() {}\npub mod m { pub const C: u8 = 0; }\n",
        );
        let manifest = render_manifest(&surface);
        assert!(check_drift(&manifest, &surface).is_empty());
    }

    #[test]
    fn pub_const_fn_parses_as_fn() {
        let items = extract_pub_items(
            "rand",
            "pub const fn cf() -> u8 { 0 }\npub const K: u8 = 1;\n",
        );
        let rendered: Vec<String> = items.iter().map(|i| i.render()).collect();
        assert!(
            rendered.contains(&"rand\tfn\tcf".to_string()),
            "{rendered:?}"
        );
        assert!(
            rendered.contains(&"rand\tconst\tK".to_string()),
            "{rendered:?}"
        );
    }
}
