//! The in-process workspace pass: `cargo test -q` fails if any non-allowed
//! diagnostic exists anywhere in the workspace, so CI cannot go green with a
//! lint violation even before the dedicated `kset-lint` job runs.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = kset_lint::run_workspace(&root).expect("workspace discovery must succeed");
    assert!(
        report.violation_count() == 0,
        "kset-lint found violations:\n{}",
        report.render_human(false)
    );
    // Sanity: the pass actually covered the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn shim_manifest_is_in_sync() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let regenerated = kset_lint::regenerate_shim_manifest(&root).expect("shim surface extraction");
    let on_disk = std::fs::read_to_string(root.join(kset_lint::SHIM_MANIFEST_PATH))
        .expect("checked-in shim manifest");
    assert_eq!(
        regenerated, on_disk,
        "shim manifest drifted; run `cargo run -p kset-lint -- --write-shim-manifest`"
    );
}
