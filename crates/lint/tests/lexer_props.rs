//! Property-style tests for the byte-class lexer: generated Rust-ish token
//! streams (nested block comments, raw strings of varying hash depth, char
//! literals vs lifetimes, raw identifiers) assembled from fragments whose
//! classification is known by construction. No external proptest dependency:
//! a seeded LCG drives fragment selection deterministically.

use kset_lint::lexer::{lex, ByteClass};

/// Deterministic LCG (Numerical Recipes constants) — reproducible streams.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One generated fragment: source text plus the sentinel word it carries and
/// whether that sentinel must survive into the masked text (code) or vanish
/// (comment / string / char bytes).
struct Fragment {
    text: String,
    sentinel: String,
    survives: bool,
}

fn fragment(kind: usize, i: usize, rng: &mut Lcg) -> Fragment {
    match kind {
        // Plain code identifier.
        0 => Fragment {
            text: format!("let zcode{i} = {i};"),
            sentinel: format!("zcode{i}"),
            survives: true,
        },
        // Line comment (sometimes doc-style).
        1 => {
            let slashes = if rng.pick(2) == 0 { "//" } else { "///" };
            Fragment {
                text: format!("{slashes} zcomm{i} unwrap() HashMap\n"),
                sentinel: format!("zcomm{i}"),
                survives: false,
            }
        }
        // Nested block comment.
        2 => Fragment {
            text: format!("/* zblk{i} /* inner{i} */ tail{i} */"),
            sentinel: format!("zblk{i}"),
            survives: false,
        },
        // Plain string with an escaped quote.
        3 => Fragment {
            text: format!("let s{i} = \"zstr{i} \\\"esc\\\" end\";"),
            sentinel: format!("zstr{i}"),
            survives: false,
        },
        // Raw string with 0–3 hashes; with ≥ 2 hashes the body embeds a
        // quote-hash sequence one short of the terminator.
        4 => {
            let hashes = rng.pick(4);
            let h = "#".repeat(hashes);
            let spice = if hashes >= 2 { "\"# inside" } else { "plain" };
            Fragment {
                text: format!("let r{i} = r{h}\"zraw{i} {spice}\"{h};"),
                sentinel: format!("zraw{i}"),
                survives: false,
            }
        }
        // Byte / byte-raw strings.
        5 => {
            let (open, close) = if rng.pick(2) == 0 {
                (String::from("b\""), String::from("\""))
            } else {
                (String::from("br#\""), String::from("\"#"))
            };
            Fragment {
                text: format!("let b{i} = {open}zbyte{i}{close};"),
                sentinel: format!("zbyte{i}"),
                survives: false,
            }
        }
        // Char literals, escaped and not.
        6 => {
            let lit = match rng.pick(3) {
                0 => "'q'",
                1 => "'\\''",
                _ => "'\\u{1F600}'",
            };
            Fragment {
                text: format!("let c{i} = {lit};"),
                sentinel: String::from("q"),
                // The literal body is Char-class; don't sentinel-check
                // single letters (they collide with other fragments) —
                // handled by the class assertions instead.
                survives: true,
            }
        }
        // Lifetimes and labels are code, not char literals.
        7 => Fragment {
            text: format!("fn zlt{i}<'a>(x: &'a str) {{ 'outer{i}: loop {{ break 'outer{i}; }} }}"),
            sentinel: format!("zlt{i}"),
            survives: true,
        },
        // Raw identifier: `r#` prefix must not open a raw string.
        _ => Fragment {
            text: format!("let r#zraw_id{i} = {i};"),
            sentinel: format!("zraw_id{i}"),
            survives: true,
        },
    }
}

#[test]
fn generated_token_streams_classify_correctly() {
    for seed in 0..50u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let count = 8 + rng.pick(16);
        let mut src = String::new();
        let mut frags = Vec::new();
        for i in 0..count {
            let f = fragment(rng.pick(9), i, &mut rng);
            src.push_str(&f.text);
            src.push(if rng.pick(4) == 0 { '\n' } else { ' ' });
            frags.push(f);
        }

        let lexed = lex(&src);

        // Structural invariants.
        assert_eq!(
            lexed.classes.len(),
            src.len(),
            "seed {seed}: class per byte"
        );
        assert_eq!(
            lexed.masked.len(),
            src.len(),
            "seed {seed}: ASCII masking is length-preserving"
        );
        assert_eq!(
            lexed.masked.matches('\n').count(),
            src.matches('\n').count(),
            "seed {seed}: newlines preserved for line arithmetic"
        );

        // Sentinels survive or vanish by construction.
        for f in &frags {
            if f.sentinel.len() < 2 {
                continue;
            }
            assert_eq!(
                lexed.masked.contains(&f.sentinel),
                f.survives,
                "seed {seed}: fragment {:?} (sentinel {:?}, survives={})\nmasked:\n{}",
                f.text,
                f.sentinel,
                f.survives,
                lexed.masked
            );
        }

        // Masking is a fixpoint: the masked text contains no comment or
        // literal bytes, so lexing it again classifies everything as Code.
        let relexed = lex(&lexed.masked);
        assert!(
            relexed.classes.iter().all(|&c| c == ByteClass::Code),
            "seed {seed}: masked text must be pure code\nmasked:\n{}",
            lexed.masked
        );
    }
}

#[test]
fn adjacent_fragments_do_not_bleed() {
    // A comment directly followed by code, a string directly followed by a
    // comment, etc. — classification must flip at the exact boundary.
    let src = "a/*c*/x\"s\"d//e\nf";
    let lexed = lex(src);
    let classes: Vec<ByteClass> = lexed.classes.clone();
    let expect = [
        ByteClass::Code,    // a
        ByteClass::Comment, // /
        ByteClass::Comment, // *
        ByteClass::Comment, // c
        ByteClass::Comment, // *
        ByteClass::Comment, // /
        ByteClass::Code,    // x (not `b`: that would prefix a byte string)
        ByteClass::Str,     // "
        ByteClass::Str,     // s
        ByteClass::Str,     // "
        ByteClass::Code,    // d
        ByteClass::Comment, // /
        ByteClass::Comment, // /
        ByteClass::Comment, // e
        ByteClass::Code,    // \n (line comments end before the newline)
        ByteClass::Code,    // f
    ];
    assert_eq!(classes, expect);
}
