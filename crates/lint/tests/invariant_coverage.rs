//! Representation-invariant coverage: every mutator of the core data
//! structures in `crates/sim/src/ids.rs` must re-check its structure's
//! debug invariant before returning. The check is textual (over the
//! comment-stripped masked source), so removing a `debug_check_*` call —
//! or adding a new mutator without one — fails this test, not just a code
//! review.

use kset_lint::lexer::lex;
use std::path::Path;

/// Extracts the body of `fn <name>` from masked source: the text between
/// the brace that opens the function and its matching close brace.
fn fn_body<'a>(masked: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("fn {name}");
    let mut from = 0;
    while let Some(pos) = masked[from..].find(&needle) {
        let at = from + pos;
        let after = at + needle.len();
        // Reject identifiers that merely start with `name` (fn foo vs foo_bar).
        let boundary = !masked[after..]
            .bytes()
            .next()
            .is_some_and(kset_lint::lexer::is_ident_byte);
        if !boundary {
            from = after;
            continue;
        }
        let open_rel = masked[after..].find('{')?;
        let open = after + open_rel;
        let mut depth = 0usize;
        for (i, b) in masked[open..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&masked[open..open + i + 1]);
                    }
                }
                _ => {}
            }
        }
        return None;
    }
    None
}

fn masked_ids_source() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("sim")
        .join("src")
        .join("ids.rs");
    let src = std::fs::read_to_string(path).expect("crates/sim/src/ids.rs");
    lex(&src).masked
}

/// The masked source from `marker` onwards — scopes a fn-name search to one
/// `impl` block when the name (insert, remove, …) recurs across types.
fn section<'a>(masked: &'a str, marker: &str) -> &'a str {
    let at = masked
        .find(marker)
        .unwrap_or_else(|| panic!("marker {marker:?} not found in ids.rs"));
    &masked[at..]
}

#[test]
fn sender_map_mutators_check_density() {
    let masked = masked_ids_source();
    let masked = section(&masked, "impl<M> SenderMap<M>");
    for mutator in ["insert", "remove", "clear", "entry_or_insert_with"] {
        let body = fn_body(masked, mutator)
            .unwrap_or_else(|| panic!("SenderMap mutator fn {mutator} not found"));
        assert!(
            body.contains("debug_check_density"),
            "SenderMap::{mutator} must re-check the density invariant before returning"
        );
    }
}

#[test]
fn limb_planes_mutators_check_layout() {
    let masked = masked_ids_source();
    let masked = section(&masked, "impl<const W: usize> LimbPlanes<W>");
    for mutator in [
        "filled",
        "set_lane",
        "lane_remove",
        "union_with",
        "intersect_with",
        "andnot_with",
    ] {
        let body = fn_body(masked, mutator)
            .unwrap_or_else(|| panic!("LimbPlanes mutator fn {mutator} not found"));
        assert!(
            body.contains("debug_check_layout"),
            "LimbPlanes::{mutator} must re-check the W × lanes layout invariant before returning"
        );
    }
}

#[test]
fn wide_set_bounded_constructors_check_confinement() {
    let masked = masked_ids_source();
    let try_full = fn_body(&masked, "try_full").expect("WideSet::try_full");
    assert!(
        try_full.contains("debug_assert"),
        "WideSet::try_full must debug-assert that exactly the first n bits are set"
    );
    let complement = fn_body(&masked, "complement").expect("WideSet::complement");
    assert!(
        complement.contains("debug_assert"),
        "WideSet::complement must debug-assert confinement to the first n ids"
    );
}
