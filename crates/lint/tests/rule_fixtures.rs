//! Fixture-driven self-tests: every shipped rule must fire at the expected
//! `file:line`, must NOT fire on the same tokens inside strings, comments,
//! or `#[cfg(test)]` code, and must be suppressible by a justified
//! `// kset-lint: allow(<rule>): …` comment.

use kset_lint::rules::{self, check_file, Diagnostic, Status};
use kset_lint::scan::ScannedFile;
use kset_lint::shim_manifest::{check_drift, extract_pub_items, render_manifest};
use kset_lint::workspace::{SourceFile, TargetKind};

fn run_fixture(rel_path: &str, kind: TargetKind, source: &str) -> Vec<Diagnostic> {
    let file = SourceFile {
        rel_path: rel_path.to_string(),
        kind,
        crate_name: "fixture".to_string(),
    };
    let mut scanned = ScannedFile::scan(rel_path, source.to_string());
    check_file(&file, &mut scanned)
}

/// `(rule, line, status)` triples, sorted, for exact-set comparison.
fn shape(diags: &[Diagnostic]) -> Vec<(&'static str, usize, Status)> {
    let mut v: Vec<_> = diags.iter().map(|d| (d.rule, d.line, d.status)).collect();
    v.sort();
    v
}

#[test]
fn nondeterminism_fires_at_expected_lines() {
    let diags = run_fixture(
        "crates/sim/src/sweep/fixture.rs",
        TargetKind::Lib,
        include_str!("fixtures/nondeterminism.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![
            (rules::NONDETERMINISM_IN_RECORD_PATH, 3, Status::Violation),
            (rules::NONDETERMINISM_IN_RECORD_PATH, 8, Status::Violation),
            (rules::NONDETERMINISM_IN_RECORD_PATH, 9, Status::Violation),
            (rules::NONDETERMINISM_IN_RECORD_PATH, 13, Status::Allowed),
        ],
        "expected HashMap hits at 3/8/9, allowed Instant at 13, nothing from \
         comments, strings, or the test module: {diags:#?}"
    );
    let allowed = diags.iter().find(|d| d.status == Status::Allowed).unwrap();
    assert_eq!(
        allowed.justification.as_deref(),
        Some("fixture proves suppression works")
    );
}

#[test]
fn nondeterminism_is_scoped_to_record_paths() {
    // The same source outside a record path produces no diagnostics at all
    // (the unused allow on line 12 still flags: the rule cannot fire there).
    let diags = run_fixture(
        "crates/graph/src/fixture.rs",
        TargetKind::Lib,
        include_str!("fixtures/nondeterminism.rs"),
    );
    assert!(
        diags
            .iter()
            .all(|d| d.rule == rules::UNUSED_ALLOW || d.rule == rules::PANIC_IN_LIBRARY),
        "off the record path only allow-hygiene may fire: {diags:#?}"
    );
}

#[test]
fn nondeterminism_scope_splits_the_fleet_module() {
    // The fleet's record path (wire grammar, incremental merge) is in
    // scope: an ambient clock there corrupts bytes. The scheduling shell
    // (coordinator.rs and friends) is exactly where lease deadlines live,
    // so the same `Instant` is exempt there.
    let source = "fn deadline() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let in_scope = run_fixture("crates/sim/src/fleet/proto.rs", TargetKind::Lib, source);
    assert_eq!(
        shape(&in_scope),
        vec![
            (rules::NONDETERMINISM_IN_RECORD_PATH, 1, Status::Violation),
            (rules::NONDETERMINISM_IN_RECORD_PATH, 2, Status::Violation),
        ],
        "{in_scope:#?}"
    );
    let merge_scope = run_fixture("crates/sim/src/fleet/merge.rs", TargetKind::Lib, source);
    assert!(
        !merge_scope.is_empty(),
        "merge.rs is on the record path too: {merge_scope:#?}"
    );
    let exempt = run_fixture(
        "crates/sim/src/fleet/coordinator.rs",
        TargetKind::Lib,
        source,
    );
    assert!(
        exempt
            .iter()
            .all(|d| d.rule != rules::NONDETERMINISM_IN_RECORD_PATH),
        "lease deadlines may read the clock: {exempt:#?}"
    );
}

#[test]
fn observer_bypass_fires_at_expected_lines() {
    let diags = run_fixture(
        "crates/sim/src/fixture.rs",
        TargetKind::Lib,
        include_str!("fixtures/observer_bypass.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![
            (rules::OBSERVER_BYPASS, 4, Status::Violation),
            (rules::OBSERVER_BYPASS, 5, Status::Violation),
            (rules::OBSERVER_BYPASS, 13, Status::Allowed),
            (rules::OBSERVER_BYPASS, 21, Status::Violation),
            (rules::OBSERVER_BYPASS, 22, Status::Violation),
            (rules::OBSERVER_BYPASS, 23, Status::Violation),
        ],
        "expected .step/.step_observed at 4/5, allowed .execute_round at 13, \
         the DES drivers .tick/.dispatch/.dispatch_observed at 21/22/23, and \
         nothing from the comment, the string, or the bare `step` ident: {diags:#?}"
    );
}

#[test]
fn observer_bypass_exempts_home_files() {
    for home in [
        "crates/sim/src/engine.rs",
        "crates/core/src/sync.rs",
        "crates/sim/src/des/engine.rs",
    ] {
        let diags = run_fixture(
            home,
            TargetKind::Lib,
            "pub fn f(sim: &mut Sim) {\n    sim.step(0);\n    sim.dispatch();\n}\n",
        );
        assert!(
            diags.iter().all(|d| d.rule != rules::OBSERVER_BYPASS),
            "{home} hosts the engine internals and must be exempt: {diags:#?}"
        );
    }
}

#[test]
fn unchecked_capacity_fires_at_expected_lines() {
    let diags = run_fixture(
        "crates/core/src/fixture.rs",
        TargetKind::Lib,
        include_str!("fixtures/unchecked_capacity.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![
            (rules::UNCHECKED_CAPACITY, 4, Status::Violation),
            (rules::UNCHECKED_CAPACITY, 16, Status::Allowed),
        ],
        "expected full() at 4, allowed singleton() at 16; try_full and the \
         comment/string/test occurrences must not fire: {diags:#?}"
    );
}

#[test]
fn panic_in_library_fires_at_expected_lines() {
    let diags = run_fixture(
        "crates/sim/src/fixture.rs",
        TargetKind::Lib,
        include_str!("fixtures/panic_in_library.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![
            (rules::PANIC_IN_LIBRARY, 4, Status::Violation),
            (rules::PANIC_IN_LIBRARY, 8, Status::Violation),
            (rules::PANIC_IN_LIBRARY, 16, Status::Allowed),
        ],
        "expected unwrap at 4, expect at 8, allowed panic! at 16; unwrap_or, \
         the comment, the string, and the #[test] fn must not fire: {diags:#?}"
    );
}

#[test]
fn panic_in_library_skips_binaries() {
    let diags = run_fixture(
        "crates/bench/src/bin/fixture.rs",
        TargetKind::Bin,
        "pub fn cli() {\n    std::env::args().next().unwrap();\n}\n",
    );
    assert!(
        diags.iter().all(|d| d.rule != rules::PANIC_IN_LIBRARY),
        "CLI entry shells may panic on startup errors: {diags:#?}"
    );
}

#[test]
fn shim_drift_detects_new_and_stale_items() {
    let source = include_str!("fixtures/shim_surface.rs");
    let surface = extract_pub_items("rand", source);
    let manifest = render_manifest(&surface);

    // In-sync manifest: silent.
    assert!(check_drift(&manifest, &surface).is_empty());

    // A new pub item not in the manifest: drift violation naming it.
    let mut grown = surface.clone();
    let extra = extract_pub_items("rand", "pub fn brand_new() {}\n");
    grown.extend(extra);
    let drift = check_drift(&manifest, &grown);
    assert_eq!(drift.len(), 1, "{drift:#?}");
    assert_eq!(drift[0].rule, rules::SHIM_DRIFT);
    assert_eq!(drift[0].status, Status::Violation);
    assert!(
        drift[0].message.contains("brand_new"),
        "{}",
        drift[0].message
    );

    // A removed pub item still listed: stale-entry violation.
    let shrunk: Vec<_> = surface
        .iter()
        .filter(|i| i.path != "seeded")
        .cloned()
        .collect();
    let stale = check_drift(&manifest, &shrunk);
    assert_eq!(stale.len(), 1, "{stale:#?}");
    assert_eq!(stale[0].rule, rules::SHIM_DRIFT);
    assert!(stale[0].message.contains("seeded"), "{}", stale[0].message);

    // pub(crate) items never reach the surface.
    assert!(surface.iter().all(|i| i.path != "internal_only"));
}

#[test]
fn malformed_allow_is_a_violation() {
    let diags = run_fixture(
        "crates/sim/src/fixture.rs",
        TargetKind::Lib,
        "// kset-lint: alow(panic-in-library): typo in the keyword\npub fn f() {}\n",
    );
    assert_eq!(
        shape(&diags),
        vec![(rules::MALFORMED_ALLOW, 1, Status::Violation)]
    );
}

#[test]
fn missing_justification_is_a_violation() {
    let diags = run_fixture(
        "crates/sim/src/fixture.rs",
        TargetKind::Lib,
        "pub fn f(x: Option<u32>) -> u32 {\n    // kset-lint: allow(panic-in-library):\n    x.unwrap()\n}\n",
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == rules::MALFORMED_ALLOW && d.status == Status::Violation),
        "an allow without a justification must not suppress: {diags:#?}"
    );
}

#[test]
fn unused_allow_is_a_violation() {
    let diags = run_fixture(
        "crates/sim/src/fixture.rs",
        TargetKind::Lib,
        "// kset-lint: allow(panic-in-library): nothing here panics\npub fn f() {}\n",
    );
    assert_eq!(
        shape(&diags),
        vec![(rules::UNUSED_ALLOW, 1, Status::Violation)]
    );
}

#[test]
fn unknown_rule_allow_is_a_violation() {
    let diags = run_fixture(
        "crates/sim/src/fixture.rs",
        TargetKind::Lib,
        "// kset-lint: allow(no-such-rule): misspelled rule name\npub fn f() {}\n",
    );
    assert_eq!(
        shape(&diags),
        vec![(rules::UNKNOWN_RULE_ALLOW, 1, Status::Violation)]
    );
}

#[test]
fn trailing_allow_targets_its_own_line() {
    let diags = run_fixture(
        "crates/sim/src/fixture.rs",
        TargetKind::Lib,
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // kset-lint: allow(panic-in-library): trailing form covers this line\n}\n",
    );
    assert_eq!(
        shape(&diags),
        vec![(rules::PANIC_IN_LIBRARY, 2, Status::Allowed)]
    );
}
