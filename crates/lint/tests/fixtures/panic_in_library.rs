//! Panic-in-library fixture: unwrap/expect/panic! in non-test library code.

pub fn boom(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn msg(x: Option<u32>) -> u32 {
    x.expect("present")
}

// .unwrap() in a comment must not fire.
pub const S: &str = ".unwrap() and panic! in a string";

pub fn never() {
    // kset-lint: allow(panic-in-library): fixture proves suppression works
    panic!("boom");
}

pub fn unwrap_or_is_fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[test]
fn in_test_fn() {
    Some(1).unwrap();
}
