//! Observer-bypass fixture: raw engine driving outside the home files.

pub fn drive(sim: &mut Sim) {
    sim.step(0);
    sim.step_observed(0, obs);
}

// `.step(` in a comment must not fire, nor in a string:
pub const S: &str = "sim.step(x)";

pub fn ok(sim: &mut Sim) {
    // kset-lint: allow(observer-bypass): fixture proves suppression works
    sim.execute_round();
}

pub fn not_a_call(step: usize) -> usize {
    step + 1
}

pub fn drive_des(engine: &mut DesEngine) {
    engine.tick(now, &mut actions);
    engine.dispatch();
    engine.dispatch_observed(&mut obs);
}
