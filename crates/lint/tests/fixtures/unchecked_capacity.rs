//! Unchecked-capacity fixture: panicking constructors where try_* exists.

pub fn build(n: usize) -> ProcessSet {
    ProcessSet::full(n)
}

// ProcessSet::full(n) in a comment must not fire.
pub const DOC: &str = "ProcessSet::singleton(p)";

pub fn fine(n: usize) -> Result<ProcessSet, CapacityError> {
    ProcessSet::try_full(n)
}

pub fn suppressed(p: ProcessId) -> ProcessSet {
    // kset-lint: allow(unchecked-capacity): fixture proves suppression works
    ProcessSet::singleton(p)
}

#[cfg(test)]
mod tests {
    pub fn in_tests() {
        let _ = ProcessSet::full(8);
    }
}
