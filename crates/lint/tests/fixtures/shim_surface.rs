//! Shim-drift fixture: a miniature shim crate surface.

pub struct StdRng {
    seed: u64,
}

pub fn seeded(seed: u64) -> StdRng {
    StdRng { seed }
}

pub mod rngs {
    pub const DEFAULT_SEED: u64 = 42;
}

pub(crate) fn internal_only() {}
