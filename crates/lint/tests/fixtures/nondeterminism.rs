//! Nondeterminism fixture: forbidden ambient types on a record path.

use std::collections::HashMap;

// HashSet in a comment must not fire.
pub const LABEL: &str = "SystemTime in a string must not fire";

pub fn build() -> HashMap<u32, u32> {
    HashMap::new()
}

// kset-lint: allow(nondeterminism-in-record-path): fixture proves suppression works
pub type Timer = std::time::Instant;

#[cfg(test)]
mod tests {
    pub fn in_tests() {
        let _ = std::time::SystemTime::now();
    }
}
