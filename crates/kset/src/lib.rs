//! # kset — "Easy Impossibility Proofs for k-Set Agreement", executable
//!
//! A full reproduction of Biely, Robinson & Schmid, *"Easy Impossibility
//! Proofs for k-Set Agreement in Message Passing Systems"* (OPODIS 2011),
//! as a Rust workspace. This facade crate re-exports the pieces:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `kset-sim` | deterministic message-passing simulator (DDS model + failure detectors), wide-bitset process sets (n ≤ 512), traces, indistinguishability, restriction `A\|D`, admissibility |
//! | [`graph`] | `kset-graph` | stage-one graphs, SCCs, source components (Lemmas 6/7), initial cliques |
//! | [`fd`] | `kset-fd` | Σk, Ωk, the partition detector (Σ′k, Ω′k), loneliness L, history checkers |
//! | [`core`] | `kset-core` | the k-set agreement task, T-independence, and all algorithms |
//! | [`impossibility`] | `kset-impossibility` | Theorem 1 checker, run pasting (Lemmas 11/12), borders for Theorems 2/8/10 |
//!
//! ## The paper in five runnable sentences
//!
//! ```
//! use kset::impossibility::{theorem2_impossible, theorem8_solvable,
//!     corollary13_solvable, theorem10_impossible};
//!
//! // Theorem 2: with synchronous processes but asynchronous communication,
//! // k-set agreement is impossible for k ≤ (n−1)/(n−f):
//! assert!(theorem2_impossible(5, 3, 2));
//!
//! // Theorem 8: with f INITIALLY DEAD processes it is solvable iff
//! // kn > (k+1)f — the two-stage protocol matches the border exactly:
//! assert!(theorem8_solvable(6, 3, 2));
//! assert!(!theorem8_solvable(6, 4, 2));
//!
//! // Theorem 10 / Corollary 13: the failure-detector pair (Σk, Ωk) solves
//! // k-set agreement iff k = 1 or k = n−1:
//! assert!(corollary13_solvable(6, 1));
//! assert!(theorem10_impossible(6, 3));
//! assert!(corollary13_solvable(6, 5));
//! ```
//!
//! See the `examples/` directory for end-to-end demonstrations, and the
//! `experiments` binary (`kset-bench`) for the regenerated border tables.
//!
//! ## Architecture: three execution substrates, compact process sets
//!
//! The workspace executes the paper's computing model through three
//! substrates, unified behind the [`sim::Engine`] trait:
//!
//! * **the step-level simulator** — [`sim::Simulation`] models the DDS
//!   step semantics (scheduler-chosen delivery, failure-detector queries,
//!   crash plans, traces). Paired with any [`sim::sched::Scheduler`] it
//!   becomes a [`sim::SimEngine`], whose engine *unit* is one process step.
//! * **the lock-step round executor** — [`core::sync::LockStep`] runs
//!   synchronous rounds with mid-round crash injection (the fully
//!   favourable DDS point, where FloodMin lives). Its engine unit is one
//!   full round.
//! * **the discrete-event engine** — [`sim::des::DesEngine`] advances a
//!   virtual clock through a deterministic min-heap of component
//!   wake-ups: messages carry real delivery times drawn from seeded
//!   per-link [`sim::des::Latency`] models, partial synchrony has an
//!   explicit GST, and crashes strike at timed instants. Sparse
//!   schedules skip idle time instead of burning steps.
//!
//! `Engine` exposes `advance`/`done`/`decisions`/`drive`, so runners
//! ([`core::runner`]), the experiment harness and the benches drive any
//! substrate through one API; the bounded explorer ([`sim::explore`])
//! additionally forks `Simulation` configurations directly for exhaustive
//! search.
//!
//! Above all three sits the **scenario layer**: a [`sim::Scenario`] (model
//! point, proposals, round-oriented crash description, schedule family,
//! detector choice) compiles to *any* substrate —
//! [`sim::Scenario::to_sim`] on the step side,
//! [`sim::Scenario::to_des`] on the discrete-event side (unit families
//! run under a unit→time embedding; the time-native
//! `ScheduleFamily::Timed` family compiles *only* here), and
//! [`core::scenario::to_lockstep`] (via [`core::scenario::RoundAdapter`])
//! on the round side — and
//! [`core::scenario::differential::check`] compares the three runs
//! ([`core::scenario::differential::DiffReport`]), turning the multi-substrate
//! architecture into a tested equivalence. See ARCHITECTURE.md for the
//! crash-description mapping.
//!
//! Every process set in the workspace — partition blocks, quorum/leader
//! samples, faulty/correct sets, delivery filters — is a
//! [`sim::ProcessSet`]: a `Copy`, fixed-capacity bitset
//! ([`sim::ProcessSet::CAPACITY`] = 512) whose set algebra is per-limb
//! word arithmetic. Per-sender round state (inboxes,
//! stage-2 tables, promise ledgers) uses the dense [`sim::SenderMap`].
//! Independent `(n, f, k, seed)` grid cells run through the parallel
//! [`sim::sweep`] module with deterministic per-cell seeds; parallel
//! results are bit-identical to a sequential pass.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// The deterministic message-passing simulator (`kset-sim`).
pub mod sim {
    pub use kset_sim::*;
}

/// The directed-graph substrate (`kset-graph`).
pub mod graph {
    pub use kset_graph::*;
}

/// The failure-detector framework (`kset-fd`).
pub mod fd {
    pub use kset_fd::*;
}

/// The agreement layer (`kset-core`).
pub mod core {
    pub use kset_core::*;
}

/// The impossibility engine (`kset-impossibility`).
pub mod impossibility {
    pub use kset_impossibility::*;
}
