//! [`DesEngine`]: the discrete-event engine over a [`Simulation`].
//!
//! This file is an *observer home*: it is the one place (beside
//! `engine.rs` and `kset-core`'s `sync.rs`) allowed to call the raw step
//! drivers — every process step still flows through
//! [`Simulation::step_observed`], so the unified event stream is emitted
//! here and nowhere rebuilt.

use super::component::{
    Action, Component, CrashSchedule, DetectorCadence, LinkFabric, ProcClock, UnitClock,
};
use super::{ComponentId, EventHeap, Latency, VirtualTime};
use crate::engine::{Engine, RunReport, Simulation, StopReason};
use crate::ids::{MsgId, ProcessId, ProcessSet};
use crate::observe::{
    CrashEvent, DecideEvent, DeliverEvent, FdSampleEvent, HaltEvent, NoObserver, Observer,
    RoundEvent, SendEvent, StepEvent,
};
use crate::oracle::Oracle;
use crate::process::Process;
use crate::sched::{Delivery, Scheduler};

/// Observer combinator: forwards every event to `inner` unchanged while
/// recording the step's *transmitted* sends (destination and message id)
/// for the engine to route through the latency model. Dropped sends are
/// forwarded but never routed — they reached no buffer.
struct SendTap<'a, Ob: ?Sized> {
    sends: &'a mut Vec<(ProcessId, MsgId)>,
    inner: &'a mut Ob,
}

impl<V, Ob: Observer<V> + ?Sized> Observer<V> for SendTap<'_, Ob> {
    fn on_send(&mut self, event: &SendEvent) {
        if !event.dropped {
            if let Some(id) = event.id {
                self.sends.push((event.dst, id));
            }
        }
        self.inner.on_send(event);
    }

    fn on_deliver(&mut self, event: &DeliverEvent) {
        self.inner.on_deliver(event);
    }

    fn on_fd_sample(&mut self, event: &FdSampleEvent) {
        self.inner.on_fd_sample(event);
    }

    fn on_step(&mut self, event: &StepEvent) {
        self.inner.on_step(event);
    }

    fn on_round(&mut self, event: &RoundEvent) {
        self.inner.on_round(event);
    }

    fn on_crash(&mut self, event: &CrashEvent) {
        self.inner.on_crash(event);
    }

    fn on_decide(&mut self, event: &DecideEvent<V>) {
        self.inner.on_decide(event);
    }

    fn on_halt(&mut self, event: &HaltEvent) {
        self.inner.on_halt(event);
    }
}

/// The component registry of one drive mode.
#[derive(Debug)]
enum Mode<M> {
    /// Unit→time embedding: one clock component burning scheduler units.
    Embedded(UnitClock<M>),
    /// Arrival-driven execution with real delivery times.
    Timed(Box<Timed>),
}

/// Timed-mode state: per-process clocks, the link fabric, the crash
/// schedule, the optional detector cadence, and the released-but-unread
/// message ids per process.
#[derive(Debug)]
struct Timed {
    latency: Latency,
    gst: u64,
    seed: u64,
    procs: Vec<ProcClock>,
    fabric: LinkFabric,
    crashes: CrashSchedule,
    cadence: Option<DetectorCadence>,
    /// Message ids released by the fabric, awaiting the destination's
    /// next step.
    ready: Vec<Vec<MsgId>>,
    /// Timed crashes that have already struck.
    struck: ProcessSet,
    /// Initially dead ∪ every scheduled timed crash — the processes
    /// [`Engine::done`] does not wait for (mirroring how the step
    /// substrate counts plan-scheduled crashes out from the start).
    faulty: ProcessSet,
}

impl Timed {
    fn component_mut(&mut self, cid: ComponentId) -> Option<&mut dyn Component> {
        let n = self.procs.len();
        let i = cid.index();
        Some(match i {
            _ if i < n => &mut self.procs[i],
            _ if i == n => &mut self.fabric,
            _ if i == n + 1 => &mut self.crashes,
            _ if i == n + 2 => self.cadence.as_mut()?,
            _ => return None,
        })
    }
}

/// The discrete-event virtual-time substrate: a [`Simulation`] driven by
/// an [`EventHeap`] of component wake-ups instead of a unit scheduler.
///
/// See the [module docs](super) for the architecture and the two drive
/// modes. Like [`SimEngine`](crate::SimEngine) it implements
/// [`Engine`], so `drive`/`drive_observed` and every runner work
/// unchanged; a *unit* is one process step in both modes (bookkeeping
/// ticks — fabric releases, crash strikes, cadence pulses — are free,
/// which is exactly the idle-skip advantage on sparse schedules).
///
/// # Examples
///
/// ```
/// use kset_sim::des::{DesEngine, Latency};
/// # use kset_sim::{CrashPlan, Effects, Envelope, Process, ProcessInfo};
/// use kset_sim::{Engine, Simulation, StopReason};
/// # #[derive(Debug, Clone, Hash)]
/// # struct Echo(u32);
/// # impl Process for Echo {
/// #     type Msg = u32;
/// #     type Input = u32;
/// #     type Output = u32;
/// #     type Fd = ();
/// #     fn init(_info: ProcessInfo, input: u32) -> Self { Echo(input) }
/// #     fn step(&mut self, _d: &[Envelope<u32>], _fd: Option<&()>, e: &mut Effects<u32, u32>) {
/// #         e.decide(self.0);
/// #     }
/// # }
///
/// let sim: Simulation<Echo, _> = Simulation::new(vec![7, 7], CrashPlan::none());
/// let mut engine = DesEngine::timed(sim, Latency::uniform(1, 4), 0, 42);
/// let status = engine.drive(100);
/// assert_eq!(status.stop, StopReason::AllCorrectDecided);
/// assert_eq!(engine.distinct_decisions().len(), 1);
/// ```
#[derive(Debug)]
pub struct DesEngine<P, O>
where
    P: Process,
    O: Oracle<Sample = P::Fd>,
{
    sim: Simulation<P, O>,
    heap: EventHeap,
    now: VirtualTime,
    units: u64,
    primed: bool,
    scratch: Vec<Action>,
    mode: Mode<P::Msg>,
}

impl<P, O> DesEngine<P, O>
where
    P: Process,
    O: Oracle<Sample = P::Fd>,
    P::Fd: std::hash::Hash,
{
    /// The unit→time embedding: wraps `sched` in a clock component waking
    /// at `t = 1, 2, 3, …`, one scheduler unit per tick. The run replays
    /// the exact step sequence [`SimEngine`](crate::SimEngine) would
    /// execute with the same simulation and scheduler — decisions, units
    /// and the Observer stream all agree.
    pub fn embedded(sim: Simulation<P, O>, sched: impl Scheduler<P::Msg> + 'static) -> Self {
        DesEngine {
            sim,
            heap: EventHeap::new(),
            now: VirtualTime::ZERO,
            units: 0,
            primed: false,
            scratch: Vec::new(),
            mode: Mode::Embedded(UnitClock::new(ComponentId::new(0), Box::new(sched))),
        }
    }

    /// Arrival-driven timed execution: messages take
    /// `max(send, gst) + draw` ticks, with `draw` the seeded per-link
    /// [`Latency::draw`]. Alive processes take their first step at `t = 1`
    /// (in process order) and afterwards wake exactly when messages
    /// arrive (plus any [`DesEngine::with_detector_cadence`] pulses).
    ///
    /// `latency` is normalized to a well-formed model (`1 ≤ lo ≤ hi`);
    /// see [`Latency::is_well_formed`] for why zero-latency links are
    /// ruled out.
    pub fn timed(sim: Simulation<P, O>, latency: Latency, gst: u64, seed: u64) -> Self {
        let n = sim.n();
        let faulty = sim.crash_plan().initially_dead_set();
        DesEngine {
            sim,
            heap: EventHeap::new(),
            now: VirtualTime::ZERO,
            units: 0,
            primed: false,
            scratch: Vec::new(),
            mode: Mode::Timed(Box::new(Timed {
                latency: latency.normalized(),
                gst,
                seed,
                procs: (0..n)
                    .map(|i| ProcClock::new(ComponentId::new(i), ProcessId::new(i)))
                    .collect(),
                fabric: LinkFabric::new(ComponentId::new(n)),
                crashes: CrashSchedule::new(ComponentId::new(n + 1)),
                cadence: None,
                ready: vec![Vec::new(); n],
                struck: ProcessSet::new(),
                faulty,
            })),
        }
    }

    /// Schedules a timed crash: `pid` takes no step at or after `at`
    /// (crash-stop — its earlier sends still arrive). Same-instant ties
    /// resolve crash-first. No-op in embedded mode (unit schedules crash
    /// through the [`CrashPlan`](crate::CrashPlan)) and for out-of-range
    /// pids.
    pub fn schedule_crash(&mut self, pid: ProcessId, at: VirtualTime) {
        let n = self.sim.n();
        if let Mode::Timed(tm) = &mut self.mode {
            if pid.index() < n {
                tm.crashes.schedule(at, pid);
                tm.faulty.insert(pid);
                self.heap.push(at, tm.crashes.id());
            }
        }
    }

    /// Builder form of [`DesEngine::schedule_crash`].
    #[must_use]
    pub fn with_crash_at(mut self, pid: ProcessId, at: VirtualTime) -> Self {
        self.schedule_crash(pid, at);
        self
    }

    /// Enables the failure-detector cadence: every `period` ticks
    /// (normalized to ≥ 1), every alive undecided process is woken for a
    /// detector-sampling step even if no message arrived. No-op in
    /// embedded mode.
    #[must_use]
    pub fn with_detector_cadence(mut self, period: u64) -> Self {
        if let Mode::Timed(tm) = &mut self.mode {
            let n = tm.procs.len();
            let cadence = DetectorCadence::new(ComponentId::new(n + 2), period);
            if self.primed {
                if let Some(at) = cadence.next_tick() {
                    self.heap.push(at, cadence.id());
                }
            }
            tm.cadence = Some(cadence);
        }
        self
    }

    /// Read access to the wrapped simulation.
    pub fn simulation(&self) -> &Simulation<P, O> {
        &self.sim
    }

    /// Unwraps the engine back into the simulation.
    pub fn into_simulation(self) -> Simulation<P, O> {
        self.sim
    }

    /// The current virtual-clock reading (the time of the last executed
    /// tick).
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// The full run report of the wrapped simulation (trace included).
    ///
    /// Timed crashes are scheduling state of *this* engine, not of the
    /// simulation's crash plan, so they appear in the event stream (as
    /// crash events) but not in the report's failure pattern.
    pub fn report(&self, stop: StopReason) -> RunReport<P::Output> {
        self.sim.report(stop)
    }

    /// Drives to completion and returns the report — the [`Engine`]
    /// counterpart of [`Simulation::run_to_report`].
    pub fn drive_to_report(&mut self, max_units: u64) -> RunReport<P::Output> {
        let status = self.drive(max_units);
        self.report(status.stop)
    }

    /// Seeds the heap before the first tick: crash strikes first (so they
    /// win same-instant ties), then the cadence, then one wake per alive
    /// process at `t = 1` in process order — the sequence-number order the
    /// first wave pops in.
    fn prime(&mut self) {
        self.primed = true;
        match &mut self.mode {
            Mode::Embedded(clock) => {
                let at = VirtualTime::new(1);
                clock.rearm(at);
                self.heap.push(at, clock.id());
            }
            Mode::Timed(tm) => {
                if let Some(at) = tm.crashes.next_tick() {
                    self.heap.push(at, tm.crashes.id());
                }
                if let Some(cadence) = &tm.cadence {
                    if let Some(at) = cadence.next_tick() {
                        self.heap.push(at, cadence.id());
                    }
                }
                let at = VirtualTime::new(1);
                for i in 0..tm.procs.len() {
                    if self.sim.is_alive(ProcessId::new(i)) {
                        tm.procs[i].wake_at(at);
                        self.heap.push(at, tm.procs[i].id());
                    }
                }
            }
        }
    }

    /// The unobserved dispatch entry point: pops wake-ups until one
    /// produces a process step (or the heap drains). Monomorphizes the
    /// no-op observer away, exactly like the step substrate's unobserved
    /// path.
    fn dispatch(&mut self) -> bool {
        self.dispatch_with(&mut NoObserver)
    }

    /// The observed dispatch entry point: as [`DesEngine::dispatch`],
    /// reporting every event of the executed step to `obs`.
    fn dispatch_observed(&mut self, obs: &mut dyn Observer<P::Output>) -> bool {
        self.dispatch_with(obs)
    }

    /// Pops heap entries until one tick yields a process step. Stale
    /// entries (popped time ≠ the component's `next_tick`) are lazily
    /// skipped; bookkeeping ticks (fabric releases, crash strikes,
    /// cadence pulses, exhausted-scheduler clock ticks) are processed
    /// inline without counting as units. Returns `false` when the heap
    /// drains — the substrate is out of moves.
    fn dispatch_with<Ob>(&mut self, obs: &mut Ob) -> bool
    where
        Ob: Observer<P::Output> + ?Sized,
    {
        if !self.primed {
            self.prime();
        }
        loop {
            let Some((now, _seq, cid)) = self.heap.pop() else {
                return false;
            };
            let mut actions = std::mem::take(&mut self.scratch);
            actions.clear();
            let ticked = {
                let comp: Option<&mut dyn Component> = match &mut self.mode {
                    Mode::Embedded(clock) => {
                        if cid == Component::id(clock) {
                            Some(clock)
                        } else {
                            None
                        }
                    }
                    Mode::Timed(tm) => tm.component_mut(cid),
                };
                match comp {
                    Some(comp) if comp.next_tick() == Some(now) => {
                        comp.tick(now, &mut actions);
                        // Requeue the component's own next wake; external
                        // wakes push their own entries at cause time.
                        if let Some(next) = comp.next_tick() {
                            self.heap.push(next, cid);
                        }
                        true
                    }
                    // Stale or unknown entry: lazy deletion.
                    _ => false,
                }
            };
            let stepped = if ticked {
                self.now = now;
                self.apply(now, &mut actions, obs)
            } else {
                false
            };
            self.scratch = actions;
            if stepped {
                return true;
            }
        }
    }

    /// Applies one tick's actions; returns whether a process step (or an
    /// embedded scheduler unit) was executed.
    fn apply<Ob>(&mut self, now: VirtualTime, actions: &mut Vec<Action>, obs: &mut Ob) -> bool
    where
        Ob: Observer<P::Output> + ?Sized,
    {
        let mut stepped = false;
        for action in actions.drain(..) {
            match (&mut self.mode, action) {
                (Mode::Embedded(clock), Action::SchedulerUnit) => {
                    // One unit of the embedded scheduler — the exact
                    // SimEngine semantics, including "picking a crashed
                    // process still consumes the unit".
                    if !self.sim.step_once(clock.scheduler_mut(), obs) {
                        continue;
                    }
                    let at = now.next();
                    clock.rearm(at);
                    self.heap.push(at, Component::id(clock));
                    stepped = true;
                }
                (Mode::Timed(tm), Action::StepProcess(pid)) => {
                    if tm.struck.contains(pid) || !self.sim.is_alive(pid) {
                        continue;
                    }
                    let ids = std::mem::take(&mut tm.ready[pid.index()]);
                    let mut sends: Vec<(ProcessId, MsgId)> = Vec::new();
                    let ok = {
                        let mut tap = SendTap {
                            sends: &mut sends,
                            inner: obs,
                        };
                        self.sim
                            .step_observed(pid, Delivery::Ids(ids), &mut tap)
                            .is_ok()
                    };
                    if ok {
                        stepped = true;
                        for (dst, id) in sends {
                            // The adversary parks pre-GST messages until
                            // stabilization, then the link draws its delay.
                            let depart = now.raw().max(tm.gst);
                            let delay = tm.latency.draw(tm.seed, pid, dst, id.raw());
                            let at = VirtualTime::new(depart).plus(delay);
                            tm.fabric.route(at, dst, id);
                            self.heap.push(at, tm.fabric.id());
                        }
                    }
                }
                (Mode::Timed(tm), Action::Deliver { dst, id }) => {
                    // A message reaching a crashed process vanishes.
                    if tm.struck.contains(dst) || !self.sim.is_alive(dst) {
                        continue;
                    }
                    tm.ready[dst.index()].push(id);
                    if tm.procs[dst.index()].wake_at(now) {
                        self.heap.push(now, tm.procs[dst.index()].id());
                    }
                }
                (Mode::Timed(tm), Action::Crash(pid)) => {
                    if tm.struck.contains(pid) || !self.sim.is_alive(pid) {
                        continue;
                    }
                    tm.struck.insert(pid);
                    tm.ready[pid.index()].clear();
                    tm.procs[pid.index()].retire();
                    obs.on_crash(&CrashEvent {
                        pid,
                        time: self.sim.time(),
                        after_step: true,
                    });
                }
                (Mode::Timed(tm), Action::Pulse) => {
                    let mut woke = false;
                    for i in 0..tm.procs.len() {
                        let pid = ProcessId::new(i);
                        if tm.struck.contains(pid)
                            || !self.sim.is_alive(pid)
                            || self.sim.decision(pid).is_some()
                        {
                            continue;
                        }
                        if tm.procs[i].wake_at(now) {
                            self.heap.push(now, tm.procs[i].id());
                        }
                        woke = true;
                    }
                    if !woke {
                        // Nobody left to sample: let the heap drain. The
                        // alive-undecided set only shrinks, so this is
                        // final.
                        if let Some(cadence) = tm.cadence.as_mut() {
                            cadence.retire();
                        }
                    }
                }
                // A mode/action mismatch cannot be constructed: actions
                // come from the mode's own components.
                _ => {}
            }
        }
        stepped
    }
}

impl<P, O> Engine for DesEngine<P, O>
where
    P: Process,
    O: Oracle<Sample = P::Fd>,
    P::Fd: std::hash::Hash,
{
    type Output = P::Output;

    fn n(&self) -> usize {
        self.sim.n()
    }

    fn advance(&mut self) -> bool {
        let progressed = self.dispatch();
        if progressed {
            self.units += 1;
        }
        progressed
    }

    fn advance_observed(&mut self, obs: &mut dyn Observer<P::Output>) -> bool {
        let progressed = if obs.observes_events() {
            self.dispatch_observed(obs)
        } else {
            self.dispatch()
        };
        if progressed {
            self.units += 1;
        }
        progressed
    }

    fn announce_initial(&self, obs: &mut dyn Observer<P::Output>) {
        self.sim.announce_initial(obs);
    }

    fn done(&self) -> bool {
        match &self.mode {
            Mode::Embedded(_) => self.sim.all_correct_decided(),
            Mode::Timed(tm) => ProcessId::all(self.sim.n())
                .filter(|p| !tm.faulty.contains(*p))
                .all(|p| self.sim.decision(p).is_some()),
        }
    }

    fn units(&self) -> u64 {
        self.units
    }

    fn decisions(&self) -> Vec<Option<P::Output>> {
        self.sim.decisions().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::CrashPlan;
    use crate::ids::Time;
    use crate::observe::EventCounter;
    use crate::process::{Effects, ProcessInfo};
    use crate::sched::round_robin::RoundRobin;
    use crate::{Envelope, SimEngine};
    use std::collections::BTreeSet;

    /// Broadcasts its input on the first step, then decides the minimum
    /// once it has seen values from all `n` processes.
    #[derive(Debug, Clone, Hash)]
    struct MinFlood {
        n: usize,
        seen: BTreeSet<u32>,
        sent: bool,
    }

    impl Process for MinFlood {
        type Msg = u32;
        type Input = u32;
        type Output = u32;
        type Fd = ();

        fn init(info: ProcessInfo, input: u32) -> Self {
            MinFlood {
                n: info.n,
                seen: BTreeSet::from([input]),
                sent: false,
            }
        }

        fn step(
            &mut self,
            delivered: &[Envelope<u32>],
            _fd: Option<&()>,
            effects: &mut Effects<u32, u32>,
        ) {
            if !self.sent {
                self.sent = true;
                let mine = *self.seen.iter().next().unwrap();
                effects.broadcast(mine);
            }
            self.seen.extend(delivered.iter().map(|e| e.payload));
            if self.seen.len() >= self.n {
                effects.decide(*self.seen.iter().next().unwrap());
            }
        }
    }

    fn inputs(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| i * 10 + 3).collect()
    }

    #[test]
    fn embedded_mode_replays_the_sim_engine_run_exactly() {
        let n = 5;
        let plan = CrashPlan::none().with_crash_after(
            ProcessId::new(1),
            2,
            crate::failure::Omission::KeepOnlyTo(ProcessSet::new()),
        );
        let sim = || -> Simulation<MinFlood, _> { Simulation::new(inputs(n), plan.clone()) };
        let mut reference = SimEngine::new(sim(), RoundRobin::new());
        let mut des = DesEngine::embedded(sim(), RoundRobin::new());
        let ref_status = reference.drive(10_000);
        let des_status = des.drive(10_000);
        assert_eq!(ref_status, des_status);
        assert_eq!(reference.decisions(), des.decisions());
        assert_eq!(reference.units(), des.units());
        let ref_report = reference.report(ref_status.stop);
        let des_report = des.report(des_status.stop);
        assert_eq!(ref_report.steps, des_report.steps);
        assert_eq!(
            ref_report.trace.schedule(),
            des_report.trace.schedule(),
            "the embedding must replay the exact step sequence"
        );
    }

    #[test]
    fn timed_mode_decides_and_skips_idle_time() {
        let n = 6;
        let sim: Simulation<MinFlood, _> = Simulation::new(inputs(n), CrashPlan::none());
        let mut engine = DesEngine::timed(sim, Latency::uniform(10, 1_000), 0, 7);
        let status = engine.drive(10_000);
        assert_eq!(status.stop, StopReason::AllCorrectDecided);
        assert_eq!(engine.distinct_decisions().len(), 1);
        // Arrival-driven: the unit count is bounded by steps actually
        // needed (first wave + at most one step per arrival — broadcast
        // includes self, so n·n arrivals), never by the huge latency span
        // the virtual clock jumped over.
        assert!(
            engine.units() <= (n * (n + 1)) as u64,
            "sparse schedule must not burn idle units: {}",
            engine.units()
        );
        assert!(
            engine.now() >= VirtualTime::new(10),
            "virtual time advanced past the minimum latency"
        );
    }

    #[test]
    fn fixed_latency_crash_free_runs_walk_the_round_cadence() {
        let n = 4;
        let sim: Simulation<MinFlood, _> = Simulation::new(inputs(n), CrashPlan::none());
        let mut engine = DesEngine::timed(sim, Latency::fixed(5), 0, 1);
        let status = engine.drive(10_000);
        assert_eq!(status.stop, StopReason::AllCorrectDecided);
        // All round-1 broadcasts are sent at t=1 and arrive together at
        // t=6; every process then steps once with its full inbox and
        // decides: exactly two steps per process.
        assert_eq!(engine.units(), 2 * n as u64);
        assert_eq!(engine.now(), VirtualTime::new(6));
    }

    #[test]
    fn timed_crash_stops_steps_but_earlier_sends_still_arrive() {
        let n = 4;
        let victim = ProcessId::new(0);
        let sim: Simulation<MinFlood, _> = Simulation::new(inputs(n), CrashPlan::none());
        // The victim broadcasts at t=1 and is struck at t=2 — before any
        // arrival (lo = 5) can wake it again.
        let mut engine = DesEngine::timed(sim, Latency::fixed(5), 0, 3)
            .with_crash_at(victim, VirtualTime::new(2));
        let mut counter: EventCounter<u32> = EventCounter::new();
        let status = engine.drive_observed(10_000, &mut counter);
        assert_eq!(status.stop, StopReason::AllCorrectDecided);
        let decisions = engine.decisions();
        assert!(decisions[0].is_none(), "the victim crashed undecided");
        assert!(
            decisions[1..].iter().all(|d| d.is_some()),
            "the victim's t=1 broadcast still reached everyone: {decisions:?}"
        );
        assert_eq!(counter.counts().crashes, 1, "the strike is observable");
        assert_eq!(counter.counts().decides, (n - 1) as u64);
    }

    #[test]
    fn same_instant_crash_beats_the_first_step() {
        let n = 3;
        let victim = ProcessId::new(2);
        let sim: Simulation<MinFlood, _> = Simulation::new(inputs(n), CrashPlan::none());
        let mut engine = DesEngine::timed(sim, Latency::fixed(2), 0, 3)
            .with_crash_at(victim, VirtualTime::new(1));
        let status = engine.drive(10_000);
        // The victim never broadcast, so nobody collects n values.
        assert_eq!(status.stop, StopReason::SchedulerDone);
        assert!(engine.decisions().iter().all(|d| d.is_none()));
        assert!(
            engine
                .simulation()
                .trace()
                .schedule()
                .iter()
                .all(|e| e.pid != victim),
            "a same-instant crash must precede the victim's first step"
        );
    }

    #[test]
    fn gst_parks_early_sends_until_stabilization() {
        let n = 3;
        let sim: Simulation<MinFlood, _> = Simulation::new(inputs(n), CrashPlan::none());
        let mut engine = DesEngine::timed(sim, Latency::fixed(1), 50, 9);
        let status = engine.drive(10_000);
        assert_eq!(status.stop, StopReason::AllCorrectDecided);
        // t=1 broadcasts are parked until GST: arrivals at 50 + 1.
        assert_eq!(engine.now(), VirtualTime::new(51));
    }

    #[test]
    fn detector_cadence_wakes_quiet_processes_and_retires() {
        /// Never sends; decides after three detector samples.
        #[derive(Debug, Clone, Hash)]
        struct Quiet(u64);
        impl Process for Quiet {
            type Msg = u32;
            type Input = u32;
            type Output = u32;
            type Fd = ();
            fn init(_info: ProcessInfo, _input: u32) -> Self {
                Quiet(0)
            }
            fn step(
                &mut self,
                _d: &[Envelope<u32>],
                _fd: Option<&()>,
                effects: &mut Effects<u32, u32>,
            ) {
                self.0 += 1;
                if self.0 >= 3 {
                    effects.decide(1);
                }
            }
        }
        let sim: Simulation<Quiet, _> = Simulation::new(vec![0, 0], CrashPlan::none());
        let mut engine = DesEngine::timed(sim, Latency::fixed(1), 0, 5).with_detector_cadence(4);
        let status = engine.drive(1_000);
        assert_eq!(
            status.stop,
            StopReason::AllCorrectDecided,
            "without arrivals only the cadence provides liveness"
        );
        // Step 1 at t=1, then pulses at t=4 and t=8.
        assert_eq!(engine.now(), VirtualTime::new(8));
        // After everyone decided the cadence retires and the heap drains.
        assert!(!engine.advance(), "a drained heap is out of moves");
    }

    #[test]
    fn initially_dead_processes_never_wake() {
        let n = 4;
        let sim: Simulation<MinFlood, _> =
            Simulation::new(inputs(n), CrashPlan::initially_dead([ProcessId::new(3)]));
        let mut engine = DesEngine::timed(sim, Latency::fixed(2), 0, 11);
        let status = engine.drive(10_000);
        // Three broadcasts only: nobody sees 4 values, nobody decides —
        // and the dead process takes no step at all.
        assert_eq!(status.stop, StopReason::SchedulerDone);
        assert!(engine
            .simulation()
            .trace()
            .schedule()
            .iter()
            .all(|e| e.pid.index() != 3));
    }

    #[test]
    fn announce_initial_replays_initial_deaths() {
        let sim: Simulation<MinFlood, _> =
            Simulation::new(inputs(3), CrashPlan::initially_dead([ProcessId::new(1)]));
        let mut engine = DesEngine::timed(sim, Latency::fixed(1), 0, 0);
        let mut counter: EventCounter<u32> = EventCounter::new();
        engine.drive_observed(100, &mut counter);
        assert_eq!(counter.counts().crashes, 1);
        assert_eq!(counter.counts().halts, 1);
        assert_eq!(counter.counts().steps, engine.units());
    }

    #[test]
    fn report_time_is_step_time_not_virtual_time() {
        let sim: Simulation<MinFlood, _> = Simulation::new(inputs(3), CrashPlan::none());
        let mut engine = DesEngine::timed(sim, Latency::uniform(100, 200), 0, 2);
        let status = engine.drive(1_000);
        let report = engine.report(status.stop);
        assert_eq!(report.steps, engine.units());
        assert_eq!(engine.simulation().time(), Time::new(report.steps));
        assert!(engine.now().raw() >= 100, "virtual clock outran step time");
    }
}
