//! The component contract and the four built-in component kinds.
//!
//! A [`Component`] is anything the event heap can wake: it names the next
//! instant it wants to run ([`Component::next_tick`]) and, when ticked,
//! emits [`Action`]s for the engine to apply. Components never touch the
//! simulation or each other directly — the engine owns all cross-component
//! effects — so each one is a small, independently testable state machine.

use std::collections::{BTreeMap, BTreeSet};

use super::{ComponentId, VirtualTime};
use crate::ids::{MsgId, ProcessId};
use crate::sched::Scheduler;

/// An effect requested by a ticking [`Component`], applied by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Run one atomic step of the process, delivering whatever messages
    /// the fabric has released to it (timed mode).
    StepProcess(ProcessId),
    /// Burn one unit of the embedded scheduler (embedded mode).
    SchedulerUnit,
    /// The fabric released an in-flight message: make it deliverable and
    /// wake its destination (timed mode).
    Deliver {
        /// The destination process.
        dst: ProcessId,
        /// The released message.
        id: MsgId,
    },
    /// The crash schedule struck: the process takes no further steps
    /// (timed mode).
    Crash(ProcessId),
    /// The detector cadence pulsed: wake every alive, undecided process
    /// for a failure-detector sampling step (timed mode).
    Pulse,
}

/// One participant in the discrete-event loop: a process clock, the link
/// fabric, the crash schedule, the detector cadence, or the embedded unit
/// clock.
///
/// The contract with the engine:
///
/// * [`Component::next_tick`] is the earliest instant the component wants
///   to run, or `None` when idle. Whenever that instant changes to an
///   earlier value, a heap entry exists for it (the engine pushes one on
///   every externally caused change, and re-reads `next_tick` after every
///   tick to requeue the component itself).
/// * On pop, the engine runs the component only if the popped time still
///   equals `next_tick` — superseded entries are lazily skipped, so
///   `tick` always observes `now == next_tick`.
/// * [`Component::tick`] consumes everything due at `now` and pushes the
///   requested effects into `actions`; the engine applies them in order.
pub trait Component {
    /// This component's registry id (the heap key's third element).
    fn id(&self) -> ComponentId;

    /// The earliest instant this component wants to run, or `None` when
    /// it has nothing scheduled.
    fn next_tick(&self) -> Option<VirtualTime>;

    /// Runs the component at `now`, consuming everything due and pushing
    /// requested effects into `actions`.
    fn tick(&mut self, now: VirtualTime, actions: &mut Vec<Action>);
}

/// A process's wake-up agenda: the instants at which it should take a
/// step. Message arrivals and detector pulses insert wake times; ticking
/// collapses everything due into one [`Action::StepProcess`].
#[derive(Debug, Clone)]
pub struct ProcClock {
    id: ComponentId,
    pid: ProcessId,
    agenda: BTreeSet<VirtualTime>,
}

impl ProcClock {
    /// A clock for `pid` with an empty agenda.
    pub fn new(id: ComponentId, pid: ProcessId) -> Self {
        ProcClock {
            id,
            pid,
            agenda: BTreeSet::new(),
        }
    }

    /// Schedules a wake-up at `at`; returns whether it is new. The caller
    /// pushes the matching heap entry.
    pub fn wake_at(&mut self, at: VirtualTime) -> bool {
        self.agenda.insert(at)
    }

    /// Drops the whole agenda (the process crashed).
    pub fn retire(&mut self) {
        self.agenda.clear();
    }
}

impl Component for ProcClock {
    fn id(&self) -> ComponentId {
        self.id
    }

    fn next_tick(&self) -> Option<VirtualTime> {
        self.agenda.first().copied()
    }

    fn tick(&mut self, now: VirtualTime, actions: &mut Vec<Action>) {
        let later = self.agenda.split_off(&now.next());
        let due = !self.agenda.is_empty();
        self.agenda = later;
        if due {
            actions.push(Action::StepProcess(self.pid));
        }
    }
}

/// The link fabric: every in-flight message keyed by its arrival instant
/// (plus a routing slot so same-instant arrivals release in routing
/// order). Ticking releases everything that has arrived.
#[derive(Debug, Clone, Default)]
pub struct LinkFabric {
    id: ComponentId,
    in_flight: BTreeMap<(VirtualTime, u64), (ProcessId, MsgId)>,
    next_slot: u64,
}

impl LinkFabric {
    /// An empty fabric.
    pub fn new(id: ComponentId) -> Self {
        LinkFabric {
            id,
            in_flight: BTreeMap::new(),
            next_slot: 0,
        }
    }

    /// Puts message `id` for `dst` in flight, arriving at `at`. The
    /// caller pushes the matching heap entry.
    pub fn route(&mut self, at: VirtualTime, dst: ProcessId, id: MsgId) {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.in_flight.insert((at, slot), (dst, id));
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

impl Component for LinkFabric {
    fn id(&self) -> ComponentId {
        self.id
    }

    fn next_tick(&self) -> Option<VirtualTime> {
        self.in_flight.keys().next().map(|&(at, _)| at)
    }

    fn tick(&mut self, now: VirtualTime, actions: &mut Vec<Action>) {
        let later = self.in_flight.split_off(&(now.next(), 0));
        for ((_, _), (dst, id)) in std::mem::replace(&mut self.in_flight, later) {
            actions.push(Action::Deliver { dst, id });
        }
    }
}

/// The timed crash plan: at each scheduled instant the named processes
/// stop taking steps — crash-stop semantics, messages already in flight
/// still arrive.
#[derive(Debug, Clone, Default)]
pub struct CrashSchedule {
    id: ComponentId,
    agenda: BTreeMap<VirtualTime, Vec<ProcessId>>,
}

impl CrashSchedule {
    /// An empty schedule.
    pub fn new(id: ComponentId) -> Self {
        CrashSchedule {
            id,
            agenda: BTreeMap::new(),
        }
    }

    /// Schedules `pid` to crash at `at`. The caller pushes the matching
    /// heap entry (or relies on construction-time priming).
    pub fn schedule(&mut self, at: VirtualTime, pid: ProcessId) {
        self.agenda.entry(at).or_default().push(pid);
    }

    /// Every process with a scheduled crash, in schedule order.
    pub fn scheduled_pids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.agenda.values().flatten().copied()
    }
}

impl Component for CrashSchedule {
    fn id(&self) -> ComponentId {
        self.id
    }

    fn next_tick(&self) -> Option<VirtualTime> {
        self.agenda.keys().next().copied()
    }

    fn tick(&mut self, now: VirtualTime, actions: &mut Vec<Action>) {
        let later = self.agenda.split_off(&now.next());
        for (_, pids) in std::mem::replace(&mut self.agenda, later) {
            actions.extend(pids.into_iter().map(Action::Crash));
        }
    }
}

/// The failure-detector cadence: a periodic pulse waking every alive,
/// undecided process so it samples its detector even when no messages
/// arrive. The engine disables the cadence once nobody is left to wake,
/// letting the heap drain.
#[derive(Debug, Clone)]
pub struct DetectorCadence {
    id: ComponentId,
    period: u64,
    next: VirtualTime,
    live: bool,
}

impl DetectorCadence {
    /// A cadence pulsing every `period` ticks (normalized to ≥ 1),
    /// starting at `period`.
    pub fn new(id: ComponentId, period: u64) -> Self {
        let period = period.max(1);
        DetectorCadence {
            id,
            period,
            next: VirtualTime::new(period),
            live: true,
        }
    }

    /// Stops all future pulses (nobody left to wake).
    pub fn retire(&mut self) {
        self.live = false;
    }
}

impl Component for DetectorCadence {
    fn id(&self) -> ComponentId {
        self.id
    }

    fn next_tick(&self) -> Option<VirtualTime> {
        self.live.then_some(self.next)
    }

    fn tick(&mut self, now: VirtualTime, actions: &mut Vec<Action>) {
        actions.push(Action::Pulse);
        self.next = now.plus(self.period);
    }
}

/// The embedded-mode unit clock: wakes at `t = 1, 2, 3, …`, burning one
/// unit of the wrapped scheduler per tick. The engine re-arms it only
/// while the scheduler keeps producing moves, so an exhausted scheduler
/// drains the heap — the unit→time embedding of every existing schedule
/// family.
pub struct UnitClock<M> {
    id: ComponentId,
    sched: Box<dyn Scheduler<M>>,
    next: Option<VirtualTime>,
}

impl<M> UnitClock<M> {
    /// Wraps `sched`; the engine arms the first wake-up when priming.
    pub fn new(id: ComponentId, sched: Box<dyn Scheduler<M>>) -> Self {
        UnitClock {
            id,
            sched,
            next: None,
        }
    }

    /// Schedules the next unit at `at`. The caller pushes the matching
    /// heap entry.
    pub fn rearm(&mut self, at: VirtualTime) {
        self.next = Some(at);
    }

    /// The wrapped scheduler, for the engine to consult.
    pub fn scheduler_mut(&mut self) -> &mut dyn Scheduler<M> {
        &mut *self.sched
    }
}

impl<M> std::fmt::Debug for UnitClock<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnitClock")
            .field("id", &self.id)
            .field("next", &self.next)
            .finish_non_exhaustive()
    }
}

impl<M> Component for UnitClock<M> {
    fn id(&self) -> ComponentId {
        self.id
    }

    fn next_tick(&self) -> Option<VirtualTime> {
        self.next
    }

    fn tick(&mut self, _now: VirtualTime, actions: &mut Vec<Action>) {
        self.next = None;
        actions.push(Action::SchedulerUnit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(c: &mut dyn Component, now: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        c.tick(VirtualTime::new(now), &mut actions);
        actions
    }

    #[test]
    fn proc_clock_collapses_due_wakes_into_one_step() {
        let mut clock = ProcClock::new(ComponentId::new(3), ProcessId::new(1));
        assert_eq!(clock.next_tick(), None);
        assert!(clock.wake_at(VirtualTime::new(4)));
        assert!(clock.wake_at(VirtualTime::new(2)));
        assert!(!clock.wake_at(VirtualTime::new(2)), "agenda deduplicates");
        assert!(clock.wake_at(VirtualTime::new(9)));
        assert_eq!(clock.next_tick(), Some(VirtualTime::new(2)));
        assert_eq!(
            run(&mut clock, 4),
            vec![Action::StepProcess(ProcessId::new(1))]
        );
        assert_eq!(
            clock.next_tick(),
            Some(VirtualTime::new(9)),
            "later wakes survive"
        );
        clock.retire();
        assert_eq!(clock.next_tick(), None);
    }

    #[test]
    fn fabric_releases_arrivals_in_routing_order() {
        let mut fabric = LinkFabric::new(ComponentId::new(0));
        fabric.route(VirtualTime::new(5), ProcessId::new(2), MsgId::new(10));
        fabric.route(VirtualTime::new(3), ProcessId::new(1), MsgId::new(11));
        fabric.route(VirtualTime::new(5), ProcessId::new(0), MsgId::new(12));
        assert_eq!(fabric.next_tick(), Some(VirtualTime::new(3)));
        assert_eq!(fabric.in_flight(), 3);
        assert_eq!(
            run(&mut fabric, 5),
            vec![
                Action::Deliver {
                    dst: ProcessId::new(1),
                    id: MsgId::new(11)
                },
                Action::Deliver {
                    dst: ProcessId::new(2),
                    id: MsgId::new(10)
                },
                Action::Deliver {
                    dst: ProcessId::new(0),
                    id: MsgId::new(12)
                },
            ],
            "time order first, routing order within one instant"
        );
        assert_eq!(fabric.next_tick(), None);
    }

    #[test]
    fn crash_schedule_strikes_everything_due() {
        let mut crashes = CrashSchedule::new(ComponentId::new(0));
        crashes.schedule(VirtualTime::new(2), ProcessId::new(0));
        crashes.schedule(VirtualTime::new(2), ProcessId::new(3));
        crashes.schedule(VirtualTime::new(7), ProcessId::new(1));
        assert_eq!(
            crashes.scheduled_pids().collect::<Vec<_>>(),
            vec![ProcessId::new(0), ProcessId::new(3), ProcessId::new(1)]
        );
        assert_eq!(
            run(&mut crashes, 2),
            vec![
                Action::Crash(ProcessId::new(0)),
                Action::Crash(ProcessId::new(3))
            ]
        );
        assert_eq!(crashes.next_tick(), Some(VirtualTime::new(7)));
    }

    #[test]
    fn cadence_pulses_until_retired() {
        let mut cadence = DetectorCadence::new(ComponentId::new(0), 5);
        assert_eq!(cadence.next_tick(), Some(VirtualTime::new(5)));
        assert_eq!(run(&mut cadence, 5), vec![Action::Pulse]);
        assert_eq!(cadence.next_tick(), Some(VirtualTime::new(10)));
        cadence.retire();
        assert_eq!(cadence.next_tick(), None);
        // Period 0 normalizes: the cadence must always advance.
        assert_eq!(
            DetectorCadence::new(ComponentId::new(0), 0).next_tick(),
            Some(VirtualTime::new(1))
        );
    }
}
