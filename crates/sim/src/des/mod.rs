//! Discrete-event virtual-time substrate: the third execution engine.
//!
//! The step simulator ([`SimEngine`](crate::SimEngine)) and `kset-core`'s
//! lock-step round executor both measure progress in uniform scheduler
//! *units* — a fine fit for the paper's adversary arguments, but unable to
//! express schedules defined in **time**: per-link latency draws, partial
//! synchrony with an explicit global stabilization time (GST), or
//! delay-bounded adversaries whose Δ is a duration rather than a unit
//! count. This module adds that substrate.
//!
//! # Architecture
//!
//! * A **virtual clock** ([`VirtualTime`]) advanced by a deterministic
//!   min-heap of `(VirtualTime, seq, ComponentId)` wake-ups
//!   ([`EventHeap`]). The monotonic `seq` tie-break makes heap order
//!   *total*: two events at the same instant pop in insertion order, so a
//!   run is a pure function of its seeds regardless of heap internals.
//! * **Components** ([`Component`]): processes ([`ProcClock`]), the link
//!   fabric carrying in-flight messages ([`LinkFabric`]), the timed crash
//!   schedule ([`CrashSchedule`]) and the failure-detector cadence
//!   ([`DetectorCadence`]) all answer `next_tick`/`tick`. A tick emits
//!   [`Action`]s; the engine applies them, which is what keeps component
//!   state and engine state cleanly separated.
//! * **Latency models** ([`Latency`]): each message's delivery time is
//!   `max(send, gst) + draw`, where `draw` is a seeded, per-link,
//!   per-message SplitMix64 draw from `lo..=hi` — real delivery times, not
//!   unit counts. Before the GST the adversary parks every message until
//!   stabilization; `gst = 0` is the synchronous-bounded model from the
//!   start.
//!
//! # Two drive modes
//!
//! [`DesEngine`] implements the [`Engine`](crate::Engine) trait in both:
//!
//! * **Embedded** ([`DesEngine::embedded`]) — the unit→time embedding: a
//!   single clock component wakes at `t = 1, 2, 3, …` and burns one
//!   scheduler unit per tick. The exact `SimEngine` step sequence replays
//!   under the event-driven clock, so every existing
//!   [`Scenario`](crate::Scenario) compiles unchanged and the differential
//!   suite pins decision equality across all three substrates.
//! * **Timed** ([`DesEngine::timed`]) — arrival-driven execution: a
//!   process wakes exactly when messages arrive (plus the optional
//!   detector cadence), consuming them as a
//!   [`Delivery::Ids`](crate::sched::Delivery::Ids) step. Idle
//!   stretches cost nothing —
//!   the clock jumps to the next arrival — which is the sparse-schedule
//!   win the `e7_des` bench group measures.
//!
//! The Observer event stream (send/deliver/fd-sample/step/crash/decide/
//! halt) flows unchanged in both modes: every process step goes through
//! the same `Simulation::step_observed` seven-phase pipeline as the step
//! substrate. Event times remain the simulation's step counter
//! ([`Time`](crate::Time)); the virtual clock is scheduling metadata, not
//! a new event vocabulary. One nuance: a *timed* crash is an adversary
//! strike between steps, reported with `after_step == true` at the
//! striking moment's step time.

mod component;
mod engine;
mod heap;
mod latency;

pub use component::{
    Action, Component, CrashSchedule, DetectorCadence, LinkFabric, ProcClock, UnitClock,
};
pub use engine::DesEngine;
pub use heap::EventHeap;
pub use latency::Latency;

/// A point on the discrete-event virtual clock.
///
/// Distinct from [`Time`](crate::Time) (the simulation's step counter):
/// virtual time measures *when* things happen on the modelled network,
/// while step time counts atomic process steps. Observer events carry step
/// time in both drive modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The clock origin; nothing is scheduled before it.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Wraps a raw tick count.
    pub const fn new(raw: u64) -> Self {
        VirtualTime(raw)
    }

    /// The raw tick count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The immediately following instant.
    pub const fn next(self) -> VirtualTime {
        VirtualTime(self.0.saturating_add(1))
    }

    /// This instant delayed by `delay` ticks (saturating).
    pub const fn plus(self, delay: u64) -> VirtualTime {
        VirtualTime(self.0.saturating_add(delay))
    }
}

impl std::fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies one [`Component`] in a [`DesEngine`]'s registry — the third
/// element of every heap entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Wraps a registry index.
    pub const fn new(index: usize) -> Self {
        ComponentId(index)
    }

    /// The registry index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_time_orders_and_advances() {
        assert!(VirtualTime::ZERO < VirtualTime::new(1));
        assert_eq!(VirtualTime::new(3).next(), VirtualTime::new(4));
        assert_eq!(VirtualTime::new(3).plus(4), VirtualTime::new(7));
        assert_eq!(
            VirtualTime::new(u64::MAX).next(),
            VirtualTime::new(u64::MAX)
        );
        assert_eq!(VirtualTime::new(5).to_string(), "t5");
        assert_eq!(ComponentId::new(2).to_string(), "c2");
    }
}
