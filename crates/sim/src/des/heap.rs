//! The deterministic event heap: `(VirtualTime, seq, ComponentId)` wake-ups.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::{ComponentId, VirtualTime};

/// A min-heap of component wake-ups with a **total**, seed-reproducible
/// order.
///
/// Every push is stamped with a monotonically increasing sequence number,
/// so entries at the same [`VirtualTime`] pop in insertion order — the
/// tie-break never depends on `BinaryHeap` internals, allocator state or
/// anything else outside the push sequence. That totality is what makes a
/// discrete-event run a pure function of its seeds.
///
/// Stale entries are handled by *lazy deletion*: the engine pushes a fresh
/// entry whenever a component's earliest wake-up changes, and on pop runs
/// the component only if the popped time still equals its
/// [`Component::next_tick`](super::Component::next_tick). Superseded
/// entries are skipped, never searched for.
///
/// # Examples
///
/// ```
/// use kset_sim::des::{ComponentId, EventHeap, VirtualTime};
///
/// let mut heap = EventHeap::new();
/// heap.push(VirtualTime::new(5), ComponentId::new(1));
/// heap.push(VirtualTime::new(5), ComponentId::new(0));
/// heap.push(VirtualTime::new(2), ComponentId::new(7));
/// // Earliest time first; same-time entries in insertion order.
/// assert_eq!(heap.pop().map(|(t, _, c)| (t.raw(), c.index())), Some((2, 7)));
/// assert_eq!(heap.pop().map(|(t, _, c)| (t.raw(), c.index())), Some((5, 1)));
/// assert_eq!(heap.pop().map(|(t, _, c)| (t.raw(), c.index())), Some((5, 0)));
/// assert_eq!(heap.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventHeap {
    entries: BinaryHeap<Reverse<(VirtualTime, u64, ComponentId)>>,
    next_seq: u64,
}

impl EventHeap {
    /// An empty heap; the first push gets sequence number 0.
    pub fn new() -> Self {
        EventHeap::default()
    }

    /// Schedules a wake-up of `component` at `at`, stamping it with the
    /// next sequence number. Returns the stamp.
    pub fn push(&mut self, at: VirtualTime, component: ComponentId) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Reverse((at, seq, component)));
        seq
    }

    /// Removes and returns the earliest entry — ties broken by sequence
    /// number, i.e. insertion order.
    pub fn pop(&mut self) -> Option<(VirtualTime, u64, ComponentId)> {
        self.entries.pop().map(|Reverse(e)| e)
    }

    /// The earliest entry without removing it.
    pub fn peek(&self) -> Option<(VirtualTime, u64, ComponentId)> {
        self.entries.peek().map(|&Reverse(e)| e)
    }

    /// Entries currently queued (stale ones included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_time_entries_pop_in_insertion_order() {
        let mut heap = EventHeap::new();
        let t = VirtualTime::new(9);
        // Push component ids in *descending* order so a heap that
        // tie-broke on ComponentId (or on nothing) would pop differently.
        for cid in (0..32).rev() {
            heap.push(t, ComponentId::new(cid));
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop())
            .map(|(at, _, cid)| {
                assert_eq!(at, t);
                cid.index()
            })
            .collect();
        let expected: Vec<usize> = (0..32).rev().collect();
        assert_eq!(order, expected, "insertion order, not id order");
    }

    #[test]
    fn sequence_numbers_are_monotonic_across_interleaved_pops() {
        let mut heap = EventHeap::new();
        assert_eq!(heap.push(VirtualTime::new(3), ComponentId::new(0)), 0);
        assert_eq!(heap.push(VirtualTime::new(1), ComponentId::new(1)), 1);
        assert_eq!(heap.pop().map(|(t, s, _)| (t.raw(), s)), Some((1, 1)));
        // Popping must not recycle stamps: later pushes keep counting up,
        // so an entry pushed after a pop still loses same-time ties to
        // everything pushed before it.
        assert_eq!(heap.push(VirtualTime::new(3), ComponentId::new(2)), 2);
        assert_eq!(heap.pop().map(|(_, s, c)| (s, c.index())), Some((0, 0)));
        assert_eq!(heap.pop().map(|(_, s, c)| (s, c.index())), Some((2, 2)));
        assert!(heap.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut heap = EventHeap::new();
        heap.push(VirtualTime::new(4), ComponentId::new(5));
        heap.push(VirtualTime::new(2), ComponentId::new(6));
        assert_eq!(heap.peek(), heap.clone().pop());
        assert_eq!(heap.len(), 2);
    }
}
