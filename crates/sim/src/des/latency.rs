//! Seeded per-link latency models: real delivery times for messages.

use crate::ids::ProcessId;

/// A per-link message latency model: every delivery delay is drawn
/// uniformly from `lo..=hi` virtual-time ticks by a stateless seeded hash
/// of `(seed, src, dst, nonce)`.
///
/// Statelessness is the point: the delay of message `m` on link
/// `src → dst` depends only on the run seed and the message's identity,
/// never on draw order — so a run's arrival times are reproducible from
/// its [`Scenario`](crate::Scenario) line alone, and two engines routing
/// the same messages agree on every delay.
///
/// `lo` must be at least 1 (a zero-latency link would admit unbounded
/// same-instant send→deliver→send cascades — Zeno runs the virtual clock
/// could never get past); [`DesEngine::timed`](super::DesEngine::timed)
/// normalizes violating models and
/// [`Scenario::validate`](crate::Scenario::validate) rejects them with a
/// typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Latency {
    /// Minimum delivery delay, in virtual-time ticks (≥ 1).
    pub lo: u64,
    /// Maximum delivery delay, in virtual-time ticks (≥ `lo`).
    pub hi: u64,
}

impl Latency {
    /// A fixed-delay link: every message takes exactly `delay` ticks.
    ///
    /// With `gst = 0` this is the synchronous-bounded model: all messages
    /// of one send wave arrive together, and an arrival-driven run walks
    /// the exact lock-step round cadence.
    pub const fn fixed(delay: u64) -> Self {
        Latency {
            lo: delay,
            hi: delay,
        }
    }

    /// A uniform-delay link: delays drawn from `lo..=hi`.
    pub const fn uniform(lo: u64, hi: u64) -> Self {
        Latency { lo, hi }
    }

    /// Whether the model is well-formed: `1 ≤ lo ≤ hi`.
    pub const fn is_well_formed(self) -> bool {
        self.lo >= 1 && self.lo <= self.hi
    }

    /// The nearest well-formed model: `lo` raised to 1, `hi` raised to
    /// `lo`.
    pub(crate) fn normalized(self) -> Self {
        let lo = self.lo.max(1);
        Latency {
            lo,
            hi: self.hi.max(lo),
        }
    }

    /// Draws the delivery delay of one message: a deterministic function
    /// of `(seed, src, dst, nonce)` mapped into `lo..=hi`.
    ///
    /// `nonce` is the message's per-run identity (the engine uses the raw
    /// message id); distinct messages on the same link draw independently.
    pub fn draw(self, seed: u64, src: ProcessId, dst: ProcessId, nonce: u64) -> u64 {
        if self.lo >= self.hi {
            return self.lo;
        }
        // SplitMix64 finalizer over the link-and-message identity; the
        // odd-constant multipliers keep (src, dst, nonce) permutations
        // from colliding.
        let mut z = seed
            .wrapping_add((src.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((dst.index() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add(nonce.wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // span = hi - lo + 1 cannot overflow here: lo < hi implies
        // hi - lo >= 1 and hi - lo <= u64::MAX - 1.
        self.lo + z % (self.hi - self.lo + 1)
    }
}

impl std::fmt::Display for Latency {
    /// Renders the scenario-line form, `lo..hi`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_in_range() {
        let lat = Latency::uniform(3, 17);
        for nonce in 0..500u64 {
            let d = lat.draw(42, ProcessId::new(1), ProcessId::new(2), nonce);
            assert_eq!(
                d,
                lat.draw(42, ProcessId::new(1), ProcessId::new(2), nonce),
                "same identity, same draw"
            );
            assert!((3..=17).contains(&d), "draw {d} out of 3..=17");
        }
    }

    #[test]
    fn draws_depend_on_every_identity_component() {
        let lat = Latency::uniform(0, u64::MAX - 1);
        let base = lat.draw(1, ProcessId::new(2), ProcessId::new(3), 4);
        assert_ne!(base, lat.draw(9, ProcessId::new(2), ProcessId::new(3), 4));
        assert_ne!(base, lat.draw(1, ProcessId::new(7), ProcessId::new(3), 4));
        assert_ne!(base, lat.draw(1, ProcessId::new(2), ProcessId::new(8), 4));
        assert_ne!(base, lat.draw(1, ProcessId::new(2), ProcessId::new(3), 5));
        // Swapping src and dst changes the link.
        assert_ne!(base, lat.draw(1, ProcessId::new(3), ProcessId::new(2), 4));
    }

    #[test]
    fn fixed_links_always_draw_the_delay() {
        let lat = Latency::fixed(6);
        for nonce in 0..50u64 {
            assert_eq!(
                lat.draw(nonce, ProcessId::new(0), ProcessId::new(1), nonce),
                6
            );
        }
    }

    #[test]
    fn well_formedness_and_normalization() {
        assert!(Latency::fixed(1).is_well_formed());
        assert!(Latency::uniform(2, 9).is_well_formed());
        assert!(!Latency::fixed(0).is_well_formed());
        assert!(!Latency::uniform(5, 2).is_well_formed());
        assert_eq!(Latency::fixed(0).normalized(), Latency::fixed(1));
        assert_eq!(Latency::uniform(5, 2).normalized(), Latency::fixed(5));
        assert_eq!(Latency::uniform(2, 9).normalized(), Latency::uniform(2, 9));
        assert_eq!(Latency::uniform(2, 9).to_string(), "2..9");
    }
}
