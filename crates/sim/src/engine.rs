//! The simulation engine: executes runs of an algorithm under a scheduler.
//!
//! Two execution substrates live in the workspace — this step-level
//! simulator and `kset-core`'s lock-step round executor. Both implement the
//! [`Engine`] trait (this simulator through [`SimEngine`], which pairs a
//! [`Simulation`] with a scheduler), so runners, experiment harnesses and
//! benches can drive either substrate through one API.
//!
//! [`Simulation`] holds the full configuration of the paper's model
//! (Section II): the vector of local states and the per-process message
//! buffers. Each call to [`Simulation::step`] performs one atomic step of
//! one process — receive a scheduler-chosen subset of its buffer, sample the
//! failure detector (when the model provides one), apply the deterministic
//! transition, and enqueue the emitted messages — advancing global time by
//! one, exactly as in the run definition `ρ = (C0, C1, …)`.
//!
//! Crashes come from a [`CrashPlan`]: initially-dead processes never step;
//! a scheduled crash ends the process's final step with an [`Omission`]
//! rule applied to that step's sends (the model's "may omit sending messages
//! to a subset of receivers in the very last step").

use std::collections::BTreeSet;

use crate::buffer::Buffer;
use crate::failure::{CrashPlan, FailurePattern};
use crate::ids::{CapacityError, MsgId, ProcessId, Time};
use crate::message::{fingerprint, Envelope};
use crate::observe::{
    CrashEvent, DecideEvent, DeliverEvent, FdSampleEvent, HaltEvent, NoObserver, Observer,
    SendEvent, StepEvent,
};
use crate::oracle::{NoOracle, Oracle};
use crate::process::{Effects, Process, ProcessInfo};
use crate::sched::{Choice, Delivery, Scheduler, SimView, Status};
use crate::trace::{Trace, TraceRecorder};

/// Errors surfaced by [`Simulation::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The selected process has already crashed (or is initially dead).
    ProcessCrashed(ProcessId),
    /// The selected process id is out of range.
    InvalidProcess(ProcessId),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ProcessCrashed(p) => write!(f, "process {p} has crashed and cannot step"),
            SimError::InvalidProcess(p) => write!(f, "process {p} does not exist"),
        }
    }
}

impl std::error::Error for SimError {}

/// A protocol violation observed during a run (recorded, not fatal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A process attempted to overwrite its write-once decision with a
    /// different value.
    DoubleDecision {
        /// The offending process.
        pid: ProcessId,
        /// Time of the second, conflicting decision.
        time: Time,
    },
}

/// Why [`Simulation::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every process that is correct under the crash plan has decided.
    AllCorrectDecided,
    /// The scheduler returned `None`.
    SchedulerDone,
    /// The step limit was reached.
    StepLimit,
}

/// Outcome summary of [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStatus {
    /// Steps executed by this call.
    pub steps: u64,
    /// Why the loop stopped.
    pub stop: StopReason,
}

/// Complete result of a finished run prefix: decisions, failure pattern,
/// violations, and the full trace.
#[derive(Debug, Clone)]
pub struct RunReport<V> {
    /// Per-process decisions (`None` = undecided in this prefix).
    pub decisions: Vec<Option<V>>,
    /// The set of distinct decision values — the quantity bounded by
    /// k-Agreement.
    pub distinct_decisions: BTreeSet<V>,
    /// The failure pattern `F(·)` of the run.
    pub failure_pattern: FailurePattern,
    /// Protocol violations observed (write-once breaches).
    pub violations: Vec<Violation>,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Total steps taken over the simulation's lifetime.
    pub steps: u64,
    /// The recorded trace.
    pub trace: Trace<V>,
}

impl<V: Clone + Ord> RunReport<V> {
    /// Whether every correct process (w.r.t. the run's failure pattern)
    /// decided.
    pub fn all_correct_decided(&self) -> bool {
        self.failure_pattern
            .correct()
            .iter()
            .all(|p| self.decisions[p.index()].is_some())
    }

    /// Number of distinct decision values in the run — at most `k` iff the
    /// run satisfies k-Agreement.
    pub fn num_distinct_decisions(&self) -> usize {
        self.distinct_decisions.len()
    }
}

/// A running instance of an algorithm `P` in the simulated system, with
/// failure-detector oracle `O`.
///
/// `Simulation` is `Clone` when the oracle is, which is what enables the
/// exhaustive schedule exploration of [`crate::explore`]: a configuration
/// can be forked and driven down different scheduling branches.
#[derive(Debug)]
pub struct Simulation<P: Process, O: Oracle<Sample = P::Fd>> {
    n: usize,
    procs: Vec<P>,
    statuses: Vec<Status>,
    decided: Vec<Option<P::Output>>,
    decided_flags: Vec<bool>,
    buffers: Vec<Buffer<P::Msg>>,
    oracle: O,
    crash_plan: CrashPlan,
    time: Time,
    next_msg_id: u64,
    observed: FailurePattern,
    violations: Vec<Violation>,
    recorder: TraceRecorder<P::Output>,
    total_steps: u64,
}

impl<P> Simulation<P, NoOracle>
where
    P: Process<Fd = ()>,
{
    /// Creates a simulation without failure detectors (dimension 6
    /// unfavourable): each process `p_i` starts with `inputs[i]`. The
    /// process still receives `Some(&())` as its sample so that traces of
    /// oracle-less and oracle-backed executions fingerprint identically.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` exceeds [`crate::ProcessSet::CAPACITY`]
    /// (the bitset-backed process sets cap the system size);
    /// [`Simulation::try_new`] is the fallible form.
    pub fn new(inputs: Vec<P::Input>, crash_plan: CrashPlan) -> Self {
        match Self::try_new(inputs, crash_plan) {
            Ok(sim) => sim,
            // kset-lint: allow(panic-in-library): documented panicking convenience wrapper over try_new
            Err(e) => panic!("system size {e}"),
        }
    }

    /// Creates a simulation without failure detectors, or a
    /// [`CapacityError`] if `inputs.len()` exceeds
    /// [`crate::ProcessSet::CAPACITY`].
    pub fn try_new(inputs: Vec<P::Input>, crash_plan: CrashPlan) -> Result<Self, CapacityError> {
        Self::build(inputs, NoOracle, crash_plan)
    }
}

impl<P, O> Simulation<P, O>
where
    P: Process,
    O: Oracle<Sample = P::Fd>,
    P::Fd: std::hash::Hash,
{
    /// Creates a simulation in which every step queries the given
    /// failure-detector oracle (dimension 6 favourable).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` exceeds [`crate::ProcessSet::CAPACITY`];
    /// [`Simulation::try_with_oracle`] is the fallible form.
    pub fn with_oracle(inputs: Vec<P::Input>, oracle: O, crash_plan: CrashPlan) -> Self {
        match Self::try_with_oracle(inputs, oracle, crash_plan) {
            Ok(sim) => sim,
            // kset-lint: allow(panic-in-library): documented panicking convenience wrapper over try_with_oracle
            Err(e) => panic!("system size {e}"),
        }
    }

    /// Creates an oracle-backed simulation, or a [`CapacityError`] if
    /// `inputs.len()` exceeds [`crate::ProcessSet::CAPACITY`] — the typed
    /// form for callers (sweep grids, scenario loaders) that validate
    /// system sizes at the boundary.
    pub fn try_with_oracle(
        inputs: Vec<P::Input>,
        oracle: O,
        crash_plan: CrashPlan,
    ) -> Result<Self, CapacityError> {
        Self::build(inputs, oracle, crash_plan)
    }

    fn build(
        inputs: Vec<P::Input>,
        oracle: O,
        crash_plan: CrashPlan,
    ) -> Result<Self, CapacityError> {
        let n = inputs.len();
        if n > crate::ids::ProcessSet::CAPACITY {
            return Err(CapacityError::new(n, crate::ids::ProcessSet::CAPACITY));
        }
        let procs: Vec<P> = inputs
            .into_iter()
            .enumerate()
            .map(|(i, input)| P::init(ProcessInfo::new(ProcessId::new(i), n), input))
            .collect();
        let mut recorder = TraceRecorder::new(n);
        let mut statuses = vec![Status::Alive { local_steps: 0 }; n];
        let mut observed = FailurePattern::all_correct(n);
        for p in crash_plan.initially_dead_set() {
            statuses[p.index()] = Status::Crashed { at: Time::ZERO };
            observed.record_crash(p, Time::ZERO);
            recorder.on_crash(&CrashEvent {
                pid: p,
                time: Time::ZERO,
                after_step: false,
            });
        }
        Ok(Simulation {
            n,
            procs,
            statuses,
            decided: vec![None; n],
            decided_flags: vec![false; n],
            buffers: (0..n).map(|_| Buffer::new()).collect(),
            oracle,
            crash_plan,
            time: Time::ZERO,
            next_msg_id: 0,
            observed,
            violations: Vec::new(),
            recorder,
            total_steps: 0,
        })
    }

    /// System size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current global time.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Whether `pid` can still take steps.
    pub fn is_alive(&self, pid: ProcessId) -> bool {
        self.statuses[pid.index()].is_alive()
    }

    /// The decision of `pid`, if made.
    pub fn decision(&self, pid: ProcessId) -> Option<&P::Output> {
        self.decided[pid.index()].as_ref()
    }

    /// Per-process decisions.
    pub fn decisions(&self) -> &[Option<P::Output>] {
        &self.decided
    }

    /// The current local state of `pid` (for white-box assertions in tests).
    pub fn state(&self, pid: ProcessId) -> &P {
        &self.procs[pid.index()]
    }

    /// The pending-message buffer of `pid`.
    pub fn buffer(&self, pid: ProcessId) -> &Buffer<P::Msg> {
        &self.buffers[pid.index()]
    }

    /// The failure pattern observed so far.
    pub fn failure_pattern(&self) -> &FailurePattern {
        &self.observed
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace<P::Output> {
        self.recorder.trace()
    }

    /// The crash plan driving failures.
    pub fn crash_plan(&self) -> &CrashPlan {
        &self.crash_plan
    }

    /// Whether every process that is correct under the crash plan has
    /// decided.
    pub fn all_correct_decided(&self) -> bool {
        let faulty = self.crash_plan.faulty();
        ProcessId::all(self.n)
            .filter(|p| !faulty.contains(*p))
            .all(|p| self.decided[p.index()].is_some())
    }

    /// Executes one atomic step of `pid` with the given delivery.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessCrashed`] if `pid` already crashed, and
    /// [`SimError::InvalidProcess`] if `pid` is out of range.
    pub fn step(&mut self, pid: ProcessId, delivery: Delivery) -> Result<(), SimError> {
        self.step_observed(pid, delivery, &mut NoObserver)
    }

    /// Executes one atomic step of `pid`, reporting the step's typed
    /// events — deliveries, the detector sample, a (first) decision, the
    /// sends, the closing step summary and a possible crash — to `obs`.
    ///
    /// Every step flows through here: the unobserved [`Simulation::step`]
    /// is this method with a [`NoObserver`], monomorphized away, and the
    /// engine's own trace is assembled by an internal
    /// [`TraceRecorder`] fed from the *same* event stream, so internal and
    /// external observers can never disagree about what a step did.
    ///
    /// # Errors
    ///
    /// As [`Simulation::step`].
    pub fn step_observed<Ob>(
        &mut self,
        pid: ProcessId,
        delivery: Delivery,
        obs: &mut Ob,
    ) -> Result<(), SimError>
    where
        Ob: Observer<P::Output> + ?Sized,
    {
        if pid.index() >= self.n {
            return Err(SimError::InvalidProcess(pid));
        }
        if !self.statuses[pid.index()].is_alive() {
            return Err(SimError::ProcessCrashed(pid));
        }
        self.time = self.time.next();
        self.total_steps += 1;

        // 1. Receive: extract the chosen subset of the buffer.
        let delivered: Vec<Envelope<P::Msg>> = {
            let buf = &mut self.buffers[pid.index()];
            match delivery {
                Delivery::None => Vec::new(),
                Delivery::All => buf.take_all(),
                Delivery::AllFrom(srcs) => buf.take_all_from(srcs),
                Delivery::OldestPerSource(list) => {
                    let mut out = Vec::new();
                    for (src, count) in list {
                        out.extend(buf.take_oldest_from(src, count));
                    }
                    out
                }
                Delivery::Ids(ids) => buf.take_ids(&ids),
            }
        };

        // 2. Query the failure detector. In the unfavourable dimension-6
        // setting the oracle is `NoOracle` and the sample is `()` — still
        // passed as `Some` so that state/observation fingerprints do not
        // depend on how the simulation was constructed.
        let fd_sample: Option<P::Fd> = Some(self.oracle.sample(pid, self.time, &self.observed));
        let fd_fp = fd_sample.as_ref().map(fingerprint);

        // 3. Atomic transition.
        let info = ProcessInfo::new(pid, self.n);
        let mut effects = Effects::new(info);
        self.procs[pid.index()].step(&delivered, fd_sample.as_ref(), &mut effects);
        let (sends, decision) = effects.into_parts();

        // 4. Write-once decision discipline.
        let mut decided_now = None;
        if let Some(v) = decision {
            match &self.decided[pid.index()] {
                None => {
                    self.decided[pid.index()] = Some(v.clone());
                    self.decided_flags[pid.index()] = true;
                    decided_now = Some(v);
                }
                Some(existing) if *existing == v => {}
                Some(_) => {
                    self.violations.push(Violation::DoubleDecision {
                        pid,
                        time: self.time,
                    });
                }
            }
        }

        // 5. Crash check: does this step complete the process's final step?
        let local_steps = match &mut self.statuses[pid.index()] {
            Status::Alive { local_steps } => {
                *local_steps += 1;
                *local_steps
            }
            // kset-lint: allow(panic-in-library): invariant — step() returns Err(StepError::Crashed) before reaching this match, so the arm is dead by the liveness check above
            Status::Crashed { .. } => unreachable!("liveness checked above"),
        };
        let omission = match self.crash_plan.crash_for(pid) {
            Some((s, om)) if local_steps >= s => Some(om.clone()),
            _ => None,
        };

        // 6. Send: enqueue surviving messages, record all (with drop flag).
        // A send to an out-of-range destination can never be delivered, so
        // it is recorded as dropped — traces and fingerprints must not claim
        // a delivery that never happened.
        let mut sent: Vec<SendEvent> = Vec::with_capacity(sends.len());
        for (dst, payload) in sends {
            let id = MsgId::new(self.next_msg_id);
            self.next_msg_id += 1;
            let dropped =
                dst.index() >= self.n || omission.as_ref().is_some_and(|om| !om.delivers_to(dst));
            let payload_fp = fingerprint(&payload);
            if !dropped {
                self.buffers[dst.index()].push(Envelope::new(id, pid, dst, self.time, payload));
            }
            sent.push(SendEvent {
                time: self.time,
                src: pid,
                dst,
                id: Some(id),
                payload_fp: Some(payload_fp),
                dropped,
            });
        }

        // 7. Report the step's events — to the internal trace recorder and
        // the external observer alike, in the contract order of
        // `crate::observe`: deliveries, detector sample, decision, sends,
        // the closing step summary, and the crash if this was the final
        // step. The trace is assembled from exactly this stream.
        macro_rules! emit {
            ($method:ident, $ev:expr) => {{
                let ev = $ev;
                self.recorder.$method(&ev);
                obs.$method(&ev);
            }};
        }
        for env in &delivered {
            emit!(
                on_deliver,
                DeliverEvent {
                    time: self.time,
                    src: env.src,
                    dst: pid,
                    id: Some(env.id),
                    payload_fp: Some(env.payload_fingerprint()),
                }
            );
        }
        emit!(
            on_fd_sample,
            FdSampleEvent {
                time: self.time,
                pid,
                fd_fp,
            }
        );
        if let Some(value) = decided_now {
            emit!(
                on_decide,
                DecideEvent {
                    time: self.time,
                    pid,
                    value,
                }
            );
        }
        for ev in &sent {
            self.recorder.on_send(ev);
            obs.on_send(ev);
        }
        emit!(
            on_step,
            StepEvent {
                time: self.time,
                pid,
                local_step: local_steps,
                state_fp: fingerprint(&self.procs[pid.index()]),
                delivered: delivered.len(),
                sent: sent.len(),
            }
        );
        if omission.is_some() {
            self.statuses[pid.index()] = Status::Crashed { at: self.time };
            self.observed.record_crash(pid, self.time);
            emit!(
                on_crash,
                CrashEvent {
                    pid,
                    time: self.time,
                    after_step: true,
                }
            );
        }
        Ok(())
    }

    /// Runs under `scheduler` until every correct process decided, the
    /// scheduler stops, or `max_steps` further steps were taken.
    ///
    /// The termination policy is [`Engine::drive`]'s — this borrows `self`
    /// and the scheduler into a transient engine, so the loop exists in
    /// exactly one place.
    pub fn run<S>(&mut self, scheduler: &mut S, max_steps: u64) -> RunStatus
    where
        S: Scheduler<P::Msg> + ?Sized,
    {
        let mut engine = BorrowedSimEngine {
            sim: self,
            sched: scheduler,
            units: 0,
        };
        engine.drive(max_steps)
    }

    /// As [`Simulation::run`], reporting every run event to `obs` — the
    /// borrowed-scheduler form of
    /// [`Engine::drive_observed`].
    pub fn run_observed<S>(
        &mut self,
        scheduler: &mut S,
        max_steps: u64,
        obs: &mut dyn Observer<P::Output>,
    ) -> RunStatus
    where
        S: Scheduler<P::Msg> + ?Sized,
    {
        let mut engine = BorrowedSimEngine {
            sim: self,
            sched: scheduler,
            units: 0,
        };
        engine.drive_observed(max_steps, obs)
    }

    /// Replays to `obs` the crash events that predate any drive: the
    /// initially-dead processes, recorded at construction time. Called by
    /// [`Engine::drive_observed`] so a late-attached observer still sees
    /// the full failure pattern.
    pub fn announce_initial<Ob>(&self, obs: &mut Ob)
    where
        Ob: Observer<P::Output> + ?Sized,
    {
        for pid in self.crash_plan.initially_dead_set() {
            obs.on_crash(&CrashEvent {
                pid,
                time: Time::ZERO,
                after_step: false,
            });
        }
    }

    /// One scheduler-driven unit: ask `scheduler` for a choice and apply it.
    /// Returns `false` when the scheduler has no further moves. A scheduler
    /// picking a crashed process still consumes the unit (adversaries built
    /// from plans may race with plan-driven crashes; they get to observe the
    /// new state on the next call).
    ///
    /// `pub(crate)` so the discrete-event substrate
    /// ([`crate::des::DesEngine`]) can embed unit schedulers tick-for-tick,
    /// guaranteeing that embedded runs replay the exact `SimEngine` step
    /// sequence.
    pub(crate) fn step_once<S, Ob>(&mut self, scheduler: &mut S, obs: &mut Ob) -> bool
    where
        S: Scheduler<P::Msg> + ?Sized,
        Ob: Observer<P::Output> + ?Sized,
    {
        let choice = {
            let view = SimView {
                n: self.n,
                time: self.time,
                statuses: &self.statuses,
                decided: &self.decided_flags,
                buffers: &self.buffers,
            };
            scheduler.next(&view)
        };
        let Some(Choice { pid, delivery }) = choice else {
            return false;
        };
        let _ = self.step_observed(pid, delivery, obs);
        true
    }

    /// Produces the report of the run so far (cloning the trace).
    pub fn report(&self, stop: StopReason) -> RunReport<P::Output> {
        let decisions = self.decided.clone();
        let distinct_decisions: BTreeSet<P::Output> = decisions.iter().flatten().cloned().collect();
        RunReport {
            decisions,
            distinct_decisions,
            failure_pattern: self.observed.clone(),
            violations: self.violations.clone(),
            stop,
            steps: self.total_steps,
            trace: self.recorder.trace().clone(),
        }
    }

    /// Runs to completion under `scheduler` and returns the report.
    pub fn run_to_report<S>(&mut self, scheduler: &mut S, max_steps: u64) -> RunReport<P::Output>
    where
        S: Scheduler<P::Msg> + ?Sized,
    {
        let status = self.run(scheduler, max_steps);
        self.report(status.stop)
    }

    /// A fingerprint of the whole configuration: local states, decisions,
    /// liveness, and buffered messages. Two configurations with equal
    /// fingerprints continue identically under identical future schedules
    /// (up to hash collision), which is what the exhaustive explorer's
    /// state deduplication relies on.
    pub fn config_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (i, p) in self.procs.iter().enumerate() {
            i.hash(&mut h);
            p.hash(&mut h);
            self.statuses[i].is_alive().hash(&mut h);
            self.decided_flags[i].hash(&mut h);
            // Buffer contents: (src, payload) multiset in FIFO order.
            for env in self.buffers[i].iter() {
                env.src.hash(&mut h);
                env.payload.hash(&mut h);
            }
        }
        h.finish()
    }
}

impl<P, O> Clone for Simulation<P, O>
where
    P: Process,
    O: Oracle<Sample = P::Fd> + Clone,
{
    fn clone(&self) -> Self {
        Simulation {
            n: self.n,
            procs: self.procs.clone(),
            statuses: self.statuses.clone(),
            decided: self.decided.clone(),
            decided_flags: self.decided_flags.clone(),
            buffers: self.buffers.clone(),
            oracle: self.oracle.clone(),
            crash_plan: self.crash_plan.clone(),
            time: self.time,
            next_msg_id: self.next_msg_id,
            observed: self.observed.clone(),
            violations: self.violations.clone(),
            recorder: self.recorder.clone(),
            total_steps: self.total_steps,
        }
    }
}

/// One execution substrate: something that advances a distributed
/// computation unit by unit and reports decisions.
///
/// The workspace has two substrates — the step-level [`Simulation`] (driven
/// through [`SimEngine`], which pairs it with a scheduler) and the lock-step
/// round executor of `kset-core::sync` (its `LockStep` newtype). Runners,
/// the experiment harness and the benches are written against this trait so
/// either substrate plugs in.
///
/// A *unit* is the substrate's natural quantum: one process step for the
/// simulator, one full round for the lock-step executor.
pub trait Engine {
    /// The decision value type.
    type Output: Clone + Ord;

    /// System size `n`.
    fn n(&self) -> usize;

    /// Executes one unit of work. Returns `false` when the substrate has no
    /// further moves (scheduler exhausted / all rounds executed).
    fn advance(&mut self) -> bool;

    /// Executes one unit of work, reporting its typed run events to `obs`
    /// (see [`crate::observe`] for the per-substrate emission contract).
    ///
    /// The default ignores the observer — a substrate that has not grown
    /// observation support still drives correctly, it just emits nothing.
    /// Both workspace substrates override this.
    fn advance_observed(&mut self, obs: &mut dyn Observer<Self::Output>) -> bool {
        let _ = obs;
        self.advance()
    }

    /// Reports to `obs` the events that predate any drive (e.g. the
    /// step substrate's initially-dead crashes, recorded at construction).
    /// Called once by [`Engine::drive_observed`] before the first unit, so
    /// an observer attached late still sees the full failure pattern. The
    /// default announces nothing.
    fn announce_initial(&self, obs: &mut dyn Observer<Self::Output>) {
        let _ = obs;
    }

    /// Whether the substrate reached its goal: every correct process
    /// decided (plus, for the lock-step executor, every scheduled round
    /// executed). [`Engine::drive`] maps this to
    /// [`StopReason::AllCorrectDecided`].
    fn done(&self) -> bool;

    /// Units executed over the engine's lifetime.
    fn units(&self) -> u64;

    /// Snapshot of the per-process decisions.
    fn decisions(&self) -> Vec<Option<Self::Output>>;

    /// The distinct decision values so far — the quantity k-Agreement
    /// bounds.
    fn distinct_decisions(&self) -> BTreeSet<Self::Output> {
        self.decisions().into_iter().flatten().collect()
    }

    /// Drives the engine until [`Engine::done`], the substrate runs out of
    /// moves, or `max_units` further units were executed.
    ///
    /// Deliberately *not* routed through [`Engine::drive_observed`] with a
    /// [`NoObserver`]: the unobserved loop calls [`Engine::advance`]
    /// directly, so substrates whose internal step is generic over the
    /// observer (the simulator's `step_observed`) monomorphize the no-op
    /// observer away instead of paying a virtual call per event. The
    /// `e7_observe` bench group pins the two paths at parity.
    fn drive(&mut self, max_units: u64) -> RunStatus {
        let mut steps = 0;
        loop {
            if self.done() {
                return RunStatus {
                    steps,
                    stop: StopReason::AllCorrectDecided,
                };
            }
            if steps >= max_units {
                return RunStatus {
                    steps,
                    stop: StopReason::StepLimit,
                };
            }
            if !self.advance() {
                return RunStatus {
                    steps,
                    stop: StopReason::SchedulerDone,
                };
            }
            steps += 1;
        }
    }

    /// Drives the engine exactly as [`Engine::drive`] does, reporting
    /// every run event to `obs`: first [`Engine::announce_initial`], then
    /// the per-unit events of [`Engine::advance_observed`], and finally
    /// one [`Observer::on_halt`] carrying the drive's status — emitted on
    /// every exit path, so an observer can always bracket a run.
    ///
    /// This is the uniform observation entry point: the same call drives
    /// the step-level simulator and the round-level lock-step executor,
    /// which is what lets runners, the differential harness and the sweep
    /// workers thread one observer through either substrate.
    fn drive_observed(
        &mut self,
        max_units: u64,
        obs: &mut dyn Observer<Self::Output>,
    ) -> RunStatus {
        self.announce_initial(obs);
        let mut steps = 0;
        let status = loop {
            if self.done() {
                break RunStatus {
                    steps,
                    stop: StopReason::AllCorrectDecided,
                };
            }
            if steps >= max_units {
                break RunStatus {
                    steps,
                    stop: StopReason::StepLimit,
                };
            }
            if !self.advance_observed(obs) {
                break RunStatus {
                    steps,
                    stop: StopReason::SchedulerDone,
                };
            }
            steps += 1;
        };
        obs.on_halt(&HaltEvent {
            status,
            units: self.units(),
        });
        status
    }
}

/// Transient [`Engine`] over a *borrowed* simulation and scheduler — the
/// engine form of [`Simulation::run`], so the termination policy of
/// [`Engine::drive`] is the only run loop in the crate.
struct BorrowedSimEngine<'a, P, O, S>
where
    P: Process,
    O: Oracle<Sample = P::Fd>,
    S: Scheduler<P::Msg> + ?Sized,
{
    sim: &'a mut Simulation<P, O>,
    sched: &'a mut S,
    units: u64,
}

impl<P, O, S> Engine for BorrowedSimEngine<'_, P, O, S>
where
    P: Process,
    O: Oracle<Sample = P::Fd>,
    P::Fd: std::hash::Hash,
    S: Scheduler<P::Msg> + ?Sized,
{
    type Output = P::Output;

    fn n(&self) -> usize {
        self.sim.n()
    }

    fn advance(&mut self) -> bool {
        let progressed = self.sim.step_once(self.sched, &mut NoObserver);
        if progressed {
            self.units += 1;
        }
        progressed
    }

    fn advance_observed(&mut self, obs: &mut dyn Observer<P::Output>) -> bool {
        let progressed = if obs.observes_events() {
            self.sim.step_once(self.sched, obs)
        } else {
            self.sim.step_once(self.sched, &mut NoObserver)
        };
        if progressed {
            self.units += 1;
        }
        progressed
    }

    fn announce_initial(&self, obs: &mut dyn Observer<P::Output>) {
        self.sim.announce_initial(obs);
    }

    fn done(&self) -> bool {
        self.sim.all_correct_decided()
    }

    fn units(&self) -> u64 {
        self.units
    }

    fn decisions(&self) -> Vec<Option<P::Output>> {
        self.sim.decisions().to_vec()
    }
}

/// The step-level substrate behind the [`Engine`] trait: a [`Simulation`]
/// paired with the scheduler that drives it.
///
/// # Examples
///
/// ```
/// use kset_sim::sched::round_robin::RoundRobin;
/// # use kset_sim::{CrashPlan, Effects, Envelope, Process, ProcessInfo};
/// use kset_sim::{Engine, SimEngine, Simulation, StopReason};
/// # #[derive(Debug, Clone, Hash)]
/// # struct Echo(u32, bool);
/// # impl Process for Echo {
/// #     type Msg = u32;
/// #     type Input = u32;
/// #     type Output = u32;
/// #     type Fd = ();
/// #     fn init(_info: ProcessInfo, input: u32) -> Self { Echo(input, false) }
/// #     fn step(&mut self, _d: &[Envelope<u32>], _fd: Option<&()>, e: &mut Effects<u32, u32>) {
/// #         e.decide(self.0);
/// #     }
/// # }
///
/// let sim: Simulation<Echo, _> = Simulation::new(vec![7, 7], CrashPlan::none());
/// let mut engine = SimEngine::new(sim, RoundRobin::new());
/// let status = engine.drive(100);
/// assert_eq!(status.stop, StopReason::AllCorrectDecided);
/// assert_eq!(engine.distinct_decisions().len(), 1);
/// ```
#[derive(Debug)]
pub struct SimEngine<P, O, S>
where
    P: Process,
    O: Oracle<Sample = P::Fd>,
{
    sim: Simulation<P, O>,
    sched: S,
    units: u64,
}

impl<P, O, S> SimEngine<P, O, S>
where
    P: Process,
    O: Oracle<Sample = P::Fd>,
    P::Fd: std::hash::Hash,
    S: Scheduler<P::Msg>,
{
    /// Pairs a simulation with its scheduler.
    pub fn new(sim: Simulation<P, O>, sched: S) -> Self {
        SimEngine {
            sim,
            sched,
            units: 0,
        }
    }

    /// Read access to the wrapped simulation.
    pub fn simulation(&self) -> &Simulation<P, O> {
        &self.sim
    }

    /// Unwraps the engine back into the simulation.
    pub fn into_simulation(self) -> Simulation<P, O> {
        self.sim
    }

    /// The full run report of the wrapped simulation (trace included).
    pub fn report(&self, stop: StopReason) -> RunReport<P::Output> {
        self.sim.report(stop)
    }

    /// Drives to completion and returns the report — the [`Engine`]
    /// counterpart of [`Simulation::run_to_report`].
    pub fn drive_to_report(&mut self, max_units: u64) -> RunReport<P::Output> {
        let status = self.drive(max_units);
        self.report(status.stop)
    }
}

impl<P, O, S> Engine for SimEngine<P, O, S>
where
    P: Process,
    O: Oracle<Sample = P::Fd>,
    P::Fd: std::hash::Hash,
    S: Scheduler<P::Msg>,
{
    type Output = P::Output;

    fn n(&self) -> usize {
        self.sim.n()
    }

    fn advance(&mut self) -> bool {
        let progressed = self.sim.step_once(&mut self.sched, &mut NoObserver);
        if progressed {
            self.units += 1;
        }
        progressed
    }

    fn advance_observed(&mut self, obs: &mut dyn Observer<P::Output>) -> bool {
        let progressed = if obs.observes_events() {
            self.sim.step_once(&mut self.sched, obs)
        } else {
            self.sim.step_once(&mut self.sched, &mut NoObserver)
        };
        if progressed {
            self.units += 1;
        }
        progressed
    }

    fn announce_initial(&self, obs: &mut dyn Observer<P::Output>) {
        self.sim.announce_initial(obs);
    }

    fn done(&self) -> bool {
        self.sim.all_correct_decided()
    }

    fn units(&self) -> u64 {
        self.units
    }

    fn decisions(&self) -> Vec<Option<P::Output>> {
        self.sim.decisions().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::Omission;
    use crate::process::{Effects, ProcessInfo};
    use crate::trace::TraceEvent;

    /// A toy process: broadcasts its input once, decides the minimum value
    /// it has seen once it heard from everyone alive it expects (here:
    /// simply after receiving `quorum` values including its own).
    #[derive(Debug, Clone, Hash)]
    struct MinEcho {
        info_id: usize,
        n: usize,
        quorum: usize,
        seen: Vec<u64>,
        sent: bool,
        decided: bool,
    }

    impl Process for MinEcho {
        type Msg = u64;
        type Input = u64;
        type Output = u64;
        type Fd = ();

        fn init(info: ProcessInfo, input: u64) -> Self {
            MinEcho {
                info_id: info.id.index(),
                n: info.n,
                quorum: info.n,
                seen: vec![input],
                sent: false,
                decided: false,
            }
        }

        fn step(
            &mut self,
            delivered: &[Envelope<u64>],
            _fd: Option<&()>,
            effects: &mut Effects<u64, u64>,
        ) {
            if !self.sent {
                self.sent = true;
                effects.broadcast(self.seen[0]);
            }
            for env in delivered {
                self.seen.push(env.payload);
            }
            if !self.decided && self.seen.len() > self.n {
                // own + n broadcast copies (incl. self-delivery).
                self.decided = true;
                effects.decide(*self.seen.iter().min().unwrap());
            }
        }
    }

    fn run_min_echo(inputs: Vec<u64>, plan: CrashPlan) -> RunReport<u64> {
        let mut sim: Simulation<MinEcho, NoOracle> = Simulation::new(inputs, plan);
        let mut rr = crate::sched::round_robin::RoundRobin::new();
        sim.run_to_report(&mut rr, 10_000)
    }

    #[test]
    fn all_correct_processes_decide_the_minimum() {
        let report = run_min_echo(vec![5, 3, 9], CrashPlan::none());
        assert!(report.all_correct_decided());
        assert_eq!(report.distinct_decisions.len(), 1);
        assert_eq!(report.decisions, vec![Some(3), Some(3), Some(3)]);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn initially_dead_process_never_steps() {
        let plan = CrashPlan::initially_dead([ProcessId::new(2)]);
        let mut sim: Simulation<MinEcho, NoOracle> = Simulation::new(vec![5, 3, 9], plan);
        assert!(!sim.is_alive(ProcessId::new(2)));
        let err = sim.step(ProcessId::new(2), Delivery::All).unwrap_err();
        assert_eq!(err, SimError::ProcessCrashed(ProcessId::new(2)));
        // The quorum of n values can never be reached: p3's input is lost.
        let mut rr = crate::sched::round_robin::RoundRobin::new();
        let status = sim.run(&mut rr, 500);
        assert_eq!(status.stop, StopReason::StepLimit);
        let report = sim.report(status.stop);
        assert_eq!(report.failure_pattern.faulty(), [ProcessId::new(2)].into());
    }

    #[test]
    fn scheduled_crash_applies_send_omission() {
        // p1 crashes after its first step, dropping all of its broadcast.
        let plan = CrashPlan::none().with_crash_after(ProcessId::new(0), 1, Omission::All);
        let mut sim: Simulation<MinEcho, NoOracle> = Simulation::new(vec![1, 2, 3], plan);
        sim.step(ProcessId::new(0), Delivery::None).unwrap();
        assert!(!sim.is_alive(ProcessId::new(0)));
        // Nothing of p1's broadcast reached any buffer.
        for p in ProcessId::all(3) {
            assert_eq!(
                sim.buffer(p).len(),
                0,
                "dropped broadcast must not be buffered"
            );
        }
        let fp = sim.failure_pattern();
        assert_eq!(fp.crash_time(ProcessId::new(0)), Some(Time::new(1)));
    }

    #[test]
    fn scheduled_crash_partial_omission() {
        // p1 crashes in its first step but its message to p2 survives.
        let keep: Omission = Omission::KeepOnlyTo([ProcessId::new(1)].into());
        let plan = CrashPlan::none().with_crash_after(ProcessId::new(0), 1, keep);
        let mut sim: Simulation<MinEcho, NoOracle> = Simulation::new(vec![1, 2, 3], plan);
        sim.step(ProcessId::new(0), Delivery::None).unwrap();
        assert_eq!(sim.buffer(ProcessId::new(1)).len(), 1);
        assert_eq!(sim.buffer(ProcessId::new(2)).len(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the ProcessSet capacity")]
    fn oversized_system_rejected_at_construction() {
        // The 128-process cap must fail fast at the system boundary, not
        // deep inside a set operation mid-run.
        let _: Simulation<MinEcho, NoOracle> = Simulation::new(
            vec![0; crate::ids::ProcessSet::CAPACITY + 1],
            CrashPlan::none(),
        );
    }

    #[test]
    fn capacity_sized_system_is_accepted() {
        let sim: Simulation<MinEcho, NoOracle> =
            Simulation::new(vec![0; crate::ids::ProcessSet::CAPACITY], CrashPlan::none());
        assert_eq!(sim.n(), crate::ids::ProcessSet::CAPACITY);
    }

    #[test]
    fn oversized_system_is_a_typed_error_on_try_new() {
        let cap = crate::ids::ProcessSet::CAPACITY;
        let err = Simulation::<MinEcho, NoOracle>::try_new(vec![0; cap + 1], CrashPlan::none())
            .unwrap_err();
        assert_eq!(err.requested(), cap + 1);
        assert_eq!(err.capacity(), cap);
        assert!(
            Simulation::<MinEcho, NoOracle>::try_new(vec![0; cap], CrashPlan::none()).is_ok(),
            "exactly-at-capacity systems construct"
        );
    }

    #[test]
    fn invalid_process_is_an_error() {
        let mut sim: Simulation<MinEcho, NoOracle> = Simulation::new(vec![1], CrashPlan::none());
        let err = sim.step(ProcessId::new(5), Delivery::All).unwrap_err();
        assert_eq!(err, SimError::InvalidProcess(ProcessId::new(5)));
    }

    #[test]
    fn trace_records_steps_and_decisions() {
        let report = run_min_echo(vec![4, 4], CrashPlan::none());
        assert!(report.trace.step_count() > 0);
        let decisions = report.trace.decisions();
        assert_eq!(decisions, vec![Some(4), Some(4)]);
        assert_eq!(report.distinct_decisions.len(), 1);
    }

    #[test]
    fn time_advances_one_per_step() {
        let mut sim: Simulation<MinEcho, NoOracle> = Simulation::new(vec![1, 2], CrashPlan::none());
        assert_eq!(sim.time(), Time::ZERO);
        sim.step(ProcessId::new(0), Delivery::None).unwrap();
        assert_eq!(sim.time(), Time::new(1));
        sim.step(ProcessId::new(1), Delivery::None).unwrap();
        assert_eq!(sim.time(), Time::new(2));
    }

    /// A misbehaving process that decides a different value every step.
    #[derive(Debug, Clone, Hash)]
    struct FlipFlop {
        step: u64,
    }

    impl Process for FlipFlop {
        type Msg = u8;
        type Input = ();
        type Output = u64;
        type Fd = ();

        fn init(_info: ProcessInfo, _input: ()) -> Self {
            FlipFlop { step: 0 }
        }

        fn step(
            &mut self,
            _delivered: &[Envelope<u8>],
            _fd: Option<&()>,
            effects: &mut Effects<u8, u64>,
        ) {
            self.step += 1;
            effects.decide(self.step);
        }
    }

    #[test]
    fn double_decision_is_recorded_not_fatal() {
        let mut sim: Simulation<FlipFlop, NoOracle> = Simulation::new(vec![()], CrashPlan::none());
        sim.step(ProcessId::new(0), Delivery::None).unwrap();
        sim.step(ProcessId::new(0), Delivery::None).unwrap();
        sim.step(ProcessId::new(0), Delivery::None).unwrap();
        let report = sim.report(StopReason::SchedulerDone);
        // First decision wins; each later conflicting decide is recorded.
        assert_eq!(report.decisions, vec![Some(1)]);
        assert_eq!(report.violations.len(), 2);
        assert!(matches!(
            report.violations[0],
            Violation::DoubleDecision { time, .. } if time == Time::new(2)
        ));
    }

    #[test]
    fn config_fingerprint_tracks_configuration() {
        let mut a: Simulation<MinEcho, NoOracle> = Simulation::new(vec![1, 2], CrashPlan::none());
        let b: Simulation<MinEcho, NoOracle> = Simulation::new(vec![1, 2], CrashPlan::none());
        assert_eq!(
            a.config_fingerprint(),
            b.config_fingerprint(),
            "equal initials"
        );
        a.step(ProcessId::new(0), Delivery::None).unwrap();
        assert_ne!(a.config_fingerprint(), b.config_fingerprint(), "diverged");
        // Order-insensitive confluence: stepping p1 then p2 with no
        // deliveries equals stepping p2 then p1 (states and buffers agree).
        let mut x: Simulation<MinEcho, NoOracle> = Simulation::new(vec![1, 2], CrashPlan::none());
        let mut y: Simulation<MinEcho, NoOracle> = Simulation::new(vec![1, 2], CrashPlan::none());
        x.step(ProcessId::new(0), Delivery::None).unwrap();
        x.step(ProcessId::new(1), Delivery::None).unwrap();
        y.step(ProcessId::new(1), Delivery::None).unwrap();
        y.step(ProcessId::new(0), Delivery::None).unwrap();
        assert_eq!(x.config_fingerprint(), y.config_fingerprint());
    }

    #[test]
    fn cloned_simulation_diverges_independently() {
        let mut a: Simulation<MinEcho, NoOracle> =
            Simulation::new(vec![1, 2, 3], CrashPlan::none());
        a.step(ProcessId::new(0), Delivery::None).unwrap();
        let mut b = a.clone();
        assert_eq!(a.config_fingerprint(), b.config_fingerprint());
        b.step(ProcessId::new(1), Delivery::All).unwrap();
        assert_ne!(a.config_fingerprint(), b.config_fingerprint());
        assert_eq!(a.time(), Time::new(1));
        assert_eq!(b.time(), Time::new(2));
    }

    #[test]
    fn sim_engine_matches_direct_run() {
        // The Engine-driven execution must be step-for-step identical to
        // Simulation::run under the same scheduler.
        let mut direct: Simulation<MinEcho, NoOracle> =
            Simulation::new(vec![5, 3, 9], CrashPlan::none());
        let status = direct.run(&mut crate::sched::round_robin::RoundRobin::new(), 10_000);

        let sim: Simulation<MinEcho, NoOracle> = Simulation::new(vec![5, 3, 9], CrashPlan::none());
        let mut engine = SimEngine::new(sim, crate::sched::round_robin::RoundRobin::new());
        let engine_status = engine.drive(10_000);

        assert_eq!(status, engine_status);
        assert_eq!(engine.units(), status.steps);
        assert_eq!(Engine::n(&engine), 3);
        assert!(engine.done());
        assert_eq!(engine.decisions(), direct.decisions().to_vec());
        assert_eq!(engine.distinct_decisions().len(), 1);
        let report = engine.report(engine_status.stop);
        assert_eq!(report.decisions, direct.report(status.stop).decisions);
        assert_eq!(
            engine.into_simulation().config_fingerprint(),
            direct.config_fingerprint()
        );
    }

    #[test]
    fn sim_engine_reports_scheduler_exhaustion() {
        let sim: Simulation<MinEcho, NoOracle> = Simulation::new(vec![1, 2], CrashPlan::none());
        // A scheduler with no moves at all.
        let empty = |_: &SimView<'_, u64>| -> Option<Choice> { None };
        let mut engine = SimEngine::new(sim, empty);
        let status = engine.drive(100);
        assert_eq!(status.stop, StopReason::SchedulerDone);
        assert_eq!(status.steps, 0);
        assert!(!engine.done());
    }

    /// A process that sends one message past the end of the system.
    #[derive(Debug, Clone, Hash)]
    struct SendsOutOfRange;

    impl Process for SendsOutOfRange {
        type Msg = u8;
        type Input = ();
        type Output = u8;
        type Fd = ();

        fn init(_info: ProcessInfo, _input: ()) -> Self {
            SendsOutOfRange
        }

        fn step(
            &mut self,
            _delivered: &[Envelope<u8>],
            _fd: Option<&()>,
            effects: &mut Effects<u8, u8>,
        ) {
            effects.send(ProcessId::new(9), 1); // no such process
            effects.send(ProcessId::new(0), 2); // in range
        }
    }

    #[test]
    fn out_of_range_send_is_recorded_as_dropped() {
        // Regression: sends to destinations outside the system were
        // discarded but recorded with `dropped: false`, so traces claimed a
        // delivery that never happened.
        let mut sim: Simulation<SendsOutOfRange, NoOracle> =
            Simulation::new(vec![(), ()], CrashPlan::none());
        sim.step(ProcessId::new(0), Delivery::None).unwrap();
        let step = match &sim.trace().events()[0] {
            TraceEvent::Step(s) => s,
            other => panic!("expected a step record, got {other:?}"),
        };
        assert_eq!(step.sent.len(), 2, "both sends are recorded");
        let oob = &step.sent[0];
        assert_eq!(oob.dst, ProcessId::new(9));
        assert!(oob.dropped, "an undeliverable send must be marked dropped");
        let ok = &step.sent[1];
        assert_eq!(ok.dst, ProcessId::new(0));
        assert!(!ok.dropped);
        // The in-range message really is buffered; nothing else is.
        assert_eq!(sim.buffer(ProcessId::new(0)).len(), 1);
        assert_eq!(sim.buffer(ProcessId::new(1)).len(), 0);
    }

    #[test]
    fn external_trace_recorder_reproduces_internal_trace() {
        // The engine's own trace is one Observer impl fed from the same
        // event stream as any external observer — so an externally
        // attached TraceRecorder must assemble the *identical* trace,
        // crash events, drop flags and fingerprints included.
        let plan = CrashPlan::initially_dead([ProcessId::new(2)]).with_crash_after(
            ProcessId::new(0),
            2,
            Omission::All,
        );
        let sim: Simulation<MinEcho, NoOracle> = Simulation::new(vec![5, 3, 9, 7], plan);
        let mut engine = SimEngine::new(sim, crate::sched::round_robin::RoundRobin::new());
        let mut external = TraceRecorder::new(4);
        engine.drive_observed(500, &mut external);
        assert_eq!(
            external.trace().events(),
            engine.simulation().trace().events()
        );
        assert_eq!(
            external.trace().failure_pattern(),
            *engine.simulation().failure_pattern()
        );
    }

    #[test]
    fn drive_observed_matches_drive_and_emits_halt() {
        let sim: Simulation<MinEcho, NoOracle> = Simulation::new(vec![5, 3, 9], CrashPlan::none());
        let mut plain = SimEngine::new(sim.clone(), crate::sched::round_robin::RoundRobin::new());
        let plain_status = plain.drive(10_000);

        let mut observed = SimEngine::new(sim, crate::sched::round_robin::RoundRobin::new());
        let mut counter: crate::observe::EventCounter<u64> = crate::observe::EventCounter::new();
        let observed_status = observed.drive_observed(10_000, &mut counter);

        assert_eq!(plain_status, observed_status);
        assert_eq!(plain.decisions(), observed.decisions());
        let counts = counter.counts();
        assert_eq!(counts.halts, 1);
        assert_eq!(counts.steps, observed_status.steps);
        assert_eq!(counts.decides, 3);
        assert_eq!(counts.fd_samples, counts.steps, "one sample per step");
        assert_eq!(
            counts.transmitted(),
            counts.delivers,
            "a crash-free run delivers every transmitted message"
        );
        assert_eq!(
            counter.decisions_by_process().values().copied().min(),
            Some(3)
        );
    }

    #[test]
    fn initially_dead_crashes_are_announced_to_late_observers() {
        // Initial deaths happen at construction, before any observer can
        // attach; drive_observed replays them so the observer still sees
        // the full failure pattern.
        let plan = CrashPlan::initially_dead([ProcessId::new(0), ProcessId::new(2)]);
        let sim: Simulation<MinEcho, NoOracle> = Simulation::new(vec![1, 2, 3], plan);
        let mut engine = SimEngine::new(sim, crate::sched::round_robin::RoundRobin::new());
        let mut counter: crate::observe::EventCounter<u64> = crate::observe::EventCounter::new();
        engine.drive_observed(50, &mut counter);
        assert_eq!(counter.counts().crashes, 2);
    }

    #[test]
    fn delivery_variants_consume_expected_messages() {
        let mut sim: Simulation<MinEcho, NoOracle> =
            Simulation::new(vec![1, 2, 3], CrashPlan::none());
        // Everyone broadcasts in their first step.
        for p in ProcessId::all(3) {
            sim.step(p, Delivery::None).unwrap();
        }
        assert_eq!(sim.buffer(ProcessId::new(0)).len(), 3);
        // Deliver only p2's message to p1.
        sim.step(
            ProcessId::new(0),
            Delivery::AllFrom([ProcessId::new(1)].into()),
        )
        .unwrap();
        assert_eq!(sim.buffer(ProcessId::new(0)).len(), 2);
        // Deliver oldest 1 from p3.
        sim.step(
            ProcessId::new(0),
            Delivery::OldestPerSource(vec![(ProcessId::new(2), 1)]),
        )
        .unwrap();
        assert_eq!(sim.buffer(ProcessId::new(0)).len(), 1);
    }
}
