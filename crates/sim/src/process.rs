//! The process abstraction: deterministic state machines with write-once
//! outputs.
//!
//! Section II of the paper models every process as a deterministic state
//! machine whose local state incorporates an input value `x_p` and a
//! write-once output value `y_p` (initially `⊥`). A *step* atomically takes
//! the current local state, a (possibly empty) subset of buffered messages,
//! and — when failure detectors are available — a failure-detector value,
//! and produces a new local state; a deterministic message sending function
//! determines the messages emitted by the step.
//!
//! [`Process`] captures exactly that interface: [`Process::step`] receives
//! the delivered envelopes and the optional failure-detector sample and
//! records sends/broadcasts/decisions through [`Effects`]. The `Hash` bound
//! supplies state fingerprints for the indistinguishability machinery
//! (Definition 2); determinism is the implementor's obligation (no interior
//! randomness, no wall-clock access).

use std::fmt;
use std::hash::Hash;

use crate::ids::{ProcessId, ProcessSet};
use crate::message::Envelope;

/// Static information a process learns at initialization: its own identity
/// and the system size `n = |Π|`.
///
/// Note that under *restriction* (Definition 1 of the paper) the restricted
/// algorithm still uses the full-system `n`, even though the live subsystem
/// `D` may be much smaller — `ProcessInfo` therefore always carries the
/// original `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessInfo {
    /// This process's identifier.
    pub id: ProcessId,
    /// The system size `|Π|` the algorithm was designed for.
    pub n: usize,
}

impl ProcessInfo {
    /// Creates process info.
    pub fn new(id: ProcessId, n: usize) -> Self {
        ProcessInfo { id, n }
    }

    /// Iterates over all process ids of the system.
    pub fn peers(&self) -> impl Iterator<Item = ProcessId> {
        ProcessId::all(self.n)
    }

    /// Iterates over all process ids except this process.
    pub fn others(&self) -> impl Iterator<Item = ProcessId> + '_ {
        let me = self.id;
        ProcessId::all(self.n).filter(move |p| *p != me)
    }
}

/// A deterministic message-passing state machine.
///
/// Implementations must be *deterministic*: given the same sequence of
/// delivered message payloads and failure-detector samples, `step` must
/// drive the state through the same sequence of values. The engine checks
/// the write-once discipline of decisions and records violations.
///
/// The `Hash` supertrait provides the state fingerprint recorded in traces
/// and compared by the indistinguishability checker; `Clone` enables
/// snapshotting configurations.
pub trait Process: Clone + fmt::Debug + Hash + 'static {
    /// The message payload type of the algorithm.
    type Msg: Clone + fmt::Debug + PartialEq + Hash + 'static;
    /// The proposal/input type (`x_p`).
    type Input: Clone + fmt::Debug;
    /// The decision/output type (`y_p`).
    type Output: Clone + fmt::Debug + Eq + Ord + Hash + 'static;
    /// The failure-detector sample type; use `()` when the model has no
    /// failure detectors (the "unfavourable" setting of dimension 6).
    type Fd: Clone + fmt::Debug;

    /// Constructs the initial state of a process with the given identity and
    /// proposal value. All other state components must be fixed values
    /// (Section II: "all other components of the local state are initialized
    /// to some fixed value").
    fn init(info: ProcessInfo, input: Self::Input) -> Self;

    /// Executes one atomic step: consume the delivered messages (possibly
    /// none) and the failure-detector sample (if the model provides one),
    /// update the local state, and record sends and an optional decision in
    /// `effects`.
    fn step(
        &mut self,
        delivered: &[Envelope<Self::Msg>],
        fd: Option<&Self::Fd>,
        effects: &mut Effects<Self::Msg, Self::Output>,
    );
}

/// Collector for the outputs of a single step: messages to send and an
/// optional decision.
///
/// The engine turns recorded sends into buffered envelopes after the step
/// completes, which models the paper's atomic receive/compute/send step.
/// Whether a *broadcast* is atomic with respect to crashes is a property of
/// the failure model, not of this type: a crashing process may have a subset
/// of its final step's sends dropped (see [`crate::failure::Omission`]).
#[derive(Debug)]
pub struct Effects<M, V> {
    info: ProcessInfo,
    sends: Vec<(ProcessId, M)>,
    decision: Option<V>,
}

impl<M: Clone, V> Effects<M, V> {
    /// Creates an empty effects collector for the given process.
    pub fn new(info: ProcessInfo) -> Self {
        Effects {
            info,
            sends: Vec::new(),
            decision: None,
        }
    }

    /// Records a point-to-point send.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Records a send of `msg` to every process in the system, **including
    /// the sender itself** (self-delivery goes through the buffer and may be
    /// delayed, as in the FLP model).
    pub fn broadcast(&mut self, msg: M) {
        for p in ProcessId::all(self.info.n) {
            self.sends.push((p, msg.clone()));
        }
    }

    /// Records a send of `msg` to every process except the sender.
    pub fn broadcast_others(&mut self, msg: M) {
        let me = self.info.id;
        for p in ProcessId::all(self.info.n).filter(|p| *p != me) {
            self.sends.push((p, msg.clone()));
        }
    }

    /// Records a send of `msg` to every process in `targets`.
    pub fn multicast(&mut self, targets: ProcessSet, msg: M) {
        for p in targets {
            self.sends.push((p, msg.clone()));
        }
    }

    /// Records the (write-once) decision of this step.
    ///
    /// The engine enforces the write-once discipline: a second decision with
    /// the same value is ignored; a second decision with a *different* value
    /// is recorded as a protocol violation in the run report. Algorithm code
    /// may therefore call this defensively.
    pub fn decide(&mut self, value: V) {
        if self.decision.is_none() {
            self.decision = Some(value);
        }
    }

    /// Whether a decision was recorded during this step.
    pub fn has_decision(&self) -> bool {
        self.decision.is_some()
    }

    /// The identity/system info of the stepping process.
    pub fn info(&self) -> ProcessInfo {
        self.info
    }

    /// Consumes the collector, returning the recorded sends and decision.
    pub fn into_parts(self) -> (Vec<(ProcessId, M)>, Option<V>) {
        (self.sends, self.decision)
    }

    /// Read-only view of the sends recorded so far.
    pub fn sends(&self) -> &[(ProcessId, M)] {
        &self.sends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Eff = Effects<u32, u32>;

    fn info(id: usize, n: usize) -> ProcessInfo {
        ProcessInfo::new(ProcessId::new(id), n)
    }

    #[test]
    fn broadcast_reaches_all_including_self() {
        let mut e = Eff::new(info(1, 4));
        e.broadcast(7);
        let (sends, _) = e.into_parts();
        let dests: Vec<_> = sends.iter().map(|(p, _)| p.index()).collect();
        assert_eq!(dests, vec![0, 1, 2, 3]);
    }

    #[test]
    fn broadcast_others_excludes_self() {
        let mut e = Eff::new(info(1, 4));
        e.broadcast_others(7);
        let (sends, _) = e.into_parts();
        let dests: Vec<_> = sends.iter().map(|(p, _)| p.index()).collect();
        assert_eq!(dests, vec![0, 2, 3]);
    }

    #[test]
    fn multicast_targets_only_listed() {
        let mut e = Eff::new(info(0, 5));
        let targets: ProcessSet = [ProcessId::new(2), ProcessId::new(4)].into();
        e.multicast(targets, 9);
        let (sends, _) = e.into_parts();
        assert_eq!(sends.len(), 2);
    }

    #[test]
    fn decide_is_write_once_within_a_step() {
        let mut e = Eff::new(info(0, 3));
        assert!(!e.has_decision());
        e.decide(1);
        e.decide(2);
        let (_, decision) = e.into_parts();
        assert_eq!(decision, Some(1), "first decision wins");
    }

    #[test]
    fn process_info_others_excludes_self() {
        let i = info(2, 4);
        let others: Vec<_> = i.others().map(|p| p.index()).collect();
        assert_eq!(others, vec![0, 1, 3]);
        assert_eq!(i.peers().count(), 4);
    }
}
