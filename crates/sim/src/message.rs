//! Message envelopes: a payload together with routing metadata.
//!
//! The communication subsystem of the paper's model (Section II) keeps one
//! buffer per process containing the messages sent to it but not yet
//! received. Sending `(q, m)` just puts `m` into `q`'s buffer. An
//! [`Envelope`] is our concrete representation of such an in-flight or
//! delivered message: the payload plus its source, destination, send time,
//! and a globally unique id used by schedulers to select deliveries.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::ids::{MsgId, ProcessId, Time};

/// A message instance in flight or delivered: payload plus routing metadata.
///
/// Envelopes are created by the simulation engine when a process's message
/// sending function emits `(destination, payload)` pairs; algorithm code
/// never constructs one directly, but receives slices of envelopes in its
/// step function and may inspect `src` to learn the sender (the model gives
/// receivers the sender identity, as in FLP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Globally unique identifier, assigned in send order.
    pub id: MsgId,
    /// The sending process.
    pub src: ProcessId,
    /// The destination process.
    pub dst: ProcessId,
    /// Global time of the step in which the message was sent.
    pub sent_at: Time,
    /// The algorithm-level payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope. Intended for the engine and for tests.
    pub fn new(id: MsgId, src: ProcessId, dst: ProcessId, sent_at: Time, payload: M) -> Self {
        Envelope {
            id,
            src,
            dst,
            sent_at,
            payload,
        }
    }

    /// Maps the payload, preserving metadata.
    pub fn map<N>(self, f: impl FnOnce(M) -> N) -> Envelope<N> {
        Envelope {
            id: self.id,
            src: self.src,
            dst: self.dst,
            sent_at: self.sent_at,
            payload: f(self.payload),
        }
    }
}

impl<M: Hash> Envelope<M> {
    /// A stable fingerprint of the payload (not the metadata).
    ///
    /// Used by traces to record *what* was delivered without storing the
    /// payload itself, so that trace types stay non-generic in the message
    /// type. Two identical payloads always produce equal fingerprints; the
    /// converse holds up to hash collision, which is acceptable for the
    /// indistinguishability checks this is used for (see
    /// [`crate::indist`]).
    pub fn payload_fingerprint(&self) -> u64 {
        fingerprint(&self.payload)
    }
}

/// Stable 64-bit fingerprint of any hashable value.
///
/// The simulator uses fingerprints for process states and message payloads
/// in traces. `DefaultHasher::new()` is deterministic across runs of the
/// same binary, which is all the determinism the simulator requires. For
/// values that outlive one binary — digests written into persisted sweep
/// result files — use [`stable_fingerprint`] instead: `DefaultHasher`'s
/// algorithm is documented as free to change between Rust releases.
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// FNV-1a 64-bit hasher: a fixed, in-repo algorithm whose output never
/// drifts with the Rust release, unlike [`DefaultHasher`].
///
/// Used for every digest that is *persisted* (sweep shard files) or
/// compared across independently built binaries (the CI shard matrix
/// compiles the shard jobs and the merge job separately). The byte stream
/// an integer feeds the hasher is its native-endian encoding, so digests
/// are stable per platform, not across platforms of different endianness —
/// fine for the single-architecture CI fleet.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl StableHasher {
    /// The FNV-1a offset basis.
    pub const fn new() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl std::hash::Hasher for StableHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Release-stable 64-bit fingerprint of any hashable value
/// ([`StableHasher`] under the standard `Hash` dispatch).
pub fn stable_fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = StableHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_fingerprint_values_are_pinned() {
        // These exact values are part of the persisted-digest contract:
        // FNV-1a over the standard Hash byte streams. If this test ever
        // fails, shard files written by older binaries stop re-verifying —
        // bump the record format version rather than letting them drift.
        assert_eq!(stable_fingerprint(&42u64), 0xff3a_dd6b_3789_daef);
        assert_eq!(stable_fingerprint("kset"), 0xa516_7d46_7ed9_51af);
        assert_eq!(
            stable_fingerprint(&(1usize, true, 3u64)),
            stable_fingerprint(&(1usize, true, 3u64)),
        );
        assert_ne!(stable_fingerprint(&1u64), stable_fingerprint(&2u64));
    }

    fn env(payload: &str) -> Envelope<String> {
        Envelope::new(
            MsgId::new(1),
            ProcessId::new(0),
            ProcessId::new(1),
            Time::new(3),
            payload.to_owned(),
        )
    }

    #[test]
    fn envelope_fields_roundtrip() {
        let e = env("hello");
        assert_eq!(e.src, ProcessId::new(0));
        assert_eq!(e.dst, ProcessId::new(1));
        assert_eq!(e.sent_at, Time::new(3));
        assert_eq!(e.payload, "hello");
    }

    #[test]
    fn map_preserves_metadata() {
        let e = env("hello").map(|s| s.len());
        assert_eq!(e.payload, 5);
        assert_eq!(e.id, MsgId::new(1));
        assert_eq!(e.src, ProcessId::new(0));
    }

    #[test]
    fn equal_payloads_have_equal_fingerprints() {
        assert_eq!(
            env("x").payload_fingerprint(),
            env("x").payload_fingerprint()
        );
    }

    #[test]
    fn different_payloads_usually_differ() {
        assert_ne!(
            env("x").payload_fingerprint(),
            env("y").payload_fingerprint()
        );
    }

    #[test]
    fn fingerprint_is_deterministic_within_process() {
        let a = fingerprint(&(1u32, "abc"));
        let b = fingerprint(&(1u32, "abc"));
        assert_eq!(a, b);
    }
}
