//! Run observation: typed events emitted by both execution substrates.
//!
//! The paper's arguments are about *what runs look like* — which messages
//! were delivered where, who crashed mid-round, which decision patterns
//! appear. This module makes that observable through one API: an
//! [`Observer`] receives typed run events from **either** substrate — the
//! step-level simulator ([`SimEngine`](crate::SimEngine) /
//! [`Simulation`](crate::Simulation)) and the round-level lock-step
//! executor of `kset-core` — threaded uniformly through
//! [`Engine::drive_observed`](crate::Engine::drive_observed).
//!
//! The simulator's own trace recording is itself just one observer:
//! [`TraceRecorder`](crate::trace::TraceRecorder) assembles the exact
//! [`Trace`](crate::Trace) the engine used to build inline, from the same
//! event stream every external observer sees.
//!
//! # Event vocabulary and emission contract
//!
//! Within one unit of execution the substrates emit, in order:
//!
//! * **step substrate** (one process step): [`Observer::on_deliver`] per
//!   consumed envelope, [`Observer::on_fd_sample`] once,
//!   [`Observer::on_decide`] if the step made a (first) decision,
//!   [`Observer::on_send`] per emitted message (dropped ones included),
//!   [`Observer::on_step`] closing the step, then [`Observer::on_crash`]
//!   when the step was the process's final one. Initially-dead crashes
//!   predate any drive;
//!   [`Engine::drive_observed`](crate::Engine::drive_observed) replays them to the
//!   observer up front (`after_step == false`).
//! * **round substrate** (one lock-step round): [`Observer::on_send`] per
//!   `(sender, receiver)` pair of the send phase — a crashing sender's
//!   omitted deliveries appear as `dropped` sends, so *transmitted* (non-
//!   dropped) send counts agree with the step substrate —
//!   [`Observer::on_crash`] per mid-round crash, then per alive receiver
//!   [`Observer::on_deliver`] for each inbox entry and
//!   [`Observer::on_decide`] when the receive phase first produced a
//!   decision, and finally [`Observer::on_round`] closing the round.
//! * Both substrates: [`Observer::on_halt`] exactly once, when
//!   [`Engine::drive_observed`](crate::Engine::drive_observed) stops.
//!
//! The round substrate carries no message ids and does not fingerprint
//! payloads (round messages need not be hashable), so [`SendEvent::id`],
//! [`DeliverEvent::id`] and the payload fingerprints are `Option`s: always
//! `Some` on the step substrate, always `None` on the round substrate.
//!
//! # Cross-substrate consistency
//!
//! For one [`Scenario`](crate::Scenario) compiled to both substrates under
//! the lock-step schedule family, an [`EventCounter`] observes **equal**
//! transmitted-send counts, decide counts (and decided values), and crash
//! counts on both sides; with no crashes the deliver counts agree too.
//! With crashes the step substrate may deliver *more*: a message can reach
//! a process's buffer and be consumed before the crash that the round
//! executor expresses as "skip the receive phase" — partial round
//! deliveries made visible, which is exactly the observability the paper's
//! indistinguishability arguments need. The differential conformance suite
//! asserts these relations on the Theorem 8 border grid.
//!
//! # Examples
//!
//! ```
//! use kset_sim::observe::EventCounter;
//! use kset_sim::sched::round_robin::RoundRobin;
//! # use kset_sim::{CrashPlan, Effects, Envelope, Process, ProcessInfo};
//! use kset_sim::{Engine, SimEngine, Simulation};
//! # #[derive(Debug, Clone, Hash)]
//! # struct Echo(u32);
//! # impl Process for Echo {
//! #     type Msg = u32;
//! #     type Input = u32;
//! #     type Output = u32;
//! #     type Fd = ();
//! #     fn init(_info: ProcessInfo, input: u32) -> Self { Echo(input) }
//! #     fn step(&mut self, _d: &[Envelope<u32>], _fd: Option<&()>, e: &mut Effects<u32, u32>) {
//! #         e.decide(self.0);
//! #     }
//! # }
//!
//! let sim: Simulation<Echo, _> = Simulation::new(vec![7, 7], CrashPlan::none());
//! let mut engine = SimEngine::new(sim, RoundRobin::new());
//! let mut counter = EventCounter::new();
//! engine.drive_observed(100, &mut counter);
//! let counts = counter.counts();
//! assert_eq!(counts.decides, 2);
//! assert_eq!(counts.halts, 1);
//! ```

use crate::engine::RunStatus;
use crate::ids::{MsgId, ProcessId, Time};

/// A message emission, as observed at the sending substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendEvent {
    /// Global time of the send: the step's time on the step substrate, the
    /// (1-based) round number on the round substrate.
    pub time: Time,
    /// The sender.
    pub src: ProcessId,
    /// The destination.
    pub dst: ProcessId,
    /// The engine-assigned message id (`None` on the round substrate,
    /// which tracks no ids).
    pub id: Option<MsgId>,
    /// Fingerprint of the payload (`None` on the round substrate, whose
    /// messages need not be hashable).
    pub payload_fp: Option<u64>,
    /// Whether the message never reached a buffer/inbox: dropped by a
    /// final-step omission rule, a mid-round crash, or an out-of-range
    /// destination.
    pub dropped: bool,
}

/// A message consumption, as observed at the receiving substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliverEvent {
    /// Global time of the consuming step, or the round being received.
    pub time: Time,
    /// The original sender.
    pub src: ProcessId,
    /// The consuming process.
    pub dst: ProcessId,
    /// The message id (`None` on the round substrate).
    pub id: Option<MsgId>,
    /// Fingerprint of the payload (`None` on the round substrate).
    pub payload_fp: Option<u64>,
}

/// A failure-detector query (step substrate only; the round substrate's
/// model point has no detectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdSampleEvent {
    /// Time of the querying step.
    pub time: Time,
    /// The querying process.
    pub pid: ProcessId,
    /// Fingerprint of the sample handed out.
    pub fd_fp: Option<u64>,
}

/// One completed atomic step of one process (step substrate only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEvent {
    /// Global time of the step (1-based).
    pub time: Time,
    /// The stepping process.
    pub pid: ProcessId,
    /// The process's local step count after this step (1-based).
    pub local_step: u64,
    /// Fingerprint of the local state *after* the step.
    pub state_fp: u64,
    /// Envelopes consumed by the step.
    pub delivered: usize,
    /// Messages emitted by the step (dropped ones included).
    pub sent: usize,
}

/// One completed lock-step round (round substrate only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundEvent {
    /// The executed round (1-based).
    pub round: usize,
    /// Processes still alive at the end of the round.
    pub alive: usize,
    /// Round messages consumed by alive receivers this round.
    pub delivered: usize,
}

/// A process crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Crash time: the final step's time, or the crash round.
    pub time: Time,
    /// The crashed process.
    pub pid: ProcessId,
    /// Whether the crash ended a final step / mid-round send (`true`) or
    /// the process was dead from the start (`false`).
    pub after_step: bool,
}

/// A (first) decision of a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecideEvent<V> {
    /// Time of the deciding step, or the round whose receive phase
    /// produced the decision.
    pub time: Time,
    /// The deciding process.
    pub pid: ProcessId,
    /// The decided value.
    pub value: V,
}

/// The end of an observed drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaltEvent {
    /// The drive's final status (units executed by the drive, stop
    /// reason).
    pub status: RunStatus,
    /// Units executed over the engine's whole lifetime.
    pub units: u64,
}

/// A receiver of typed run events, attachable to **either** execution
/// substrate through [`Engine::drive_observed`](crate::Engine::drive_observed).
///
/// Every method defaults to a no-op, so an observer implements only the
/// events it cares about. The type parameter `V` is the substrate's
/// decision value type ([`Engine::Output`](crate::Engine::Output)).
///
/// See the [module docs](self) for the per-substrate emission contract.
pub trait Observer<V> {
    /// Whether this observer consumes per-event callbacks.
    ///
    /// Engines use `false` to route an observed drive through their
    /// statically-dispatched unobserved path — skipping event
    /// construction and dispatch entirely, which is what keeps
    /// `drive_observed(…, &mut NoObserver)` at parity with plain
    /// [`drive`](crate::Engine::drive) (one virtual check per unit
    /// instead of one per event). [`Observer::on_halt`] and the
    /// initial-crash announcements are delivered either way. Defaults to
    /// `true`; only [`NoObserver`] answers `false`.
    fn observes_events(&self) -> bool {
        true
    }

    /// A message was emitted (possibly dropped).
    fn on_send(&mut self, event: &SendEvent) {
        let _ = event;
    }

    /// A message was consumed by its destination.
    fn on_deliver(&mut self, event: &DeliverEvent) {
        let _ = event;
    }

    /// A failure detector was queried (step substrate only).
    fn on_fd_sample(&mut self, event: &FdSampleEvent) {
        let _ = event;
    }

    /// A process completed one atomic step (step substrate only).
    fn on_step(&mut self, event: &StepEvent) {
        let _ = event;
    }

    /// A lock-step round completed (round substrate only).
    fn on_round(&mut self, event: &RoundEvent) {
        let _ = event;
    }

    /// A process crashed.
    fn on_crash(&mut self, event: &CrashEvent) {
        let _ = event;
    }

    /// A process made its (first) decision.
    fn on_decide(&mut self, event: &DecideEvent<V>) {
        let _ = event;
    }

    /// The observed drive stopped.
    fn on_halt(&mut self, event: &HaltEvent) {
        let _ = event;
    }
}

/// The trivial observer: ignores every event.
///
/// [`Engine::drive`](crate::Engine::drive) is exactly
/// [`Engine::drive_observed`](crate::Engine::drive_observed) with a
/// `NoObserver` on the statically-dispatched path, so observation support
/// costs unobserved runs nothing (the `e7_observe` bench group pins this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoObserver;

impl<V> Observer<V> for NoObserver {
    fn observes_events(&self) -> bool {
        false
    }
}

/// Event totals of one observed run — the cross-substrate conformance
/// observable, and the payload of
/// [`Observation::Counts`](crate::sweep::Observation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct EventCounts {
    /// Messages emitted (dropped ones included).
    pub sends: u64,
    /// Emitted messages that never reached a buffer/inbox.
    pub dropped: u64,
    /// Messages consumed by their destination.
    pub delivers: u64,
    /// Failure-detector queries (step substrate only).
    pub fd_samples: u64,
    /// Atomic steps (step substrate only).
    pub steps: u64,
    /// Lock-step rounds (round substrate only).
    pub rounds: u64,
    /// Process crashes (initial deaths included).
    pub crashes: u64,
    /// First decisions.
    pub decides: u64,
    /// Observed drives that stopped.
    pub halts: u64,
}

impl EventCounts {
    /// Messages that actually reached a buffer or round inbox — the count
    /// that agrees *exactly* across substrates for one lock-step scenario.
    pub fn transmitted(&self) -> u64 {
        self.sends - self.dropped
    }
}

/// An [`Observer`] that counts every event and remembers the decided
/// values — the "consistent observation" both substrates must agree on for
/// one lock-step scenario (see the [module docs](self)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCounter<V> {
    counts: EventCounts,
    /// `(pid, value)` of every observed decision, in observation order.
    decisions: Vec<(ProcessId, V)>,
}

impl<V> EventCounter<V> {
    /// A counter with all tallies at zero.
    pub fn new() -> Self {
        EventCounter {
            counts: EventCounts::default(),
            decisions: Vec::new(),
        }
    }

    /// The event totals so far.
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    /// The observed `(pid, value)` decisions, in observation order.
    pub fn decisions(&self) -> &[(ProcessId, V)] {
        &self.decisions
    }

    /// The decided values keyed by process, for order-insensitive
    /// cross-substrate comparison.
    pub fn decisions_by_process(&self) -> std::collections::BTreeMap<ProcessId, V>
    where
        V: Clone,
    {
        self.decisions
            .iter()
            .map(|(p, v)| (*p, v.clone()))
            .collect()
    }
}

impl<V: Clone> Observer<V> for EventCounter<V> {
    fn on_send(&mut self, event: &SendEvent) {
        self.counts.sends += 1;
        if event.dropped {
            self.counts.dropped += 1;
        }
    }

    fn on_deliver(&mut self, _event: &DeliverEvent) {
        self.counts.delivers += 1;
    }

    fn on_fd_sample(&mut self, _event: &FdSampleEvent) {
        self.counts.fd_samples += 1;
    }

    fn on_step(&mut self, _event: &StepEvent) {
        self.counts.steps += 1;
    }

    fn on_round(&mut self, _event: &RoundEvent) {
        self.counts.rounds += 1;
    }

    fn on_crash(&mut self, _event: &CrashEvent) {
        self.counts.crashes += 1;
    }

    fn on_decide(&mut self, event: &DecideEvent<V>) {
        self.counts.decides += 1;
        self.decisions.push((event.pid, event.value.clone()));
    }

    fn on_halt(&mut self, _event: &HaltEvent) {
        self.counts.halts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_observer_ignores_everything() {
        let mut obs = NoObserver;
        Observer::<u64>::on_crash(
            &mut obs,
            &CrashEvent {
                time: Time::ZERO,
                pid: ProcessId::new(0),
                after_step: false,
            },
        );
        Observer::<u64>::on_halt(
            &mut obs,
            &HaltEvent {
                status: RunStatus {
                    steps: 0,
                    stop: crate::StopReason::SchedulerDone,
                },
                units: 0,
            },
        );
    }

    #[test]
    fn event_counter_tallies_and_remembers_decisions() {
        let mut c: EventCounter<u64> = EventCounter::new();
        c.on_send(&SendEvent {
            time: Time::new(1),
            src: ProcessId::new(0),
            dst: ProcessId::new(1),
            id: Some(MsgId::new(0)),
            payload_fp: Some(7),
            dropped: false,
        });
        c.on_send(&SendEvent {
            time: Time::new(1),
            src: ProcessId::new(0),
            dst: ProcessId::new(2),
            id: None,
            payload_fp: None,
            dropped: true,
        });
        c.on_decide(&DecideEvent {
            time: Time::new(2),
            pid: ProcessId::new(1),
            value: 42u64,
        });
        let counts = c.counts();
        assert_eq!(counts.sends, 2);
        assert_eq!(counts.dropped, 1);
        assert_eq!(counts.transmitted(), 1);
        assert_eq!(counts.decides, 1);
        assert_eq!(c.decisions(), &[(ProcessId::new(1), 42)]);
        assert_eq!(
            c.decisions_by_process().get(&ProcessId::new(1)),
            Some(&42u64)
        );
    }
}
