//! Failure patterns and crash plans.
//!
//! Section II-C of the paper defines the *failure pattern* `F(t)` of a run
//! as the set of processes crashed by time `t`, and `F = ⋃_t F(t)` as the
//! faulty set. In `M_ASYNC` a faulty process executes only finitely many
//! steps and *may omit sending messages to a subset of receivers in its very
//! last step*.
//!
//! Two views of failures appear in the crate:
//!
//! * [`CrashPlan`] — the *prescriptive* side: what the adversary intends to
//!   do (initially-dead processes, scheduled crashes with send omission).
//! * [`FailurePattern`] — the *descriptive* side: the `F(t)` function of a
//!   produced run, extracted from its trace and consumed by failure-detector
//!   history checkers.

use std::fmt;

use crate::ids::{ProcessId, ProcessSet, Time};

/// Which of a crashing process's final-step sends are dropped.
///
/// The model allows a process that crashes during a step to omit sending to
/// an arbitrary subset of receivers ("may omit sending messages to a subset
/// of the processes in its very last step").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Omission {
    /// All sends of the final step are delivered to buffers (crash happens
    /// "after" the atomic step completes).
    #[default]
    None,
    /// No send of the final step reaches any buffer.
    All,
    /// Sends to the listed destinations are dropped; others are delivered.
    DropTo(ProcessSet),
    /// Only sends to the listed destinations are delivered; others dropped.
    KeepOnlyTo(ProcessSet),
}

impl Omission {
    /// Whether a message to `dst` emitted in the final step survives.
    pub fn delivers_to(&self, dst: ProcessId) -> bool {
        match self {
            Omission::None => true,
            Omission::All => false,
            Omission::DropTo(set) => !set.contains(dst),
            Omission::KeepOnlyTo(set) => set.contains(dst),
        }
    }
}

/// The adversary's intended failures: which processes are dead from the
/// start, and which crash later (with what send omission).
///
/// A scheduled crash at local step `s` means: the process completes `s`
/// steps in total; its `s`-th step is its last, and the omission rule
/// applies to that step's sends. Initially-dead processes take no steps at
/// all — these are the paper's *initial crashes* (Theorem 2 allows `f − 1`
/// of them; Section VI studies the initially-dead-only case).
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    initially_dead: ProcessSet,
    scheduled: Vec<(ProcessId, u64, Omission)>,
}

impl CrashPlan {
    /// A plan with no failures at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan where exactly the listed processes are dead from the start.
    pub fn initially_dead(dead: impl IntoIterator<Item = ProcessId>) -> Self {
        CrashPlan {
            initially_dead: dead.into_iter().collect(),
            scheduled: Vec::new(),
        }
    }

    /// Adds an initially-dead process. Returns `self` for chaining.
    #[must_use]
    pub fn with_initially_dead(mut self, p: ProcessId) -> Self {
        self.initially_dead.insert(p);
        self
    }

    /// Schedules `p` to crash after completing `local_steps` steps, with the
    /// given final-step omission. Returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `local_steps` is zero — a process that takes zero steps is
    /// initially dead; use [`CrashPlan::with_initially_dead`].
    #[must_use]
    pub fn with_crash_after(mut self, p: ProcessId, local_steps: u64, omission: Omission) -> Self {
        assert!(local_steps > 0, "a zero-step crash is an initial death");
        self.scheduled.push((p, local_steps, omission));
        self
    }

    /// Whether `p` is dead from the start.
    pub fn is_initially_dead(&self, p: ProcessId) -> bool {
        self.initially_dead.contains(p)
    }

    /// The set of initially-dead processes.
    pub fn initially_dead_set(&self) -> ProcessSet {
        self.initially_dead
    }

    /// The scheduled (process, local step count, omission) crash triples.
    pub fn scheduled(&self) -> &[(ProcessId, u64, Omission)] {
        &self.scheduled
    }

    /// Looks up the scheduled crash for `p`, if any.
    pub fn crash_for(&self, p: ProcessId) -> Option<(u64, &Omission)> {
        self.scheduled
            .iter()
            .find(|(q, _, _)| *q == p)
            .map(|(_, s, o)| (*s, o))
    }

    /// The set of processes that are faulty under this plan (initially dead
    /// or scheduled to crash).
    pub fn faulty(&self) -> ProcessSet {
        let mut f = self.initially_dead;
        f.extend(self.scheduled.iter().map(|(p, _, _)| *p));
        f
    }

    /// Number of faulty processes under this plan.
    pub fn num_faulty(&self) -> usize {
        self.faulty().len()
    }
}

/// The failure pattern `F(·)` of a completed run: for each process, the
/// global time at which it crashed (if it did).
///
/// `p ∈ F(t)` iff `p` takes no step at any time `> t`; for initially-dead
/// processes the crash time is `Time::ZERO`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailurePattern {
    crash_times: Vec<Option<Time>>,
}

impl FailurePattern {
    /// A pattern over `n` processes with no failures.
    pub fn all_correct(n: usize) -> Self {
        FailurePattern {
            crash_times: vec![None; n],
        }
    }

    /// Builds a pattern from explicit per-process crash times.
    pub fn from_crash_times(crash_times: Vec<Option<Time>>) -> Self {
        FailurePattern { crash_times }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.crash_times.len()
    }

    /// Marks `p` as crashed at `t` (keeps the earliest time if called twice).
    pub fn record_crash(&mut self, p: ProcessId, t: Time) {
        let slot = &mut self.crash_times[p.index()];
        match slot {
            Some(existing) if *existing <= t => {}
            _ => *slot = Some(t),
        }
    }

    /// The crash time of `p`, if `p` is faulty.
    pub fn crash_time(&self, p: ProcessId) -> Option<Time> {
        self.crash_times[p.index()]
    }

    /// `F(t)`: the set of processes crashed at or before `t`.
    pub fn crashed_at(&self, t: Time) -> ProcessSet {
        self.crash_times
            .iter()
            .enumerate()
            .filter_map(|(i, ct)| match ct {
                Some(c) if *c <= t => Some(ProcessId::new(i)),
                _ => None,
            })
            .collect()
    }

    /// Whether `p ∈ F(t)`.
    pub fn is_crashed(&self, p: ProcessId, t: Time) -> bool {
        matches!(self.crash_times[p.index()], Some(c) if c <= t)
    }

    /// `F = ⋃_t F(t)`: all faulty processes.
    pub fn faulty(&self) -> ProcessSet {
        self.crash_times
            .iter()
            .enumerate()
            .filter_map(|(i, ct)| ct.map(|_| ProcessId::new(i)))
            .collect()
    }

    /// `Π \ F`: the correct processes.
    pub fn correct(&self) -> ProcessSet {
        self.crash_times
            .iter()
            .enumerate()
            .filter(|&(_i, ct)| ct.is_none())
            .map(|(i, _ct)| ProcessId::new(i))
            .collect()
    }

    /// Number of faulty processes.
    pub fn num_faulty(&self) -> usize {
        self.crash_times.iter().filter(|c| c.is_some()).count()
    }

    /// Merges two patterns over the same `n`, keeping each process's
    /// earliest crash. Used by the run-pasting machinery (Lemma 11:
    /// `F_β′(t) = (F_β(t) ∩ (Π\D)) ∪ (F_α(t) ∩ D)` is expressed by first
    /// projecting each side and then merging).
    ///
    /// # Panics
    ///
    /// Panics if the patterns have different sizes.
    #[must_use]
    pub fn merged_with(&self, other: &FailurePattern) -> FailurePattern {
        assert_eq!(self.n(), other.n(), "patterns must cover the same system");
        let crash_times = self
            .crash_times
            .iter()
            .zip(&other.crash_times)
            .map(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => Some(*x.min(y)),
                (Some(x), None) => Some(*x),
                (None, Some(y)) => Some(*y),
                (None, None) => None,
            })
            .collect();
        FailurePattern { crash_times }
    }

    /// Restricts this pattern to the processes in `keep`: processes outside
    /// `keep` are reported as correct (their failures are erased). Used when
    /// pasting runs to take `F ∩ D`.
    #[must_use]
    pub fn projected_to(&self, keep: ProcessSet) -> FailurePattern {
        let crash_times = self
            .crash_times
            .iter()
            .enumerate()
            .map(|(i, ct)| {
                if keep.contains(ProcessId::new(i)) {
                    *ct
                } else {
                    None
                }
            })
            .collect();
        FailurePattern { crash_times }
    }
}

impl fmt::Display for FailurePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F = {{")?;
        let mut first = true;
        for (i, ct) in self.crash_times.iter().enumerate() {
            if let Some(t) = ct {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{}@{}", ProcessId::new(i), t)?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn omission_variants() {
        assert!(Omission::None.delivers_to(p(0)));
        assert!(!Omission::All.delivers_to(p(0)));
        let drop: Omission = Omission::DropTo([p(1)].into());
        assert!(drop.delivers_to(p(0)));
        assert!(!drop.delivers_to(p(1)));
        let keep: Omission = Omission::KeepOnlyTo([p(1)].into());
        assert!(!keep.delivers_to(p(0)));
        assert!(keep.delivers_to(p(1)));
    }

    #[test]
    fn crash_plan_faulty_union() {
        let plan = CrashPlan::initially_dead([p(0)]).with_crash_after(p(2), 5, Omission::All);
        assert!(plan.is_initially_dead(p(0)));
        assert!(!plan.is_initially_dead(p(2)));
        assert_eq!(plan.faulty(), [p(0), p(2)].into());
        assert_eq!(plan.num_faulty(), 2);
        assert_eq!(plan.crash_for(p(2)).unwrap().0, 5);
        assert!(plan.crash_for(p(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "initial death")]
    fn crash_plan_rejects_zero_step_crash() {
        let _ = CrashPlan::none().with_crash_after(p(0), 0, Omission::None);
    }

    #[test]
    fn failure_pattern_f_of_t() {
        let mut fp = FailurePattern::all_correct(3);
        fp.record_crash(p(1), Time::new(5));
        assert!(!fp.is_crashed(p(1), Time::new(4)));
        assert!(fp.is_crashed(p(1), Time::new(5)));
        assert_eq!(fp.crashed_at(Time::new(10)), [p(1)].into());
        assert_eq!(fp.faulty(), [p(1)].into());
        assert_eq!(fp.correct(), [p(0), p(2)].into());
        assert_eq!(fp.num_faulty(), 1);
    }

    #[test]
    fn record_crash_keeps_earliest() {
        let mut fp = FailurePattern::all_correct(1);
        fp.record_crash(p(0), Time::new(9));
        fp.record_crash(p(0), Time::new(3));
        assert_eq!(fp.crash_time(p(0)), Some(Time::new(3)));
        fp.record_crash(p(0), Time::new(7));
        assert_eq!(fp.crash_time(p(0)), Some(Time::new(3)));
    }

    #[test]
    fn merge_keeps_earliest_crash() {
        let mut a = FailurePattern::all_correct(3);
        a.record_crash(p(0), Time::new(4));
        let mut b = FailurePattern::all_correct(3);
        b.record_crash(p(0), Time::new(2));
        b.record_crash(p(1), Time::new(6));
        let m = a.merged_with(&b);
        assert_eq!(m.crash_time(p(0)), Some(Time::new(2)));
        assert_eq!(m.crash_time(p(1)), Some(Time::new(6)));
        assert_eq!(m.crash_time(p(2)), None);
    }

    #[test]
    fn projection_erases_failures_outside_keep() {
        let mut fp = FailurePattern::all_correct(3);
        fp.record_crash(p(0), Time::new(1));
        fp.record_crash(p(2), Time::new(2));
        let proj = fp.projected_to([p(0), p(1)].into());
        assert_eq!(proj.faulty(), [p(0)].into());
    }

    #[test]
    fn display_mentions_crashed_processes() {
        let mut fp = FailurePattern::all_correct(2);
        fp.record_crash(p(1), Time::new(3));
        let s = fp.to_string();
        assert!(s.contains("p2"), "got {s}");
        assert!(s.contains("t3"), "got {s}");
    }
}
