//! # kset-sim — deterministic message-passing system simulator
//!
//! The execution substrate for the `kset` workspace: a faithful, executable
//! rendition of the computing model used by Biely, Robinson and Schmid in
//! *"Easy Impossibility Proofs for k-Set Agreement in Message Passing
//! Systems"* (OPODIS 2011) — the Dolev–Dwork–Stockmeyer model extended with
//! failure detectors.
//!
//! ## Model recap
//!
//! * A system `Π = {p1, …, pn}` of deterministic state machines
//!   ([`Process`]) communicating through per-process message buffers
//!   ([`Buffer`]). Sets of processes are width-generic bitsets
//!   ([`WideSet`], pinned workspace-wide as [`ProcessSet`], capacity
//!   [`ProcessSet::CAPACITY`] = 512); oversized systems are rejected at
//!   construction with a typed [`CapacityError`].
//! * A *step* of one process atomically receives a scheduler-chosen subset
//!   of its buffer, optionally queries a failure detector ([`Oracle`]),
//!   applies the transition, and sends messages ([`Effects`]).
//! * A *run* is a sequence of such steps; global time is the step index
//!   ([`Time`]). The engine records every run as a [`Trace`].
//! * Failures: initially-dead processes and mid-run crashes with
//!   final-step send omission ([`CrashPlan`], [`Omission`]); the run's
//!   failure pattern `F(·)` is a [`FailurePattern`].
//! * Admissibility conditions of concrete models are checked post-hoc
//!   ([`admissible`]), including the quantitative synchrony bounds Φ/Δ of
//!   the partially synchronous models ([`SynchronyBounds`]).
//!
//! ## Paper machinery as code
//!
//! * **Definition 1** (restriction `A|D`) — [`Restricted`],
//!   [`restricted_simulation`].
//! * **Definition 2/3** (indistinguishability, compatibility `≼_D`) —
//!   [`indist`].
//! * **Run pasting** (Lemmas 11/12) — schedule extraction
//!   ([`Trace::schedule`]) plus replay
//!   ([`sched::scripted::Scripted`]).
//!
//! ## Quickstart
//!
//! ```
//! use kset_sim::{
//!     CrashPlan, Effects, Envelope, Process, ProcessInfo, Simulation,
//!     sched::round_robin::RoundRobin,
//! };
//!
//! /// Every process broadcasts its input and decides the minimum of all
//! /// values received (n-set agreement at best, but a fine demo).
//! #[derive(Debug, Clone, Hash)]
//! struct Min {
//!     n: usize,
//!     seen: Vec<u32>,
//!     sent: bool,
//! }
//!
//! impl Process for Min {
//!     type Msg = u32;
//!     type Input = u32;
//!     type Output = u32;
//!     type Fd = ();
//!
//!     fn init(info: ProcessInfo, input: u32) -> Self {
//!         Min { n: info.n, seen: vec![input], sent: false }
//!     }
//!
//!     fn step(
//!         &mut self,
//!         delivered: &[Envelope<u32>],
//!         _fd: Option<&()>,
//!         effects: &mut Effects<u32, u32>,
//!     ) {
//!         if !self.sent {
//!             self.sent = true;
//!             effects.broadcast(self.seen[0]);
//!         }
//!         self.seen.extend(delivered.iter().map(|e| e.payload));
//!         if self.seen.len() > self.n {
//!             effects.decide(*self.seen.iter().min().unwrap());
//!         }
//!     }
//! }
//!
//! let mut sim: Simulation<Min, _> = Simulation::new(vec![3, 1, 2], CrashPlan::none());
//! let report = sim.run_to_report(&mut RoundRobin::new(), 1_000);
//! assert_eq!(report.decisions, vec![Some(1), Some(1), Some(1)]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admissible;
mod buffer;
pub mod des;
mod engine;
pub mod explore;
mod failure;
pub mod fleet;
mod ids;
pub mod indist;
mod message;
mod model;
pub mod observe;
mod oracle;
mod process;
mod restrict;
pub mod scenario;
pub mod sched;
pub mod sweep;
mod textfmt;
pub mod trace;

pub use buffer::Buffer;
pub use engine::{
    Engine, RunReport, RunStatus, SimEngine, SimError, Simulation, StopReason, Violation,
};
pub use failure::{CrashPlan, FailurePattern, Omission};
pub use ids::planes;
pub use ids::{
    CapacityError, MsgId, ProcessId, ProcessSet, ProcessSetIter, SenderMap, SubsetIter, Time,
    WideSet, WideSetIter, PSET_LIMBS,
};
pub use message::{fingerprint, stable_fingerprint, Envelope, StableHasher};
pub use model::{ModelParams, Setting, SynchronyBounds};
pub use observe::{
    CrashEvent, DecideEvent, DeliverEvent, EventCounter, EventCounts, FdSampleEvent, HaltEvent,
    NoObserver, Observer, RoundEvent, SendEvent, StepEvent,
};
pub use oracle::{FnOracle, NoOracle, Oracle};
pub use process::{Effects, Process, ProcessInfo};
pub use restrict::{
    restricted_simulation, restricted_simulation_with_oracle, restriction_plan, Restricted,
};
pub use scenario::{
    DetectorChoice, Scenario, ScenarioCrash, ScenarioError, ScenarioParseError, ScenarioProcess,
    ScenarioScheduler, ScheduleFamily,
};
pub use trace::{MessageStats, ProcessView, ScheduleEntry, StepObservation, Trace, TraceRecorder};
