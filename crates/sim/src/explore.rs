//! Bounded exhaustive schedule exploration: a small model checker.
//!
//! Impossibility proofs quantify over *all* runs; sampled schedules can
//! only witness, never verify. For small systems the simulator can close
//! the gap by exhaustively enumerating every scheduling choice within a
//! bound: at each configuration, every alive process may step with every
//! delivery from a configurable branching menu. States are deduplicated by
//! configuration fingerprint (local states + decisions + buffer contents),
//! so confluent schedules collapse.
//!
//! The explorer drives two use cases in the workspace:
//!
//! * **exhaustive safety** — verify that an algorithm's k-Agreement holds
//!   in *every* bounded run (e.g. the two-stage protocol on small systems,
//!   complementing the randomized tests);
//! * **violation search** — find a concrete schedule (returned as a
//!   replayable [`Choice`] path) on which a flawed candidate misbehaves,
//!   which is the fully automatic cousin of the Theorem 1 adversary.
//!
//! The branching menu trades precision for tractability:
//! [`Branching::NoneOrAll`] (deliver nothing or everything) suffices to
//! break most wrong algorithms; [`Branching::PerSource`] additionally
//! enumerates per-source delivery subsets — the full asynchronous
//! adversary for algorithms insensitive to intra-source batching.

use std::collections::HashSet;

use crate::engine::Simulation;
use crate::ids::ProcessId;
use crate::oracle::Oracle;
use crate::process::Process;
use crate::sched::{Choice, Delivery};

/// How to branch on message delivery at each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branching {
    /// Each step delivers either nothing or everything pending.
    NoneOrAll,
    /// Each step delivers all pending messages from one chosen subset of
    /// sources (including the empty subset).
    PerSource,
}

/// Exploration limits and options.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum run length (depth of the schedule tree).
    pub max_depth: usize,
    /// Maximum number of configurations to expand (safety valve).
    pub max_states: usize,
    /// Delivery branching menu.
    pub branching: Branching,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 24,
            max_states: 200_000,
            branching: Branching::NoneOrAll,
        }
    }
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct configurations expanded.
    pub states_expanded: usize,
    /// Terminal configurations reached (all correct decided, or no moves).
    pub terminals: usize,
    /// Whether the state or depth budget was exhausted (the check is then
    /// a bounded verification, not a full one).
    pub truncated: bool,
    /// The first safety violation found, with the schedule reaching it.
    pub violation: Option<ViolationPath>,
}

impl ExploreReport {
    /// Whether the bounded exploration proved the property (no violation
    /// and no truncation).
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

/// A violation and the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct ViolationPath {
    /// Why the checker flagged the configuration.
    pub reason: String,
    /// The schedule from the initial configuration to the violation.
    pub path: Vec<Choice>,
}

/// Exhaustively explores all schedules of `sim` within `config`, checking
/// `check` at every reached configuration. `check` returns `Err(reason)`
/// to flag a violation (the search stops at the first one).
///
/// The exploration treats "all correct processes decided" as terminal.
/// Crash plans are honoured (the explorer also branches over *when*
/// plan-scheduled crashes strike, since those are driven by local step
/// counts and thus by the schedule itself).
pub fn explore<P, O>(
    sim: &Simulation<P, O>,
    config: &ExploreConfig,
    mut check: impl FnMut(&Simulation<P, O>) -> Result<(), String>,
) -> ExploreReport
where
    P: Process,
    P::Input: Clone,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd> + Clone,
{
    // Fingerprint dedup set: u64 fingerprints are already well-mixed, so a
    // hash set gives O(1) membership on this hot path.
    let mut seen: HashSet<u64> = HashSet::new();
    let mut report = ExploreReport {
        states_expanded: 0,
        terminals: 0,
        truncated: false,
        violation: None,
    };
    // Depth-first over (configuration, path).
    let mut stack: Vec<(Simulation<P, O>, Vec<Choice>)> = vec![(sim.clone(), Vec::new())];
    seen.insert(sim.config_fingerprint());
    if let Err(reason) = check(sim) {
        report.violation = Some(ViolationPath {
            reason,
            path: Vec::new(),
        });
        return report;
    }

    while let Some((current, path)) = stack.pop() {
        if report.states_expanded >= config.max_states {
            report.truncated = true;
            return report;
        }
        report.states_expanded += 1;
        if current.all_correct_decided() {
            report.terminals += 1;
            continue;
        }
        if path.len() >= config.max_depth {
            report.truncated = true;
            continue;
        }
        let mut any_move = false;
        for pid in ProcessId::all(current.n()) {
            if !current.is_alive(pid) {
                continue;
            }
            for delivery in delivery_menu(&current, pid, config.branching) {
                let mut child = current.clone();
                // kset-lint: allow(observer-bypass): the DFS explorer forks thousands of throwaway child configurations per expansion; observer event streams are a per-run concept and would only alias across branches here
                if child.step(pid, delivery.clone()).is_err() {
                    continue;
                }
                any_move = true;
                if !seen.insert(child.config_fingerprint()) {
                    continue; // already explored an equivalent configuration
                }
                if let Err(reason) = check(&child) {
                    let mut vpath = path.clone();
                    vpath.push(Choice { pid, delivery });
                    report.violation = Some(ViolationPath {
                        reason,
                        path: vpath,
                    });
                    return report;
                }
                let mut child_path = path.clone();
                child_path.push(Choice { pid, delivery });
                stack.push((child, child_path));
            }
        }
        if !any_move {
            report.terminals += 1;
        }
    }
    report
}

/// Exhaustively explores all schedules of a compiled
/// [`Scenario`](crate::scenario::Scenario): the scenario's crash plan and
/// inputs become the initial configuration (its schedule family is
/// irrelevant here — the explorer quantifies over *all* schedules), and
/// `check` is evaluated at every reached configuration as in [`explore`].
///
/// # Errors
///
/// Returns the scenario's first
/// [`ScenarioError`](crate::scenario::ScenarioError) if it fails
/// validation or compilation.
pub fn explore_scenario<P>(
    scenario: &crate::scenario::Scenario,
    config: &ExploreConfig,
    check: impl FnMut(&Simulation<P, crate::oracle::NoOracle>) -> Result<(), String>,
) -> Result<ExploreReport, crate::scenario::ScenarioError>
where
    P: crate::scenario::ScenarioProcess,
    P::Input: Clone,
{
    let sim = scenario.to_simulation::<P>()?;
    Ok(explore(&sim, config, check))
}

/// The delivery branching menu for one process in one configuration.
fn delivery_menu<P, O>(
    sim: &Simulation<P, O>,
    pid: ProcessId,
    branching: Branching,
) -> Vec<Delivery>
where
    P: Process,
    P::Fd: std::hash::Hash,
    O: Oracle<Sample = P::Fd>,
{
    let buffer = sim.buffer(pid);
    if buffer.is_empty() {
        return vec![Delivery::None];
    }
    match branching {
        Branching::NoneOrAll => vec![Delivery::None, Delivery::All],
        Branching::PerSource => {
            // Enumerate every subset of the pending sources directly on the
            // bitset: the classic sub = (sub - 1) & mask walk, width-generic
            // via `WideSet::subsets` so it holds past 128 processes.
            let sources = buffer.sources();
            // The menu holds exactly 2^len entries (Delivery::None plus the
            // 2^len − 1 non-empty subsets); pre-reserve that count for the
            // common small source sets but cap the reservation so a wide
            // source set cannot demand a huge up-front allocation per
            // explored step — the extend below grows the Vec as needed.
            const MENU_RESERVE_CAP: usize = 256;
            let menu_len = 1usize
                .checked_shl(sources.len() as u32)
                .unwrap_or(usize::MAX);
            let mut menu = Vec::with_capacity(menu_len.min(MENU_RESERVE_CAP));
            menu.push(Delivery::None);
            menu.extend(sources.subsets().map(Delivery::AllFrom));
            menu
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::CrashPlan;
    use crate::message::Envelope;
    use crate::process::{Effects, ProcessInfo};
    use crate::sched::scripted::Scripted;
    use crate::trace::ScheduleEntry;
    use std::collections::BTreeSet;

    /// Echo-min: broadcast input once; decide the minimum heard after
    /// receiving from everyone (n-process barrier). Safe: consensus on min.
    #[derive(Debug, Clone, Hash)]
    struct BarrierMin {
        n: usize,
        me: usize,
        seen: Vec<(usize, u64)>,
        sent: bool,
    }

    impl Process for BarrierMin {
        type Msg = u64;
        type Input = u64;
        type Output = u64;
        type Fd = ();

        fn init(info: ProcessInfo, input: u64) -> Self {
            BarrierMin {
                n: info.n,
                me: info.id.index(),
                seen: vec![(info.id.index(), input)],
                sent: false,
            }
        }

        fn step(
            &mut self,
            delivered: &[Envelope<u64>],
            _fd: Option<&()>,
            effects: &mut Effects<u64, u64>,
        ) {
            if !self.sent {
                self.sent = true;
                effects.broadcast_others(self.seen[0].1);
            }
            for env in delivered {
                if !self.seen.iter().any(|(s, _)| *s == env.src.index()) {
                    self.seen.push((env.src.index(), env.payload));
                }
            }
            if self.seen.len() == self.n {
                effects.decide(self.seen.iter().map(|(_, v)| *v).min().unwrap());
            }
        }
    }

    /// Flawed: decides its own value if its first step sees an empty
    /// buffer (a race only some schedules expose).
    #[derive(Debug, Clone, Hash)]
    struct RacyDecide {
        value: u64,
        stepped: bool,
    }

    impl Process for RacyDecide {
        type Msg = u64;
        type Input = u64;
        type Output = u64;
        type Fd = ();

        fn init(_info: ProcessInfo, input: u64) -> Self {
            RacyDecide {
                value: input,
                stepped: false,
            }
        }

        fn step(
            &mut self,
            delivered: &[Envelope<u64>],
            _fd: Option<&()>,
            effects: &mut Effects<u64, u64>,
        ) {
            if !self.stepped {
                self.stepped = true;
                effects.broadcast_others(self.value);
                if delivered.is_empty() {
                    effects.decide(self.value);
                } // else: adopt the first heard value
            }
            if let Some(env) = delivered.first() {
                effects.decide(env.payload);
            }
        }
    }

    #[test]
    fn exhaustive_consensus_verification() {
        let sim: Simulation<BarrierMin, _> = Simulation::new(vec![5, 2, 9], CrashPlan::none());
        let config = ExploreConfig {
            max_depth: 16,
            max_states: 500_000,
            branching: Branching::NoneOrAll,
        };
        let report = explore(&sim, &config, |s| {
            let decided: BTreeSet<u64> = s.decisions().iter().flatten().copied().collect();
            if decided.len() > 1 {
                return Err(format!("two decisions: {decided:?}"));
            }
            if decided.iter().any(|v| *v != 2) {
                return Err(format!("non-minimum decision: {decided:?}"));
            }
            Ok(())
        });
        assert!(
            report.verified(),
            "truncated={} violation={:?}",
            report.truncated,
            report.violation
        );
        assert!(report.terminals > 0);
    }

    #[test]
    fn violation_search_finds_the_racy_schedule() {
        let sim: Simulation<RacyDecide, _> = Simulation::new(vec![1, 2], CrashPlan::none());
        let config = ExploreConfig::default();
        let report = explore(&sim, &config, |s| {
            let decided: BTreeSet<u64> = s.decisions().iter().flatten().copied().collect();
            if decided.len() > 1 {
                return Err(format!("consensus violated: {decided:?}"));
            }
            Ok(())
        });
        let violation = report.violation.expect("the race must be found");
        assert!(!violation.path.is_empty());
        // The returned path is replayable: drive a fresh simulation down it
        // and observe the same violation.
        let mut replay_sim: Simulation<RacyDecide, _> =
            Simulation::new(vec![1, 2], CrashPlan::none());
        let entries: Vec<ScheduleEntry> = Vec::new();
        let _ = entries; // path replay is via explicit steps:
        for choice in &violation.path {
            replay_sim
                .step(choice.pid, choice.delivery.clone())
                .unwrap();
        }
        let decided: BTreeSet<u64> = replay_sim.decisions().iter().flatten().copied().collect();
        assert_eq!(
            decided.len(),
            2,
            "replayed schedule reproduces the violation"
        );
        let _ = Scripted::new(vec![]); // keep the import honest
    }

    #[test]
    fn dedup_collapses_confluent_schedules() {
        // Two processes that never communicate: the diamond (p1 then p2 vs
        // p2 then p1) must collapse via fingerprint dedup.
        let sim: Simulation<RacyDecide, _> = Simulation::new(vec![1, 2], CrashPlan::none());
        let config = ExploreConfig {
            max_depth: 4,
            max_states: 10_000,
            branching: Branching::NoneOrAll,
        };
        let mut visits = 0usize;
        let _ = explore(&sim, &config, |_| {
            visits += 1;
            Ok(())
        });
        // Without dedup the 2-process tree to depth 4 has ≫ 30 nodes; with
        // dedup the diamond collapses substantially.
        assert!(visits < 60, "dedup ineffective: {visits} checks");
    }

    #[test]
    fn per_source_branching_enumerates_subsets() {
        let mut sim: Simulation<BarrierMin, _> = Simulation::new(vec![5, 2, 9], CrashPlan::none());
        // Everyone broadcasts.
        for p in ProcessId::all(3) {
            sim.step(p, Delivery::None).unwrap();
        }
        let menu = delivery_menu(&sim, ProcessId::new(0), Branching::PerSource);
        // p1's buffer holds messages from p2 and p3: 4 subsets.
        assert_eq!(menu.len(), 4);
        let menu_na = delivery_menu(&sim, ProcessId::new(0), Branching::NoneOrAll);
        assert_eq!(menu_na.len(), 2);
    }

    #[test]
    fn initial_violation_is_reported_with_empty_path() {
        let sim: Simulation<RacyDecide, _> = Simulation::new(vec![1], CrashPlan::none());
        let report = explore(&sim, &ExploreConfig::default(), |_| Err("always".into()));
        let v = report.violation.unwrap();
        assert!(v.path.is_empty());
    }

    #[test]
    fn state_budget_truncates() {
        let sim: Simulation<BarrierMin, _> = Simulation::new(vec![1, 2, 3, 4], CrashPlan::none());
        let config = ExploreConfig {
            max_depth: 64,
            max_states: 5,
            branching: Branching::NoneOrAll,
        };
        let report = explore(&sim, &config, |_| Ok(()));
        assert!(report.truncated);
        assert!(!report.verified());
    }
}
