//! The oracle hook: how the simulator asks a failure detector for a value.
//!
//! Section II of the paper adds a sixth dimension to the
//! Dolev–Dwork–Stockmeyer model space: in the favourable setting, "processes
//! can query a failure detector at the beginning of each step". The sampled
//! value is then an input of the atomic state transition.
//!
//! The simulator is agnostic about the detector class; it only needs a
//! source of samples keyed by `(process, time)` — exactly the history
//! function `H(p, t)` of Section II-C. Concrete classes (Σk, Ωk, the
//! partition detector of Definition 7, …) live in the `kset-fd` crate and
//! implement [`Oracle`].

use crate::failure::FailurePattern;
use crate::ids::{ProcessId, Time};

/// A failure-detector oracle producing the history function `H(p, t)`.
///
/// The engine calls [`Oracle::sample`] once per step, immediately before the
/// state transition of the stepping process, passing the current global time
/// and the failure pattern of the run **so far** (crashes that already
/// happened). Oracles that need knowledge of the *future* failure pattern —
/// e.g. an eventually-stabilizing Ωk whose final leader set must intersect
/// the correct processes — should be constructed with the planned pattern up
/// front; the per-call view is a convenience for "realistic" detectors such
/// as the perfect detector.
pub trait Oracle {
    /// The sample type handed to the process's step function.
    type Sample: Clone + std::fmt::Debug;

    /// Produces `H(p, t)` for the stepping process.
    fn sample(&mut self, p: ProcessId, t: Time, observed: &FailurePattern) -> Self::Sample;
}

/// Mutable references to oracles are oracles, so a caller can lend an
/// oracle to a simulation and inspect it (e.g. its recorded history)
/// afterwards.
impl<O: Oracle + ?Sized> Oracle for &mut O {
    type Sample = O::Sample;

    fn sample(&mut self, p: ProcessId, t: Time, observed: &FailurePattern) -> Self::Sample {
        (**self).sample(p, t, observed)
    }
}

/// The "no failure detector" oracle (unfavourable setting of dimension 6).
///
/// Produces `()` samples; algorithms whose `Fd` type is `()` pair with this
/// oracle.
///
/// # Examples
///
/// ```
/// use kset_sim::{NoOracle, Oracle, ProcessId, Time, FailurePattern};
///
/// let mut oracle = NoOracle;
/// let fp = FailurePattern::all_correct(3);
/// let sample = oracle.sample(ProcessId::new(0), Time::ZERO, &fp);
/// assert_eq!(sample, ());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoOracle;

impl Oracle for NoOracle {
    type Sample = ();

    fn sample(&mut self, _p: ProcessId, _t: Time, _observed: &FailurePattern) -> Self::Sample {}
}

/// An oracle defined by a closure; convenient for tests and scripted
/// adversarial histories.
///
/// # Examples
///
/// ```
/// use kset_sim::{FnOracle, Oracle, ProcessId, Time, FailurePattern};
///
/// let mut oracle = FnOracle::new(|p: ProcessId, t: Time, _fp: &FailurePattern| {
///     (p.index() as u64) + t.raw()
/// });
/// let fp = FailurePattern::all_correct(2);
/// assert_eq!(oracle.sample(ProcessId::new(1), Time::new(3), &fp), 4);
/// ```
pub struct FnOracle<F, S> {
    f: F,
    _marker: std::marker::PhantomData<fn() -> S>,
}

impl<F, S> FnOracle<F, S>
where
    F: FnMut(ProcessId, Time, &FailurePattern) -> S,
{
    /// Wraps a closure as an oracle.
    pub fn new(f: F) -> Self {
        FnOracle {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<F, S> std::fmt::Debug for FnOracle<F, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnOracle").finish_non_exhaustive()
    }
}

impl<F, S> Oracle for FnOracle<F, S>
where
    F: FnMut(ProcessId, Time, &FailurePattern) -> S,
    S: Clone + std::fmt::Debug,
{
    type Sample = S;

    fn sample(&mut self, p: ProcessId, t: Time, observed: &FailurePattern) -> S {
        (self.f)(p, t, observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_oracle_returns_unit() {
        let mut o = NoOracle;
        let fp = FailurePattern::all_correct(1);
        // Type-level check is the point; this must compile and return ().
        o.sample(ProcessId::new(0), Time::ZERO, &fp);
    }

    #[test]
    fn fn_oracle_sees_failure_pattern() {
        let mut o = FnOracle::new(|_p, _t, fp: &FailurePattern| fp.num_faulty());
        let mut fp = FailurePattern::all_correct(3);
        assert_eq!(o.sample(ProcessId::new(0), Time::ZERO, &fp), 0);
        fp.record_crash(ProcessId::new(2), Time::new(1));
        assert_eq!(o.sample(ProcessId::new(0), Time::new(2), &fp), 1);
    }

    #[test]
    fn fn_oracle_is_stateful() {
        let mut count = 0u32;
        let mut o = FnOracle::new(move |_p, _t, _fp: &FailurePattern| {
            count += 1;
            count
        });
        let fp = FailurePattern::all_correct(1);
        assert_eq!(o.sample(ProcessId::new(0), Time::ZERO, &fp), 1);
        assert_eq!(o.sample(ProcessId::new(0), Time::ZERO, &fp), 2);
    }
}
