//! Shared grammar helpers for the workspace's token-delimited plain-text
//! formats (scenario table lines, sweep record observations): one
//! definition of "comma-separated list with `-` as the empty sentinel",
//! so the formats cannot drift apart element by element.

/// Renders a comma-separated list, `-` when empty.
pub(crate) fn render_csv(values: impl Iterator<Item = String>) -> String {
    let joined: Vec<String> = values.collect();
    if joined.is_empty() {
        "-".to_string()
    } else {
        joined.join(",")
    }
}

/// Parses a list rendered by [`render_csv`]: `-` is the empty list, and
/// every element must satisfy `parse_one` (`None` on the first that does
/// not).
pub(crate) fn parse_csv_with<T>(
    token: &str,
    parse_one: impl Fn(&str) -> Option<T>,
) -> Option<Vec<T>> {
    if token == "-" {
        return Some(Vec::new());
    }
    token.split(',').map(parse_one).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_including_the_empty_sentinel() {
        assert_eq!(render_csv(std::iter::empty()), "-");
        assert_eq!(parse_csv_with("-", |t| t.parse::<u64>().ok()), Some(vec![]));
        let values = [3u64, 1, 4];
        let rendered = render_csv(values.iter().map(u64::to_string));
        assert_eq!(rendered, "3,1,4");
        assert_eq!(
            parse_csv_with(&rendered, |t| t.parse::<u64>().ok()),
            Some(values.to_vec())
        );
        assert_eq!(parse_csv_with("3,,4", |t| t.parse::<u64>().ok()), None);
    }
}
