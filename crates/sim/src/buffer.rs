//! Per-process message buffers.
//!
//! The model keeps one buffer per process containing messages sent to it but
//! not yet received (Section II of the paper). The buffer is a *multiset*:
//! the same payload may be enqueued many times. Our representation
//! additionally maintains FIFO order **per source**, which lets schedulers
//! express deliveries as "the oldest `c` messages from source `q`" — the key
//! primitive used to replay a partition-local schedule inside a larger
//! system when pasting runs (Lemmas 11/12 of the paper).
//!
//! Note that FIFO-per-source is a property of the *representation*, not of
//! the *model*: schedulers remain free to deliver any subset in any order by
//! selecting explicit [`MsgId`]s, so the asynchronous model's full
//! reordering power is preserved.
//!
//! Internally the buffer is a dense `Vec` of per-source FIFO queues indexed
//! by sender id — source ids are always drawn from `0..n`, so the dense
//! layout replaces the former `BTreeMap<ProcessId, VecDeque>` with direct
//! indexing on the receive hot path.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ids::{MsgId, ProcessId, ProcessSet};
use crate::message::Envelope;

/// The message buffer of one process.
///
/// # Examples
///
/// ```
/// use kset_sim::{Buffer, Envelope, MsgId, ProcessId, Time};
///
/// let mut buf: Buffer<&'static str> = Buffer::new();
/// buf.push(Envelope::new(MsgId::new(0), ProcessId::new(1), ProcessId::new(0), Time::new(1), "a"));
/// assert_eq!(buf.len(), 1);
/// let taken = buf.take_oldest_from(ProcessId::new(1), 1);
/// assert_eq!(taken.len(), 1);
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Buffer<M> {
    /// Pending messages, indexed by source id, FIFO within each source.
    by_src: Vec<VecDeque<Envelope<M>>>,
    /// Total number of pending messages.
    len: usize,
}

impl<M> Default for Buffer<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Buffer<M> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Buffer {
            by_src: Vec::new(),
            len: 0,
        }
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no pending messages.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues a message.
    pub fn push(&mut self, env: Envelope<M>) {
        let idx = env.src.index();
        if idx >= self.by_src.len() {
            self.by_src.resize_with(idx + 1, VecDeque::new);
        }
        self.by_src[idx].push_back(env);
        self.len += 1;
    }

    /// Iterates over all pending messages in (source id, send order).
    pub fn iter(&self) -> impl Iterator<Item = &Envelope<M>> {
        self.by_src.iter().flatten()
    }

    /// The distinct sources with at least one pending message, ascending.
    pub fn sources(&self) -> ProcessSet {
        self.by_src
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, _)| ProcessId::new(i))
            .collect()
    }

    /// Number of pending messages from `src`.
    pub fn pending_from(&self, src: ProcessId) -> usize {
        self.by_src.get(src.index()).map_or(0, VecDeque::len)
    }

    /// Removes and returns the oldest `count` messages from `src` (fewer if
    /// fewer are pending), preserving their send order.
    pub fn take_oldest_from(&mut self, src: ProcessId, count: usize) -> Vec<Envelope<M>> {
        let Some(queue) = self.by_src.get_mut(src.index()) else {
            return Vec::new();
        };
        let take = count.min(queue.len());
        let out: Vec<_> = queue.drain(..take).collect();
        self.len -= out.len();
        out
    }

    /// Removes and returns every pending message, ordered by (source, send
    /// order).
    pub fn take_all(&mut self) -> Vec<Envelope<M>> {
        let mut out = Vec::with_capacity(self.len);
        for queue in &mut self.by_src {
            out.extend(queue.drain(..));
        }
        self.len = 0;
        out
    }

    /// Removes and returns all pending messages whose source is in `allowed`,
    /// ordered by (source, send order). Messages from other sources remain.
    pub fn take_all_from(&mut self, allowed: ProcessSet) -> Vec<Envelope<M>> {
        let mut out = Vec::new();
        for (i, queue) in self.by_src.iter_mut().enumerate() {
            if allowed.contains(ProcessId::new(i)) {
                out.extend(queue.drain(..));
            }
        }
        self.len -= out.len();
        out
    }

    /// Removes and returns the messages with the given ids, in the order the
    /// ids are listed. Ids not present in the buffer are silently skipped.
    pub fn take_ids(&mut self, ids: &[MsgId]) -> Vec<Envelope<M>> {
        let wanted: BTreeSet<MsgId> = ids.iter().copied().collect();
        let mut extracted: BTreeMap<MsgId, Envelope<M>> = BTreeMap::new();
        for queue in &mut self.by_src {
            let mut kept = VecDeque::with_capacity(queue.len());
            for env in queue.drain(..) {
                if wanted.contains(&env.id) {
                    extracted.insert(env.id, env);
                } else {
                    kept.push_back(env);
                }
            }
            *queue = kept;
        }
        self.len -= extracted.len();
        // Return in the caller's requested order.
        ids.iter().filter_map(|id| extracted.remove(id)).collect()
    }

    /// Ids of all pending messages, ordered by (source, send order).
    pub fn pending_ids(&self) -> Vec<MsgId> {
        self.iter().map(|e| e.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Time;

    fn env(id: u64, src: usize, payload: u32) -> Envelope<u32> {
        Envelope::new(
            MsgId::new(id),
            ProcessId::new(src),
            ProcessId::new(0),
            Time::new(id),
            payload,
        )
    }

    #[test]
    fn push_and_len() {
        let mut b = Buffer::new();
        assert!(b.is_empty());
        b.push(env(0, 1, 10));
        b.push(env(1, 2, 20));
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn take_oldest_preserves_fifo_per_source() {
        let mut b = Buffer::new();
        b.push(env(0, 1, 10));
        b.push(env(1, 1, 11));
        b.push(env(2, 1, 12));
        let first_two = b.take_oldest_from(ProcessId::new(1), 2);
        assert_eq!(
            first_two.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![10, 11]
        );
        assert_eq!(b.len(), 1);
        let rest = b.take_oldest_from(ProcessId::new(1), 5);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].payload, 12);
    }

    #[test]
    fn take_oldest_from_absent_source_is_empty() {
        let mut b: Buffer<u32> = Buffer::new();
        assert!(b.take_oldest_from(ProcessId::new(9), 3).is_empty());
    }

    #[test]
    fn take_all_orders_by_source_then_send() {
        let mut b = Buffer::new();
        b.push(env(5, 2, 25));
        b.push(env(1, 1, 11));
        b.push(env(3, 2, 23));
        let all = b.take_all();
        assert_eq!(
            all.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![11, 25, 23]
        );
        assert!(b.is_empty());
    }

    #[test]
    fn take_all_from_filters_sources() {
        let mut b = Buffer::new();
        b.push(env(0, 1, 10));
        b.push(env(1, 2, 20));
        b.push(env(2, 3, 30));
        let allowed: ProcessSet = [ProcessId::new(1), ProcessId::new(3)].into();
        let got = b.take_all_from(allowed);
        assert_eq!(
            got.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![10, 30]
        );
        assert_eq!(b.len(), 1);
        assert_eq!(b.pending_from(ProcessId::new(2)), 1);
    }

    #[test]
    fn take_ids_in_requested_order() {
        let mut b = Buffer::new();
        b.push(env(0, 1, 10));
        b.push(env(1, 2, 20));
        b.push(env(2, 1, 12));
        let got = b.take_ids(&[MsgId::new(2), MsgId::new(1)]);
        assert_eq!(
            got.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![12, 20]
        );
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn take_ids_skips_unknown_ids() {
        let mut b = Buffer::new();
        b.push(env(0, 1, 10));
        let got = b.take_ids(&[MsgId::new(7), MsgId::new(0)]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 10);
    }

    #[test]
    fn sources_reports_distinct_pending_sources() {
        let mut b = Buffer::new();
        b.push(env(0, 3, 1));
        b.push(env(1, 1, 2));
        b.push(env(2, 3, 3));
        let sources: Vec<_> = b.sources().iter().collect();
        assert_eq!(sources, vec![ProcessId::new(1), ProcessId::new(3)]);
    }

    #[test]
    fn pending_ids_ordering() {
        let mut b = Buffer::new();
        b.push(env(9, 2, 1));
        b.push(env(4, 1, 2));
        assert_eq!(b.pending_ids(), vec![MsgId::new(4), MsgId::new(9)]);
    }
}
