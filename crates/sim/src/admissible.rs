//! Post-hoc admissibility checking of run prefixes.
//!
//! A basic run of the model becomes a run of a concrete system `M` by
//! *admissibility conditions* (Section II). For `M_ASYNC` these are:
//! (1) every correct process takes infinitely many steps; (2) faulty
//! processes take finitely many steps; (3) every message sent to a correct
//! receiver is eventually received. On finite prefixes we verify the
//! finitely-checkable projections of these conditions, plus the quantitative
//! synchrony bounds Φ/Δ of the partially synchronous models
//! ([`crate::model::SynchronyBounds`]).
//!
//! A prefix that passes [`check`] with
//! [`AdmissibilityRequirements::masync_decided`] is *extendable* to an
//! admissible infinite run: all correct processes have decided, nothing
//! undelivered remains for them, and the suffix can be completed by any fair
//! scheduler.

use crate::failure::FailurePattern;
use crate::ids::{ProcessId, Time};
use crate::model::SynchronyBounds;
use crate::trace::Trace;

/// What to require of a finite prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissibilityRequirements {
    /// Every correct process must have decided within the prefix.
    pub correct_decided: bool,
    /// No undelivered message to a correct process may remain at the end of
    /// the prefix.
    pub quiescent: bool,
    /// Quantitative synchrony bounds to verify against the prefix.
    pub bounds: SynchronyBounds,
}

impl AdmissibilityRequirements {
    /// The `M_ASYNC` prefix discipline for terminated runs: correct
    /// processes decided, all their messages delivered, no synchrony bounds.
    pub fn masync_decided() -> Self {
        AdmissibilityRequirements {
            correct_decided: true,
            quiescent: true,
            bounds: SynchronyBounds::asynchronous(),
        }
    }

    /// Only check the synchrony bounds (for mid-run prefixes).
    pub fn bounds_only(bounds: SynchronyBounds) -> Self {
        AdmissibilityRequirements {
            correct_decided: false,
            quiescent: false,
            bounds,
        }
    }
}

/// A reason a prefix failed the admissibility check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissibilityViolation {
    /// A correct process did not decide within the prefix.
    CorrectUndecided(ProcessId),
    /// Messages to a correct process remain undelivered at the end.
    UndeliveredToCorrect {
        /// The receiver.
        dst: ProcessId,
        /// How many messages remain.
        count: usize,
    },
    /// Process synchrony bound Φ breached: while `slow` took no step, `fast`
    /// took more than Φ steps.
    PhiBreached {
        /// The starved process.
        slow: ProcessId,
        /// The process that overtook it.
        fast: ProcessId,
        /// Steps `fast` took inside the gap.
        steps: u64,
    },
    /// Communication bound Δ breached: a message took longer than Δ.
    DeltaBreached {
        /// The receiver.
        dst: ProcessId,
        /// Observed delay in steps.
        delay: u64,
    },
}

/// Result of an admissibility check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissibilityReport {
    /// All violations found (empty = admissible).
    pub violations: Vec<AdmissibilityViolation>,
}

impl AdmissibilityReport {
    /// Whether the prefix passed every requested check.
    pub fn is_admissible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks a trace against the requirements.
pub fn check<V: Clone + Ord>(
    trace: &Trace<V>,
    req: &AdmissibilityRequirements,
) -> AdmissibilityReport {
    let mut violations = Vec::new();
    let fp = trace.failure_pattern();

    if req.correct_decided {
        let decisions = trace.decisions();
        for p in fp.correct() {
            if decisions[p.index()].is_none() {
                violations.push(AdmissibilityViolation::CorrectUndecided(p));
            }
        }
    }

    if req.quiescent {
        let undelivered = undelivered_to(trace, &fp);
        for (i, count) in undelivered.iter().enumerate() {
            let p = ProcessId::new(i);
            if *count > 0 && fp.crash_time(p).is_none() {
                violations.push(AdmissibilityViolation::UndeliveredToCorrect {
                    dst: p,
                    count: *count,
                });
            }
        }
    }

    if let Some(phi) = req.bounds.phi {
        check_phi(trace, &fp, phi, &mut violations);
    }
    if let Some(delta) = req.bounds.delta {
        check_delta(trace, &fp, delta, &mut violations);
    }

    AdmissibilityReport { violations }
}

/// Undelivered (non-dropped) message counts per destination, using exact
/// message-id accounting.
fn undelivered_to<V: Clone>(trace: &Trace<V>, _fp: &FailurePattern) -> Vec<usize> {
    use std::collections::BTreeSet;
    let mut delivered_ids: BTreeSet<crate::ids::MsgId> = BTreeSet::new();
    for step in trace.steps() {
        for d in &step.delivered {
            delivered_ids.insert(d.id);
        }
    }
    let mut counts = vec![0usize; trace.n()];
    for step in trace.steps() {
        for s in &step.sent {
            if !s.dropped && !delivered_ids.contains(&s.id) {
                counts[s.dst.index()] += 1;
            }
        }
    }
    counts
}

/// Φ check: for every process `slow` alive over a gap between its
/// consecutive steps (or before its first / after its last while alive), no
/// other alive process may take more than Φ steps inside the gap.
fn check_phi<V: Clone>(
    trace: &Trace<V>,
    fp: &FailurePattern,
    phi: u64,
    out: &mut Vec<AdmissibilityViolation>,
) {
    let n = trace.n();
    // step_times[p] = sorted times at which p stepped.
    let mut step_times: Vec<Vec<Time>> = vec![Vec::new(); n];
    let mut end = Time::ZERO;
    for step in trace.steps() {
        step_times[step.pid.index()].push(step.time);
        end = end.max(step.time);
    }
    for slow_idx in 0..n {
        let slow = ProcessId::new(slow_idx);
        // Gaps of `slow`: (gap_start, gap_end], during which slow is alive.
        let mut boundaries: Vec<(Time, Time)> = Vec::new();
        let alive_until = fp.crash_time(slow).unwrap_or(end);
        let mut prev = Time::ZERO;
        for &t in &step_times[slow_idx] {
            boundaries.push((prev, t));
            prev = t;
        }
        if prev < alive_until {
            boundaries.push((prev, alive_until));
        }
        for (lo, hi) in boundaries {
            for (fast_idx, times) in step_times.iter().enumerate() {
                if fast_idx == slow_idx {
                    continue;
                }
                let fast = ProcessId::new(fast_idx);
                let steps_inside = times.iter().filter(|t| **t > lo && **t < hi).count() as u64;
                if steps_inside > phi {
                    out.push(AdmissibilityViolation::PhiBreached {
                        slow,
                        fast,
                        steps: steps_inside,
                    });
                }
            }
        }
    }
}

/// Δ check: every delivered message within Δ steps; every undelivered
/// message to a correct process younger than Δ at the end of the prefix.
fn check_delta<V: Clone>(
    trace: &Trace<V>,
    fp: &FailurePattern,
    delta: u64,
    out: &mut Vec<AdmissibilityViolation>,
) {
    use std::collections::BTreeMap;
    let mut sent_at: BTreeMap<crate::ids::MsgId, (ProcessId, Time)> = BTreeMap::new();
    let mut end = Time::ZERO;
    for step in trace.steps() {
        end = end.max(step.time);
        for s in &step.sent {
            if !s.dropped {
                sent_at.insert(s.id, (s.dst, step.time));
            }
        }
        for d in &step.delivered {
            if let Some((dst, t_sent)) = sent_at.remove(&d.id) {
                let delay = step.time.since(t_sent);
                if delay > delta {
                    out.push(AdmissibilityViolation::DeltaBreached { dst, delay });
                }
            }
        }
    }
    // Remaining undelivered messages: overdue if older than Δ and receiver
    // is correct (a crashed receiver excuses non-delivery).
    for (dst, t_sent) in sent_at.values() {
        if fp.crash_time(*dst).is_none() {
            let age = end.since(*t_sent);
            if age > delta {
                out.push(AdmissibilityViolation::DeltaBreached {
                    dst: *dst,
                    delay: age,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MsgId;
    use crate::trace::{DeliveredRecord, SendRecord, StepRecord, TraceEvent};

    fn mk_step(
        time: u64,
        pid: usize,
        decided: Option<u32>,
        sent: Vec<SendRecord>,
        delivered: Vec<DeliveredRecord>,
    ) -> TraceEvent<u32> {
        TraceEvent::Step(StepRecord {
            time: Time::new(time),
            pid: ProcessId::new(pid),
            local_step: 0,
            delivered,
            fd_fp: None,
            state_fp: 0,
            decided,
            sent,
        })
    }

    fn send(id: u64, dst: usize) -> SendRecord {
        SendRecord {
            id: MsgId::new(id),
            dst: ProcessId::new(dst),
            payload_fp: 0,
            dropped: false,
        }
    }

    fn recv(id: u64, src: usize) -> DeliveredRecord {
        DeliveredRecord {
            id: MsgId::new(id),
            src: ProcessId::new(src),
            payload_fp: 0,
        }
    }

    #[test]
    fn decided_and_quiescent_prefix_is_admissible() {
        let mut t = Trace::new(2);
        t.push(mk_step(1, 0, None, vec![send(0, 1)], vec![]));
        t.push(mk_step(2, 1, Some(1), vec![], vec![recv(0, 0)]));
        t.push(mk_step(3, 0, Some(1), vec![], vec![]));
        let rep = check(&t, &AdmissibilityRequirements::masync_decided());
        assert!(rep.is_admissible(), "{:?}", rep.violations);
    }

    #[test]
    fn undecided_correct_process_flagged() {
        let mut t: Trace<u32> = Trace::new(2);
        t.push(mk_step(1, 0, Some(1), vec![], vec![]));
        let rep = check(&t, &AdmissibilityRequirements::masync_decided());
        assert!(rep
            .violations
            .contains(&AdmissibilityViolation::CorrectUndecided(ProcessId::new(1))));
    }

    #[test]
    fn undelivered_to_correct_flagged_but_crashed_excused() {
        let mut t: Trace<u32> = Trace::new(3);
        t.push(mk_step(1, 0, Some(1), vec![send(0, 1), send(1, 2)], vec![]));
        t.push(mk_step(2, 1, Some(1), vec![], vec![]));
        t.push(TraceEvent::Crash {
            pid: ProcessId::new(2),
            time: Time::new(3),
            after_step: false,
        });
        let rep = check(
            &t,
            &AdmissibilityRequirements {
                correct_decided: false,
                quiescent: true,
                bounds: SynchronyBounds::asynchronous(),
            },
        );
        assert_eq!(
            rep.violations,
            vec![AdmissibilityViolation::UndeliveredToCorrect {
                dst: ProcessId::new(1),
                count: 1
            }],
            "undelivered to crashed p3 must be excused"
        );
    }

    #[test]
    fn phi_violation_detected() {
        // p1 steps at t=1 and t=10; p2 takes 5 steps in between; Φ=2.
        let mut t: Trace<u32> = Trace::new(2);
        t.push(mk_step(1, 0, None, vec![], vec![]));
        for time in 2..7 {
            t.push(mk_step(time, 1, None, vec![], vec![]));
        }
        t.push(mk_step(10, 0, None, vec![], vec![]));
        let rep = check(
            &t,
            &AdmissibilityRequirements::bounds_only(SynchronyBounds {
                phi: Some(2),
                delta: None,
            }),
        );
        assert!(rep.violations.iter().any(
            |v| matches!(v, AdmissibilityViolation::PhiBreached { slow, steps, .. }
                if *slow == ProcessId::new(0) && *steps == 5)
        ));
    }

    #[test]
    fn phi_respected_in_lockstep() {
        let mut t: Trace<u32> = Trace::new(2);
        for round in 0..5u64 {
            t.push(mk_step(2 * round + 1, 0, None, vec![], vec![]));
            t.push(mk_step(2 * round + 2, 1, None, vec![], vec![]));
        }
        let rep = check(
            &t,
            &AdmissibilityRequirements::bounds_only(SynchronyBounds {
                phi: Some(1),
                delta: None,
            }),
        );
        assert!(rep.is_admissible(), "{:?}", rep.violations);
    }

    #[test]
    fn crashed_process_excused_from_phi() {
        let mut t: Trace<u32> = Trace::new(2);
        t.push(mk_step(1, 0, None, vec![], vec![]));
        t.push(TraceEvent::Crash {
            pid: ProcessId::new(0),
            time: Time::new(1),
            after_step: true,
        });
        for time in 2..20 {
            t.push(mk_step(time, 1, None, vec![], vec![]));
        }
        let rep = check(
            &t,
            &AdmissibilityRequirements::bounds_only(SynchronyBounds {
                phi: Some(1),
                delta: None,
            }),
        );
        assert!(rep.is_admissible(), "{:?}", rep.violations);
    }

    #[test]
    fn delta_violation_on_slow_delivery() {
        let mut t: Trace<u32> = Trace::new(2);
        t.push(mk_step(1, 0, None, vec![send(0, 1)], vec![]));
        for time in 2..10 {
            t.push(mk_step(time, 1, None, vec![], vec![]));
        }
        t.push(mk_step(10, 1, None, vec![], vec![recv(0, 0)]));
        let rep = check(
            &t,
            &AdmissibilityRequirements::bounds_only(SynchronyBounds {
                phi: None,
                delta: Some(3),
            }),
        );
        assert!(matches!(
            rep.violations.first(),
            Some(AdmissibilityViolation::DeltaBreached { delay: 9, .. })
        ));
    }

    #[test]
    fn delta_violation_on_overdue_undelivered() {
        let mut t: Trace<u32> = Trace::new(2);
        t.push(mk_step(1, 0, None, vec![send(0, 1)], vec![]));
        for time in 2..12 {
            t.push(mk_step(time, 1, None, vec![], vec![]));
        }
        let rep = check(
            &t,
            &AdmissibilityRequirements::bounds_only(SynchronyBounds {
                phi: None,
                delta: Some(5),
            }),
        );
        assert!(!rep.is_admissible());
    }
}
