//! Core identifier newtypes and compact per-process containers: process
//! identifiers, message identifiers, the global logical clock, the
//! [`ProcessSet`] bitset, and the [`SenderMap`] dense map.
//!
//! The paper (Section II) considers a system `Π = {p1, …, pn}` of `n`
//! processes with unique ids `{1, …, n}`, and defines *time* as the index of
//! a step in a run: the `i`-th step of a run occurs at time `i`. Processes do
//! **not** have access to time; it exists only in the meta-level analysis
//! (failure patterns, failure-detector histories).
//!
//! Internally we use 0-based indices for processes; [`ProcessId::display_id`]
//! recovers the paper's 1-based numbering.
//!
//! Every set of processes in the workspace — partition blocks, quorum and
//! leader samples, faulty/correct sets, delivery filters — is a
//! [`ProcessSet`]: a fixed-capacity bitset over [`ProcessId`] whose set
//! algebra is single-instruction `u128` arithmetic. Per-sender round state
//! (synchronous-round inboxes, stage-2 info tables, promise ledgers) uses
//! [`SenderMap`], a dense `Vec<Option<M>>` keyed by sender index.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

/// Identifier of a process in the system `Π = {p1, …, pn}`.
///
/// Wraps a 0-based index. The `Display` impl prints the paper-style 1-based
/// name (`p1`, `p2`, …).
///
/// # Examples
///
/// ```
/// use kset_sim::ProcessId;
///
/// let p = ProcessId::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(p.display_id(), 1);
/// assert_eq!(p.to_string(), "p1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process identifier from a 0-based index.
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the 0-based index of this process.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Returns the paper-style 1-based identifier.
    pub const fn display_id(self) -> usize {
        self.0 + 1
    }

    /// Iterates over all process ids of a system of size `n`, in id order.
    ///
    /// # Examples
    ///
    /// ```
    /// use kset_sim::ProcessId;
    ///
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids, vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = ProcessId> + ExactSizeIterator {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.display_id())
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

/// Globally unique identifier of a message instance.
///
/// Every send produces a fresh `MsgId`; identifiers are assigned in send
/// order by the simulation engine and are therefore deterministic for a
/// deterministic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(u64);

impl MsgId {
    /// Creates a message id from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        MsgId(raw)
    }

    /// Returns the raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Global logical time: the index of a step in a run (Section II-C).
///
/// `Time(0)` is the instant of the initial configuration; the first step of
/// a run occurs at `Time(1)`.
///
/// # Examples
///
/// ```
/// use kset_sim::Time;
///
/// let t = Time::ZERO;
/// assert_eq!(t.next(), Time::new(1));
/// assert!(t < t.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The instant of the initial configuration.
    pub const ZERO: Time = Time(0);

    /// Creates a time from a raw step index.
    pub const fn new(raw: u64) -> Self {
        Time(raw)
    }

    /// Returns the raw step index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The immediately following instant.
    #[must_use]
    pub const fn next(self) -> Time {
        Time(self.0 + 1)
    }

    /// Saturating difference `self - earlier` in steps.
    #[must_use]
    pub const fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Time {
    fn from(raw: u64) -> Self {
        Time(raw)
    }
}

/// A set of processes, stored as a fixed-capacity bitset.
///
/// Bit `i` is set iff `ProcessId::new(i)` is a member. All set algebra —
/// union, intersection, difference, subset and disjointness tests — is
/// constant-time `u128` arithmetic, and the type is `Copy`, which is what
/// makes it viable in the simulator's hot paths (buffer delivery filters,
/// failure patterns, explorer state, failure-detector samples).
///
/// Capacity is [`ProcessSet::CAPACITY`] processes; inserting a larger id
/// panics. Systems beyond that need the planned SIMD/wide variant (see the
/// ROADMAP).
///
/// Iteration yields members in ascending id order, matching the ordering
/// the previous `BTreeSet<ProcessId>` representation guaranteed.
///
/// # Examples
///
/// ```
/// use kset_sim::{ProcessId, ProcessSet};
///
/// let mut s: ProcessSet = [ProcessId::new(0), ProcessId::new(2)].into();
/// assert!(s.contains(ProcessId::new(2)));
/// s.insert(ProcessId::new(1));
/// assert_eq!(s.len(), 3);
/// let t = ProcessSet::full(2);
/// assert_eq!((s & t).len(), 2);
/// assert_eq!(s.to_string(), "{p1, p2, p3}");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessSet {
    bits: u128,
}

impl ProcessSet {
    /// The maximum system size representable.
    pub const CAPACITY: usize = 128;

    /// The empty set.
    pub const EMPTY: ProcessSet = ProcessSet { bits: 0 };

    /// Creates an empty set.
    pub const fn new() -> Self {
        Self::EMPTY
    }

    /// The singleton `{p}`.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= CAPACITY`.
    pub fn singleton(p: ProcessId) -> Self {
        let mut s = Self::EMPTY;
        s.insert(p);
        s
    }

    /// The full system `Π = {p1, …, pn}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > CAPACITY`.
    pub fn full(n: usize) -> Self {
        assert!(
            n <= Self::CAPACITY,
            "ProcessSet capacity is {}",
            Self::CAPACITY
        );
        if n == Self::CAPACITY {
            ProcessSet { bits: u128::MAX }
        } else {
            ProcessSet {
                bits: (1u128 << n) - 1,
            }
        }
    }

    /// Builds a set directly from a bit pattern (bit `i` ⇔ `p_{i+1}`).
    pub const fn from_bits(bits: u128) -> Self {
        ProcessSet { bits }
    }

    /// The raw bit pattern.
    pub const fn bits(self) -> u128 {
        self.bits
    }

    /// Number of members.
    pub const fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set has no members.
    pub const fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Whether `p` is a member.
    pub fn contains(self, p: ProcessId) -> bool {
        p.index() < Self::CAPACITY && self.bits & (1u128 << p.index()) != 0
    }

    /// Inserts `p`; returns whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= CAPACITY`.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        assert!(
            p.index() < Self::CAPACITY,
            "{p} exceeds the ProcessSet capacity of {}",
            Self::CAPACITY
        );
        let bit = 1u128 << p.index();
        let fresh = self.bits & bit == 0;
        self.bits |= bit;
        fresh
    }

    /// Removes `p`; returns whether it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        if p.index() >= Self::CAPACITY {
            return false;
        }
        let bit = 1u128 << p.index();
        let present = self.bits & bit != 0;
        self.bits &= !bit;
        present
    }

    /// The smallest member, if any.
    pub fn first(self) -> Option<ProcessId> {
        (!self.is_empty()).then(|| ProcessId::new(self.bits.trailing_zeros() as usize))
    }

    /// `self ∪ other`.
    #[must_use]
    pub const fn union(self, other: ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits | other.bits,
        }
    }

    /// `self ∩ other`.
    #[must_use]
    pub const fn intersection(self, other: ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits & other.bits,
        }
    }

    /// `self \ other`.
    #[must_use]
    pub const fn difference(self, other: ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits & !other.bits,
        }
    }

    /// `Π \ self` for a system of size `n`.
    #[must_use]
    pub fn complement(self, n: usize) -> ProcessSet {
        Self::full(n).difference(self)
    }

    /// Whether every member of `self` is in `other`.
    pub const fn is_subset(self, other: ProcessSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// Whether the sets share no member.
    pub const fn is_disjoint(self, other: ProcessSet) -> bool {
        self.bits & other.bits == 0
    }

    /// Iterates over the members in ascending id order.
    pub fn iter(self) -> ProcessSetIter {
        ProcessSetIter { bits: self.bits }
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `{p1, p3}` in both Debug and Display: debug output appears in
        // assertion messages, where the paper-style names read best.
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl BitOr for ProcessSet {
    type Output = ProcessSet;

    fn bitor(self, rhs: ProcessSet) -> ProcessSet {
        self.union(rhs)
    }
}

impl BitOrAssign for ProcessSet {
    fn bitor_assign(&mut self, rhs: ProcessSet) {
        self.bits |= rhs.bits;
    }
}

impl BitAnd for ProcessSet {
    type Output = ProcessSet;

    fn bitand(self, rhs: ProcessSet) -> ProcessSet {
        self.intersection(rhs)
    }
}

impl BitAndAssign for ProcessSet {
    fn bitand_assign(&mut self, rhs: ProcessSet) {
        self.bits &= rhs.bits;
    }
}

impl Sub for ProcessSet {
    type Output = ProcessSet;

    fn sub(self, rhs: ProcessSet) -> ProcessSet {
        self.difference(rhs)
    }
}

impl SubAssign for ProcessSet {
    fn sub_assign(&mut self, rhs: ProcessSet) {
        self.bits &= !rhs.bits;
    }
}

/// Iterator over the members of a [`ProcessSet`], ascending by id.
#[derive(Debug, Clone)]
pub struct ProcessSetIter {
    bits: u128,
}

impl Iterator for ProcessSetIter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.bits == 0 {
            return None;
        }
        let idx = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(ProcessId::new(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ProcessSetIter {}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = ProcessSetIter;

    fn into_iter(self) -> ProcessSetIter {
        self.iter()
    }
}

impl IntoIterator for &ProcessSet {
    type Item = ProcessId;
    type IntoIter = ProcessSetIter;

    fn into_iter(self) -> ProcessSetIter {
        self.iter()
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl<const N: usize> From<[ProcessId; N]> for ProcessSet {
    fn from(ids: [ProcessId; N]) -> Self {
        ids.into_iter().collect()
    }
}

/// A dense map from sender to `M`: `Vec<Option<M>>` keyed by
/// [`ProcessId::index`].
///
/// The workspace's round-structured state — synchronous-round inboxes,
/// stage-2 info tables, Paxos promise/accept ledgers — is always keyed by
/// sender, with keys drawn from `0..n`. A dense vector turns every lookup
/// into an index operation and every iteration into a linear scan, replacing
/// the pointer-chasing `BTreeMap<ProcessId, M>` these paths used before.
///
/// Equality and hashing consider only the *present* entries, so maps that
/// differ merely in trailing capacity compare (and fingerprint) equal.
/// Iteration yields entries in ascending sender order.
///
/// # Examples
///
/// ```
/// use kset_sim::{ProcessId, SenderMap};
///
/// let mut m: SenderMap<&'static str> = SenderMap::new();
/// m.insert(ProcessId::new(2), "hello");
/// assert_eq!(m.get(ProcessId::new(2)), Some(&"hello"));
/// assert_eq!(m.len(), 1);
/// assert_eq!(m.senders().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SenderMap<M> {
    slots: Vec<Option<M>>,
    len: usize,
}

impl<M> Default for SenderMap<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> SenderMap<M> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SenderMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty map with room for senders `0..n`.
    pub fn with_capacity(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        SenderMap { slots, len: 0 }
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `sender` has an entry.
    pub fn contains(&self, sender: ProcessId) -> bool {
        self.slots.get(sender.index()).is_some_and(Option::is_some)
    }

    /// The entry of `sender`, if present.
    pub fn get(&self, sender: ProcessId) -> Option<&M> {
        self.slots.get(sender.index()).and_then(Option::as_ref)
    }

    /// Inserts (or replaces) the entry of `sender`, returning the previous
    /// value.
    pub fn insert(&mut self, sender: ProcessId, value: M) -> Option<M> {
        if sender.index() >= self.slots.len() {
            self.slots.resize_with(sender.index() + 1, || None);
        }
        let prev = self.slots[sender.index()].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Inserts `value` only if `sender` has no entry yet; returns a
    /// reference to the entry.
    pub fn entry_or_insert_with(&mut self, sender: ProcessId, value: impl FnOnce() -> M) -> &M {
        if !self.contains(sender) {
            self.insert(sender, value());
        }
        self.slots[sender.index()]
            .as_ref()
            .expect("just ensured present")
    }

    /// Removes and returns the entry of `sender`.
    pub fn remove(&mut self, sender: ProcessId) -> Option<M> {
        let prev = self.slots.get_mut(sender.index()).and_then(Option::take);
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// Iterates over present `(sender, value)` entries, ascending by sender.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (ProcessId::new(i), v)))
    }

    /// Iterates over the present values, ascending by sender.
    pub fn values(&self) -> impl Iterator<Item = &M> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// The set of senders with an entry.
    pub fn senders(&self) -> ProcessSet {
        self.iter().map(|(p, _)| p).collect()
    }
}

impl<M: PartialEq> PartialEq for SenderMap<M> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<M: Eq> Eq for SenderMap<M> {}

impl<M: Hash> Hash for SenderMap<M> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash only present entries so trailing capacity is irrelevant:
        // fingerprint-comparable across differently grown maps.
        self.len.hash(state);
        for (p, v) in self.iter() {
            p.hash(state);
            v.hash(state);
        }
    }
}

impl<M> FromIterator<(ProcessId, M)> for SenderMap<M> {
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Self {
        let mut m = SenderMap::new();
        for (p, v) in iter {
            m.insert(p, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn process_id_roundtrip() {
        for i in 0..10 {
            let p = ProcessId::new(i);
            assert_eq!(p.index(), i);
            assert_eq!(p.display_id(), i + 1);
        }
    }

    #[test]
    fn process_id_display_is_one_based() {
        assert_eq!(ProcessId::new(0).to_string(), "p1");
        assert_eq!(ProcessId::new(7).to_string(), "p8");
    }

    #[test]
    fn process_id_all_enumerates_in_order() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(ids.len(), 4);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn process_id_all_empty_system() {
        assert_eq!(ProcessId::all(0).count(), 0);
    }

    #[test]
    fn process_ids_are_ordered_and_hashable() {
        let set: BTreeSet<_> = [2usize, 0, 1].into_iter().map(ProcessId::new).collect();
        let sorted: Vec<_> = set.into_iter().collect();
        assert_eq!(
            sorted,
            vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]
        );
    }

    #[test]
    fn time_ordering_and_arithmetic() {
        let t0 = Time::ZERO;
        let t5 = Time::new(5);
        assert!(t0 < t5);
        assert_eq!(t5.since(t0), 5);
        assert_eq!(t0.since(t5), 0, "since is saturating");
        assert_eq!(t5.next(), Time::new(6));
    }

    #[test]
    fn msg_id_display() {
        assert_eq!(MsgId::new(42).to_string(), "m42");
        assert_eq!(MsgId::new(42).raw(), 42);
    }

    #[test]
    fn conversions_from_usize_and_u64() {
        assert_eq!(ProcessId::from(3), ProcessId::new(3));
        assert_eq!(Time::from(9), Time::new(9));
    }

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn process_set_algebra() {
        let a: ProcessSet = [pid(0), pid(1), pid(5)].into();
        let b: ProcessSet = [pid(1), pid(5), pid(7)].into();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), [pid(1), pid(5)].into());
        assert_eq!(a.difference(b), ProcessSet::singleton(pid(0)));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersection(b));
        assert_eq!(a - b, a.difference(b));
        assert!(a.intersection(b).is_subset(a));
        assert!(!a.is_disjoint(b));
        assert!(a.difference(b).is_disjoint(b));
    }

    #[test]
    fn process_set_iterates_in_ascending_order() {
        let s: ProcessSet = [pid(9), pid(0), pid(4)].into();
        let order: Vec<usize> = s.iter().map(ProcessId::index).collect();
        assert_eq!(order, vec![0, 4, 9]);
        assert_eq!(s.first(), Some(pid(0)));
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn process_set_full_and_complement() {
        let full = ProcessSet::full(5);
        assert_eq!(full.len(), 5);
        let s: ProcessSet = [pid(1), pid(3)].into();
        assert_eq!(s.complement(5), [pid(0), pid(2), pid(4)].into());
        assert_eq!(
            ProcessSet::full(ProcessSet::CAPACITY).len(),
            ProcessSet::CAPACITY
        );
    }

    #[test]
    fn process_set_insert_remove_roundtrip() {
        let mut s = ProcessSet::new();
        assert!(s.insert(pid(3)));
        assert!(!s.insert(pid(3)), "second insert is a no-op");
        assert!(s.contains(pid(3)));
        assert!(s.remove(pid(3)));
        assert!(!s.remove(pid(3)));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn process_set_rejects_oversized_ids() {
        let mut s = ProcessSet::new();
        s.insert(pid(ProcessSet::CAPACITY));
    }

    #[test]
    fn process_set_display_matches_btree_convention() {
        let s: ProcessSet = [pid(0), pid(2)].into();
        assert_eq!(s.to_string(), "{p1, p3}");
        assert_eq!(format!("{s:?}"), "{p1, p3}");
    }

    #[test]
    fn sender_map_dense_semantics() {
        let mut m: SenderMap<u32> = SenderMap::with_capacity(4);
        assert!(m.is_empty());
        assert_eq!(m.insert(pid(2), 20), None);
        assert_eq!(m.insert(pid(2), 21), Some(20));
        m.insert(pid(0), 10);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(pid(2)), Some(&21));
        assert_eq!(m.get(pid(3)), None);
        let entries: Vec<(usize, u32)> = m.iter().map(|(p, v)| (p.index(), *v)).collect();
        assert_eq!(entries, vec![(0, 10), (2, 21)]);
        assert_eq!(m.senders(), [pid(0), pid(2)].into());
        assert_eq!(m.remove(pid(0)), Some(10));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sender_map_eq_and_hash_ignore_capacity() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a: SenderMap<u32> = SenderMap::with_capacity(16);
        let mut b: SenderMap<u32> = SenderMap::new();
        a.insert(pid(1), 7);
        b.insert(pid(1), 7);
        assert_eq!(a, b);
        let hash = |m: &SenderMap<u32>| {
            let mut h = DefaultHasher::new();
            m.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn sender_map_entry_or_insert_keeps_first() {
        let mut m: SenderMap<u32> = SenderMap::new();
        assert_eq!(*m.entry_or_insert_with(pid(0), || 1), 1);
        assert_eq!(*m.entry_or_insert_with(pid(0), || 2), 1, "first value wins");
    }
}
